// Engine scaling sweeps: evaluation cost vs. window width, slide period,
// and stream density for a fixed simple query (the Fig. 5 pipeline minus
// pathological pattern blow-ups, so the window machinery dominates).
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_observability.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

std::string RentalQuery(int width_minutes, int every_minutes) {
  return "REGISTER QUERY sq STARTING AT '1970-01-01T00:05' { "
         "MATCH (b:Bike)-[r:rentedAt]->(s:Station) WITHIN PT" +
         std::to_string(width_minutes) +
         "M EMIT r.user_id, s.id ON ENTERING EVERY PT" +
         std::to_string(every_minutes) + "M }";
}

std::vector<workloads::Event> Events(int count, int users) {
  workloads::BikeSharingConfig config;
  config.num_events = count;
  config.num_users = users;
  config.num_stations = 30;
  return workloads::GenerateBikeSharingStream(config);
}

void Drive(const std::string& query,
           const std::vector<workloads::Event>& events,
           benchmark::State& state) {
  int64_t evals = 0;
  std::optional<ContinuousEngine> engine;
  for (auto _ : state) {
    engine.emplace();
    CountingSink sink;
    engine->AddSink(&sink);
    (void)engine->RegisterText(query);
    for (const auto& event : events) {
      (void)engine->Ingest(event.graph, event.timestamp);
    }
    if (!engine->Drain().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    evals += engine->evaluations_run();
  }
  state.counters["evaluations_per_run"] =
      static_cast<double>(evals) / state.iterations();
  if (engine.has_value()) benchsupport::AddStageCounters(state, *engine);
}

void BM_WindowWidthSweep(benchmark::State& state) {
  static auto events = Events(96, 60);  // 8 hours.
  Drive(RentalQuery(static_cast<int>(state.range(0)), 5), events, state);
  state.SetLabel("width=" + std::to_string(state.range(0)) + "m");
}
BENCHMARK(BM_WindowWidthSweep)->Arg(10)->Arg(30)->Arg(60)->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_SlideSweep(benchmark::State& state) {
  static auto events = Events(96, 60);
  Drive(RentalQuery(60, static_cast<int>(state.range(0))), events, state);
  state.SetLabel("every=" + std::to_string(state.range(0)) + "m");
}
BENCHMARK(BM_SlideSweep)->Arg(1)->Arg(5)->Arg(15)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_StreamDensitySweep(benchmark::State& state) {
  auto events = Events(48, static_cast<int>(state.range(0)));
  Drive(RentalQuery(30, 5), events, state);
  state.SetLabel("users=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_StreamDensitySweep)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMillisecond);

void BM_ConcurrentQueries(benchmark::State& state) {
  static auto events = Events(48, 60);
  int queries = static_cast<int>(state.range(0));
  int64_t evals = 0;
  for (auto _ : state) {
    ContinuousEngine engine;
    CountingSink sink;
    engine.AddSink(&sink);
    for (int i = 0; i < queries; ++i) {
      std::string q = RentalQuery(10 + 10 * i, 5);
      q.replace(q.find("sq"), 2, "sq" + std::to_string(i));
      (void)engine.RegisterText(q);
    }
    for (const auto& event : events) {
      (void)engine.Ingest(event.graph, event.timestamp);
    }
    if (!engine.Drain().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    evals += engine.evaluations_run();
  }
  state.counters["evaluations_per_run"] =
      static_cast<double>(evals) / state.iterations();
  state.SetLabel(std::to_string(queries) + " queries");
}
BENCHMARK(BM_ConcurrentQueries)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
