// Ablation (DESIGN.md §7.3): the cost and output volume of the three
// report policies over the same stream and query. SNAPSHOT pays output
// volume (it re-emits standing results every period); the delta policies
// pay one bag difference per evaluation but emit only changes.
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_observability.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

std::string QueryWithPolicy(const char* policy) {
  std::string q = R"(
    REGISTER QUERY pq STARTING AT '1970-01-01T00:05'
    {
      MATCH (b:Bike)-[r:rentedAt]->(s:Station)
      WITHIN PT1H
      EMIT r.user_id, s.id, r.val_time
  )";
  q += policy;
  q += " EVERY PT5M }";
  return q;
}

void BM_ReportPolicy(benchmark::State& state) {
  const char* policies[] = {"SNAPSHOT", "ON ENTERING", "ON EXITING"};
  const char* policy = policies[state.range(0)];

  workloads::BikeSharingConfig config;
  config.num_events = 48;
  config.num_users = 80;
  config.num_stations = 25;
  auto events = workloads::GenerateBikeSharingStream(config);

  int64_t rows = 0;
  int64_t evals = 0;
  std::optional<ContinuousEngine> engine;
  for (auto _ : state) {
    engine.emplace();
    CountingSink sink;
    engine->AddSink(&sink);
    if (!engine->RegisterText(QueryWithPolicy(policy)).ok()) {
      state.SkipWithError("register failed");
      return;
    }
    for (const auto& event : events) {
      (void)engine->Ingest(event.graph, event.timestamp);
    }
    if (!engine->Drain().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    rows += sink.rows();
    evals += sink.evaluations();
  }
  if (engine.has_value()) {
    benchsupport::AddStageCounters(state, *engine, "pq");
  }
  state.counters["rows_emitted_per_run"] =
      state.iterations() > 0
          ? static_cast<double>(rows) / state.iterations()
          : 0;
  state.counters["evaluations_per_run"] =
      state.iterations() > 0
          ? static_cast<double>(evals) / state.iterations()
          : 0;
  state.SetLabel(policy);
}
BENCHMARK(BM_ReportPolicy)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
