// Shared bench plumbing for the engine's observability layer: fold the
// per-stage pipeline breakdown into google-benchmark user counters (so
// `--benchmark_format=json` / BENCH_*.json rows carry stage costs, not
// just wall time) and dump the whole metrics registry as a tagged JSON
// line on stderr for ad-hoc inspection.
#ifndef SERAPH_BENCH_BENCH_OBSERVABILITY_H_
#define SERAPH_BENCH_BENCH_OBSERVABILITY_H_

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "seraph/continuous_engine.h"

namespace seraph {
namespace benchsupport {

// Merges `query`'s stage breakdown (from the given engine — typically the
// last instance a bench iteration built) into the benchmark's user
// counters as per-evaluation averages. With an empty `query`, uses the
// engine's first registered query.
inline void AddStageCounters(benchmark::State& state,
                             const ContinuousEngine& engine,
                             std::string query = "") {
  if (query.empty()) {
    auto names = engine.QueryNames();
    if (names.empty()) return;
    query = names.front();
  }
  auto stats = engine.StatsFor(query);
  if (!stats.ok() || stats->evaluations == 0) return;
  const double evals = static_cast<double>(stats->evaluations);
  state.counters["stage_window_us"] =
      static_cast<double>(stats->window_micros) / evals;
  state.counters["stage_snapshot_us"] =
      static_cast<double>(stats->snapshot_micros) / evals;
  state.counters["stage_match_us"] =
      static_cast<double>(stats->match_micros) / evals;
  state.counters["stage_policy_us"] =
      static_cast<double>(stats->policy_micros) / evals;
  state.counters["stage_sink_us"] =
      static_cast<double>(stats->sink_micros) / evals;
  state.counters["reuse_rate"] =
      static_cast<double>(stats->reused_results) / evals;
}

// One tagged JSON line on stderr (stdout belongs to the benchmark
// reporter): `SERAPH_ENGINE_METRICS <tag> {...}`.
inline void DumpEngineMetricsJson(const ContinuousEngine& engine,
                                  const std::string& tag) {
  std::cerr << "SERAPH_ENGINE_METRICS " << tag << " "
            << engine.metrics().ToJson() << "\n";
}

}  // namespace benchsupport
}  // namespace seraph

#endif  // SERAPH_BENCH_BENCH_OBSERVABILITY_H_
