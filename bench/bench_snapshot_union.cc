// Figure 2 machinery: property-graph union (Def. 5.4) and snapshot-graph
// construction (Def. 5.5) as a function of element count and element size.
#include <benchmark/benchmark.h>

#include <random>

#include "graph/graph_builder.h"
#include "graph/graph_union.h"
#include "stream/snapshot.h"

namespace {

using namespace seraph;

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

// A stream element with `nodes_per_event` nodes drawn from a universe of
// `universe` ids (overlap across elements exercises the merge path).
PropertyGraph MakeElement(std::mt19937_64* rng, int nodes_per_event,
                          int universe, int64_t* rel_counter) {
  std::uniform_int_distribution<int64_t> id_dist(1, universe);
  PropertyGraph g;
  std::vector<NodeId> ids;
  for (int i = 0; i < nodes_per_event; ++i) {
    NodeId id{id_dist(*rng)};
    NodeData data;
    data.labels = {"N"};
    data.properties = {{"v", Value::Int(id.value)}};
    g.MergeNode(id, data);
    ids.push_back(id);
  }
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    if (ids[i] == ids[i + 1]) continue;
    RelData rel;
    rel.type = "E";
    rel.src = ids[i];
    rel.trg = ids[i + 1];
    (void)g.MergeRelationship(RelId{++*rel_counter}, rel);
  }
  return g;
}

void BM_MergeUnionPair(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  std::mt19937_64 rng(1);
  int64_t rels = 0;
  PropertyGraph a = MakeElement(&rng, size, size * 2, &rels);
  PropertyGraph b = MakeElement(&rng, size, size * 2, &rels);
  for (auto _ : state) {
    auto u = MergeUnion(a, b);
    benchmark::DoNotOptimize(u);
  }
  state.SetComplexityN(size);
}
BENCHMARK(BM_MergeUnionPair)->Range(16, 4096)->Complexity();

void BM_StrictUnionConsistencyCheck(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  std::mt19937_64 rng(2);
  int64_t rels = 0;
  // Identical operands: worst case for the overlap check.
  PropertyGraph a = MakeElement(&rng, size, size, &rels);
  for (auto _ : state) {
    auto u = StrictUnion(a, a);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_StrictUnionConsistencyCheck)->Range(16, 1024);

void BM_BuildSnapshot(benchmark::State& state) {
  int64_t window_elements = state.range(0);
  std::mt19937_64 rng(3);
  int64_t rels = 0;
  PropertyGraphStream stream;
  for (int64_t i = 0; i < window_elements; ++i) {
    (void)stream.Append(MakeElement(&rng, 20, 200, &rels), T(i));
  }
  TimeInterval window{T(-1), T(window_elements)};
  for (auto _ : state) {
    auto snapshot = BuildSnapshot(stream, window,
                                  IntervalBounds::kLeftOpenRightClosed);
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetComplexityN(window_elements);
}
BENCHMARK(BM_BuildSnapshot)->Range(4, 512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
