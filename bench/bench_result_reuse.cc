// Ablation: result reuse on unchanged window contents (§6 "avoidable
// re-executions"). A bursty stream leaves many consecutive evaluation
// instants with identical active substreams; with reuse enabled those
// evaluations skip matching entirely.
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_observability.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

// A bursty stream: `bursts` bursts of activity separated by long silences.
std::vector<workloads::Event> BurstyStream(int bursts, int quiet_minutes) {
  workloads::BikeSharingConfig config;
  config.num_events = 6;  // 30 minutes of activity per burst.
  config.num_users = 60;
  config.num_stations = 25;
  std::vector<workloads::Event> all;
  Timestamp offset = Timestamp::FromMillis(0);
  for (int b = 0; b < bursts; ++b) {
    config.seed = 100 + b;
    config.start = offset;
    auto burst = workloads::GenerateBikeSharingStream(config);
    all.insert(all.end(), burst.begin(), burst.end());
    offset = offset + Duration::FromMinutes(30 + quiet_minutes);
  }
  return all;
}

void BM_BurstyStream(benchmark::State& state) {
  bool reuse = state.range(0) != 0;
  int quiet = static_cast<int>(state.range(1));
  auto events = BurstyStream(4, quiet);
  int64_t reused = 0;
  int64_t evals = 0;
  std::optional<ContinuousEngine> engine;
  for (auto _ : state) {
    EngineOptions options;
    options.reuse_unchanged_windows = reuse;
    engine.emplace(options);
    CountingSink sink;
    engine->AddSink(&sink);
    (void)engine->RegisterText(R"(
      REGISTER QUERY q STARTING AT '1970-01-01T00:05'
      {
        MATCH (b:Bike)-[r:rentedAt]->(s:Station)
        WITHIN PT20M
        EMIT r.user_id, s.id ON ENTERING EVERY PT1M
      })");
    for (const auto& event : events) {
      (void)engine->Ingest(event.graph, event.timestamp);
    }
    if (!engine->Drain().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    QueryStats stats = *engine->StatsFor("q");
    reused += stats.reused_results;
    evals += stats.evaluations;
  }
  state.counters["evaluations"] =
      static_cast<double>(evals) / state.iterations();
  state.counters["reused"] = static_cast<double>(reused) / state.iterations();
  if (engine.has_value()) {
    benchsupport::AddStageCounters(state, *engine, "q");
  }
  state.SetLabel(std::string(reuse ? "reuse" : "no_reuse") + "/quiet=" +
                 std::to_string(quiet) + "m");
}
BENCHMARK(BM_BurstyStream)
    ->ArgsProduct({{0, 1}, {30, 120}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
