// Sharded serving tier scaling (docs/INTERNALS.md, "Sharded serving
// tier"): the same hash-partitioned workload pushed through one plain
// ContinuousEngine (the `single` arm) and through ShardedEngine fleets
// of 1, 2, and 4 shards. Elements are routed HashByNodeId, so each
// shard matches over ~1/N of the stream; the coordinator's merge keeps
// output deterministic. The interesting curve is evaluation-bound:
// per-shard windows shrink with N, so fleet wall-clock per event should
// fall as shards are added, while the 1-shard fleet exposes the
// coordinator's overhead over the bare engine.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "seraph/stream_router.h"
#include "shard/partitioner.h"
#include "shard/sharded_engine.h"

namespace {

using namespace seraph;

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

std::string IsoMinute(int64_t minutes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "1970-01-01T%02d:%02d",
                static_cast<int>(minutes / 60),
                static_cast<int>(minutes % 60));
  return buf;
}

constexpr int kMinutes = 48;
constexpr int kNodesPerEvent = 16;
constexpr int kAnchorUniverse = 256;  // Rotating node-id space.
constexpr int kWindowMinutes = 8;

// One element per minute: a chain of :N nodes over a rotating id space
// wired with E-typed relationships. HashByNodeId anchors each element at
// its smallest node id, spreading consecutive minutes across shards.
std::vector<std::pair<int64_t, PropertyGraph>> BuildWorkload() {
  std::vector<std::pair<int64_t, PropertyGraph>> events;
  int64_t next_rel_id = 1;
  for (int64_t m = 0; m < kMinutes; ++m) {
    GraphBuilder builder;
    std::vector<int64_t> ids;
    for (int i = 0; i < kNodesPerEvent; ++i) {
      int64_t id = (m * kNodesPerEvent + i * 7) % kAnchorUniverse;
      ids.push_back(id);
      builder.Node(id, {"N"}, {{"v", Value::Int((m + i) % 10)}});
    }
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      builder.Rel(next_rel_id++, ids[i], ids[i + 1], "E");
    }
    events.emplace_back(m, builder.Build());
  }
  return events;
}

std::string Query() {
  return "REGISTER QUERY q STARTING AT '" + IsoMinute(kWindowMinutes) +
         "' { MATCH (a:N)-[r:E]->(b:N) WITHIN PT" +
         std::to_string(kWindowMinutes) +
         "M EMIT a.v AS av, b.v AS bv SNAPSHOT EVERY PT1M }";
}

// Arg 0 = shard count; 0 means the bare single-engine baseline.
void BM_ShardedPipeline(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const auto workload = BuildWorkload();
  const std::string query = Query();
  int64_t emissions = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CountingSink sink;
    if (shards == 0) {
      ContinuousEngine engine;
      engine.AddSink(&sink);
      if (!engine.RegisterText(query).ok()) {
        state.SkipWithError("register failed");
        return;
      }
      state.ResumeTiming();
      for (const auto& [minute, graph] : workload) {
        if (!engine.Ingest(graph, T(minute)).ok() ||
            !engine.AdvanceTo(T(minute)).ok()) {
          state.SkipWithError("single run failed");
          return;
        }
      }
    } else {
      shard::ShardedEngineOptions options;
      options.shards = shards;
      shard::ShardedEngine fleet(options);
      fleet.AddSink(&sink);
      fleet.AddRoute("", AcceptAll(), shard::HashByNodeId());
      if (!fleet.RegisterText(query).ok()) {
        state.SkipWithError("register failed");
        return;
      }
      state.ResumeTiming();
      for (const auto& [minute, graph] : workload) {
        if (!fleet.Ingest(graph, T(minute)).ok() || !fleet.PumpAll().ok()) {
          state.SkipWithError("sharded run failed");
          return;
        }
      }
      if (!fleet.Finish().ok()) {
        state.SkipWithError("finish failed");
        return;
      }
    }
    emissions += sink.evaluations();
  }
  state.counters["events"] = static_cast<double>(kMinutes);
  state.counters["emits"] =
      static_cast<double>(emissions) / state.iterations();
  state.SetLabel(shards == 0 ? "single"
                             : "shards=" + std::to_string(shards));
}
BENCHMARK(BM_ShardedPipeline)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
