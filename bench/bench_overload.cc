// Overload-path costs (docs/INTERNALS.md, "Overload & backpressure"):
// what a bounded queue charges the producer per admission under each
// overflow policy, and what degraded mode buys the driver when it has a
// backlog to catch up on. Compare the labelled series in the
// bench-baseline diff; the absolute numbers size `--queue-capacity` and
// `--shed-lag-ms` for a deployment.
#include <benchmark/benchmark.h>

#include <memory>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/stream_driver.h"
#include "stream/event_queue.h"

namespace seraph {
namespace {

std::shared_ptr<const PropertyGraph> OneNode() {
  return std::make_shared<const PropertyGraph>(
      GraphBuilder().Node(1, {"X"}, {{"id", Value::Int(1)}}).Build());
}

// Produce → (on refusal) poll + trim, against a queue 16x smaller than
// the workload, under each policy. The ManualClock pins `block` to
// virtual time so its bounded wait costs attempts, not wall clock. The
// per-element rate is the producer-visible admission cost including the
// policy's resolution work (trim scan, eviction, retry).
void BM_BoundedAdmission(benchmark::State& state) {
  const auto policy = static_cast<OverflowPolicy>(state.range(0));
  const int kEvents = 1024;
  EventQueue::Options options;
  options.capacity = 64;
  options.overflow_policy = policy;
  auto graph = OneNode();
  ManualClock clock(0);
  int64_t shed = 0;
  for (auto _ : state) {
    EventQueue queue(options);
    queue.SetClock(&clock);
    queue.SetShedCallback([&](const StreamElement&) { ++shed; });
    queue.Subscribe("c");
    for (int i = 0; i < kEvents; ++i) {
      while (!queue.Produce(graph, Timestamp::FromMillis(i)).ok()) {
        auto polled = queue.Poll("c", options.capacity);
        benchmark::DoNotOptimize(polled);
        queue.TrimCommitted();
      }
    }
    // Drain the tail so every iteration starts from the same state.
    auto rest = queue.Poll("c", kEvents);
    benchmark::DoNotOptimize(rest);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
  state.counters["shed"] = static_cast<double>(shed);
  state.SetLabel(OverflowPolicyName(policy));
}
BENCHMARK(BM_BoundedAdmission)
    ->Arg(static_cast<int>(OverflowPolicy::kBlock))
    ->Arg(static_cast<int>(OverflowPolicy::kReject))
    ->Arg(static_cast<int>(OverflowPolicy::kShedOldest));

// A driver facing a 4096-element backlog (event-time lag ~4 s), normal
// vs. degraded: degraded mode polls 16x larger batches, so the delta is
// the per-pump overhead it amortizes away. No queries are registered —
// the cost measured is the delivery loop itself.
void BM_DegradedCatchUp(benchmark::State& state) {
  const bool degraded = state.range(0) != 0;
  const int kEvents = 4096;
  auto graph = OneNode();
  int64_t degraded_entries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EventQueue queue;
    for (int i = 0; i < kEvents; ++i) {
      (void)queue.Produce(graph, Timestamp::FromMillis(i));
    }
    ContinuousEngine engine;
    StreamDriver::Options options;
    options.poll_batch = 16;
    if (degraded) {
      options.shed_lag_millis = 1;  // Any backlog counts as overload.
      options.degraded_poll_batch = 256;
    }
    StreamDriver driver(&queue, &engine, options);
    state.ResumeTiming();
    auto delivered = driver.PumpAll();
    benchmark::DoNotOptimize(delivered);
    degraded_entries = driver.degraded_entries();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kEvents);
  // Makes a silently-disarmed degraded arm visible in the output.
  state.counters["degraded_entries"] = static_cast<double>(degraded_entries);
  state.SetLabel(degraded ? "degraded" : "normal");
}
BENCHMARK(BM_DegradedCatchUp)->Arg(0)->Arg(1);

}  // namespace
}  // namespace seraph

BENCHMARK_MAIN();
