// Ablation: delta matching (docs/INTERNALS.md, "Incremental
// evaluation"). A large window with a small churning hot set is the
// regime the partial-match index targets: full re-matching scans every
// window node at every instant (cost linear in window size), while the
// delta path repairs the index from the advance's dirty sets and emits
// from it (cost proportional to churn). With the churn held fixed, the
// steady-state evaluation latency must stay essentially flat as the
// window grows 1x → 8x under delta matching, and grow linearly without
// it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_observability.h"
#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"

namespace {

using namespace seraph;

Timestamp T(int64_t minutes) {
  return Timestamp::FromMillis(minutes * 60'000);
}

std::string IsoMinute(int64_t minutes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "1970-01-01T%02d:%02d",
                static_cast<int>(minutes / 60),
                static_cast<int>(minutes % 60));
  return buf;
}

constexpr int kBaseWindowMinutes = 8;  // WITHIN at multiplier 1.
constexpr int kFillNodesPerMinute = 100;
constexpr int kHotNodes = 16;   // Fixed churning subset, ids 1..16.
constexpr int kChurnMinutes = 8;

// One element per minute. Fill elements carry bulk :N nodes (fresh ids)
// wired with F-typed relationships — window ballast the pattern's E-type
// anchor rejects but a full re-match must still scan. Churn elements
// re-merge the hot nodes (payload update → dirty nodes) and add fresh
// E-typed relationships among them (dirty rels), so every advance's
// dirty set is O(hot + one evicted fill element) regardless of the
// window multiplier.
struct DeltaWorkload {
  std::vector<std::pair<int64_t, PropertyGraph>> events;  // (minute, graph).
  int64_t fill_end;  // First churn minute; evaluations start here.
  int64_t end;       // Last minute + 1.
};

DeltaWorkload BuildWorkload(int window_minutes) {
  DeltaWorkload out;
  int64_t next_node_id = 1000;  // Above the hot set.
  int64_t next_rel_id = 1;
  for (int64_t m = 0; m < window_minutes; ++m) {
    GraphBuilder builder;
    std::vector<int64_t> ids;
    for (int i = 0; i < kFillNodesPerMinute; ++i) {
      ids.push_back(next_node_id);
      builder.Node(next_node_id++, {"N"},
                   {{"v", Value::Int(static_cast<int64_t>(i % 10))}});
    }
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      builder.Rel(next_rel_id++, ids[i], ids[i + 1], "F");
    }
    out.events.emplace_back(m, builder.Build());
  }
  out.fill_end = window_minutes;
  for (int64_t m = 0; m < kChurnMinutes; ++m) {
    GraphBuilder builder;
    for (int h = 1; h <= kHotNodes; ++h) {
      builder.Node(h, {"N"}, {{"v", Value::Int((m + h) % 10)}});
    }
    for (int h = 1; h < kHotNodes; ++h) {
      builder.Rel(next_rel_id++, h, h + 1, "E");
    }
    out.events.emplace_back(window_minutes + m, builder.Build());
  }
  out.end = window_minutes + kChurnMinutes;
  return out;
}

// Times only the steady-state churn evaluations: engine construction,
// stream ingestion, and the first evaluation (which pays the one-off
// index build) run with the timer paused.
void BM_WindowScaling(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  const int multiplier = static_cast<int>(state.range(1));
  const int window_minutes = kBaseWindowMinutes * multiplier;
  const DeltaWorkload workload = BuildWorkload(window_minutes);
  const std::string query =
      "REGISTER QUERY q STARTING AT '" + IsoMinute(workload.fill_end) +
      "' { MATCH (a:N)-[r:E]->(b:N) WITHIN PT" +
      std::to_string(window_minutes) +
      "M EMIT a.v AS av, b.v AS bv SNAPSHOT EVERY PT1M }";
  int64_t evals = 0;
  std::optional<ContinuousEngine> engine;
  CountingSink sink;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions options;
    options.delta_matching = delta;
    engine.emplace(options);
    engine->AddSink(&sink);
    if (!engine->RegisterText(query).ok()) {
      state.SkipWithError("register failed");
      return;
    }
    for (const auto& [minute, graph] : workload.events) {
      (void)engine->Ingest(graph, T(minute));
    }
    // First evaluation: full window build on both arms (delta pays its
    // index construction here), excluded from the steady-state timing.
    if (!engine->AdvanceTo(T(workload.fill_end)).ok()) {
      state.SkipWithError("warmup advance failed");
      return;
    }
    state.ResumeTiming();
    if (!engine->AdvanceTo(T(workload.end + 1)).ok()) {
      state.SkipWithError("advance failed");
      return;
    }
    evals += static_cast<int64_t>(engine->StatsFor("q")->evaluations) - 1;
  }
  state.counters["evals"] = static_cast<double>(evals) / state.iterations();
  state.counters["window_nodes"] =
      static_cast<double>(window_minutes) * kFillNodesPerMinute;
  if (engine.has_value()) {
    QueryStats stats = *engine->StatsFor("q");
    state.counters["fresh"] = static_cast<double>(stats.fresh_executions);
    benchsupport::AddStageCounters(state, *engine, "q");
  }
  state.SetLabel(std::string(delta ? "delta" : "full") + "/window=" +
                 std::to_string(multiplier) + "x");
}
BENCHMARK(BM_WindowScaling)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
