// The acceptance guard for the emit-latency layer: arrival stamping and
// per-element latency accounting must stay within a few percent of a
// stamping-disabled engine (docs/INTERNALS.md, "Latency accounting &
// lag"). Arg(0) runs with `latency_stamping = false` (the ablation arm),
// Arg(1) with the default stamping on — compare the two labelled series
// in the bench-baseline diff.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "seraph/continuous_engine.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

// The full running-example pipeline end to end, toggled on stamping.
// Everything else (queries, events, sinks) is identical across the two
// arms, so the delta isolates the cost of NowMicros stamping at ingest
// plus the cursor walk and histogram records at delivery.
void BM_StampingOverheadGuard(benchmark::State& state) {
  const bool stamping = state.range(0) != 0;
  std::vector<workloads::Event> events =
      workloads::BuildRunningExampleStream();
  int64_t latency_samples = 0;
  for (auto _ : state) {
    EngineOptions options;
    options.latency_stamping = stamping;
    ContinuousEngine engine(options);
    CollectingSink sink;
    engine.AddSink(&sink);
    (void)engine.RegisterText(workloads::RunningExampleSeraphQuery());
    for (const auto& event : events) {
      (void)engine.Ingest(event.graph, event.timestamp);
    }
    (void)engine.Drain();
    benchmark::DoNotOptimize(engine);
    const Histogram* h =
        engine.metrics().FindHistogram("seraph_engine_emit_latency_micros");
    latency_samples = h != nullptr ? h->Snapshot().count : 0;
  }
  // Stamping on must actually record; off must record nothing — the
  // counter makes a silently-broken arm visible in the bench output.
  state.counters["latency_samples"] = static_cast<double>(latency_samples);
  state.SetLabel(stamping ? "stamping_on" : "stamping_off");
}
BENCHMARK(BM_StampingOverheadGuard)->Arg(0)->Arg(1);

// The hot half of the stamping cost in isolation: ingest-only (no
// evaluations), so the per-element clock read and watermark/lag gauge
// updates dominate.
void BM_IngestStampingOnly(benchmark::State& state) {
  const bool stamping = state.range(0) != 0;
  std::vector<workloads::Event> events =
      workloads::BuildRunningExampleStream();
  for (auto _ : state) {
    EngineOptions options;
    options.latency_stamping = stamping;
    ContinuousEngine engine(options);
    for (const auto& event : events) {
      (void)engine.Ingest(event.graph, event.timestamp);
    }
    benchmark::DoNotOptimize(engine);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
  state.SetLabel(stamping ? "stamping_on" : "stamping_off");
}
BENCHMARK(BM_IngestStampingOnly)->Arg(0)->Arg(1);

}  // namespace
}  // namespace seraph

BENCHMARK_MAIN();
