// Parallel multi-query evaluation: N copies of the same query over one
// shared stream, evaluated with 1/2/4/8 worker threads. Since the copies
// share the ET grid, every instant is one batch of N concurrent
// evaluations — the best case the batch-barrier scheduler is built for.
// Each parallel run is also checked against the serial run for identical
// results (content and delivery order), so the speedup numbers can never
// come from dropping or reordering work.
//
// Interpreting the numbers: the scheduler can only use as many hardware
// threads as the host exposes — on a single-core machine (some CI
// containers) every thread count degenerates to serial plus scheduling
// overhead, and no speedup is expected. Compare real_time across the
// thread counts on a multicore host.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

constexpr int kQueries = 16;

std::string CopyQuery(int index) {
  // A MATCH with a join so stage 3 has real CPU work to parallelize.
  return "REGISTER QUERY pq" + std::to_string(index) +
         " STARTING AT '1970-01-01T00:05' { "
         "MATCH (b:Bike)-[r:rentedAt]->(s:Station) WITHIN PT30M "
         "EMIT r.user_id, s.id ON ENTERING EVERY PT5M }";
}

const std::vector<workloads::Event>& Events() {
  static auto* events = [] {
    workloads::BikeSharingConfig config;
    config.num_events = 96;  // 8 hours at one event per 5 minutes.
    config.num_users = 60;
    config.num_stations = 30;
    return new std::vector<workloads::Event>(
        workloads::GenerateBikeSharingStream(config));
  }();
  return *events;
}

struct Delivery {
  std::string query;
  Timestamp t;
  TimeAnnotatedTable table;
};

struct OrderSink : EmitSink {
  std::vector<Delivery> calls;
  Status OnResult(const std::string& name, Timestamp t,
                  const TimeAnnotatedTable& table) override {
    calls.push_back({name, t, table});
    return Status::OK();
  }
};

// Runs the fleet; `*ok` reports whether every step succeeded.
std::vector<Delivery> RunFleet(int eval_threads, bool* ok) {
  *ok = true;
  EngineOptions options;
  options.eval_threads = eval_threads;
  ContinuousEngine engine(options);
  OrderSink sink;
  engine.AddSink(&sink);
  for (int i = 0; i < kQueries; ++i) {
    if (!engine.RegisterText(CopyQuery(i)).ok()) {
      *ok = false;
      return {};
    }
  }
  for (const auto& event : Events()) {
    (void)engine.Ingest(event.graph, event.timestamp);
  }
  if (!engine.Drain().ok()) {
    *ok = false;
    return {};
  }
  return std::move(sink.calls);
}

bool SameDeliveries(const std::vector<Delivery>& a,
                    const std::vector<Delivery>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].query != b[i].query || !(a[i].t == b[i].t) ||
        !(a[i].table == b[i].table)) {
      return false;
    }
  }
  return true;
}

void BM_ParallelQueryFleet(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  // Serial oracle, computed once: the parallel engine must reproduce it
  // exactly.
  static auto* oracle = new std::vector<Delivery>([] {
    bool ok = false;
    auto calls = RunFleet(1, &ok);
    if (!ok) calls.clear();
    return calls;
  }());
  if (oracle->empty()) {
    state.SkipWithError("serial oracle run failed");
    return;
  }
  for (auto _ : state) {
    bool ok = false;
    std::vector<Delivery> got = RunFleet(threads, &ok);
    if (!ok) {
      state.SkipWithError("fleet run failed");
      return;
    }
    if (!SameDeliveries(got, *oracle)) {
      state.SkipWithError("parallel run diverged from serial run");
      return;
    }
    benchmark::DoNotOptimize(got);
  }
  state.counters["queries"] = kQueries;
  state.counters["threads"] = threads;
  state.SetLabel(std::to_string(kQueries) + " queries, " +
                 std::to_string(threads) + " thread(s)");
}
BENCHMARK(BM_ParallelQueryFleet)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
