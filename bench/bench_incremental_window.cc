// Ablation (DESIGN.md §7.2): incremental window maintenance vs. rebuilding
// each evaluation's snapshot from scratch, as a function of the
// window-to-slide ratio. The expectation: rebuild cost grows with the
// window width (it re-merges every covered element each evaluation) while
// incremental cost tracks the slide (the per-step element delta), so the
// gap widens as windows get wider relative to the slide.
#include <benchmark/benchmark.h>

#include <random>

#include "stream/snapshot.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraphStream MakeStream(int minutes) {
  workloads::BikeSharingConfig config;
  config.num_events = minutes / 5;
  config.event_period = Duration::FromMinutes(5);
  config.num_users = 80;
  config.num_stations = 25;
  PropertyGraphStream stream;
  (void)workloads::AppendEvents(
      workloads::GenerateBikeSharingStream(config), &stream);
  return stream;
}

// One full pass: slide a window of `width` minutes by 5-minute steps over
// the whole stream, materializing the snapshot at every step.
void BM_WindowMaintenance(benchmark::State& state) {
  bool incremental = state.range(0) != 0;
  int width = static_cast<int>(state.range(1));
  static PropertyGraphStream stream = MakeStream(480);  // 8 hours.
  int64_t horizon = 480;
  int64_t snapshot_nodes = 0;
  int64_t steps = 0;
  for (auto _ : state) {
    if (incremental) {
      IncrementalSnapshotter inc(&stream,
                                 IntervalBounds::kLeftOpenRightClosed);
      for (int64_t end = 5; end <= horizon; end += 5) {
        (void)inc.Advance(TimeInterval{T(end - width), T(end)});
        snapshot_nodes += static_cast<int64_t>(inc.graph().num_nodes());
        ++steps;
      }
    } else {
      for (int64_t end = 5; end <= horizon; end += 5) {
        auto snapshot =
            BuildSnapshot(stream, TimeInterval{T(end - width), T(end)},
                          IntervalBounds::kLeftOpenRightClosed);
        snapshot_nodes += static_cast<int64_t>(snapshot->num_nodes());
        ++steps;
      }
    }
  }
  state.counters["evaluations"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kIsRate);
  state.counters["avg_snapshot_nodes"] =
      steps > 0 ? static_cast<double>(snapshot_nodes) / steps : 0;
  state.SetLabel(std::string(incremental ? "incremental" : "rebuild") +
                 "/width=" + std::to_string(width) + "m/slide=5m");
}
BENCHMARK(BM_WindowMaintenance)
    ->ArgsProduct({{0, 1}, {15, 60, 120, 240}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
