// Pattern-matching throughput (the MATCH step of Fig. 5): fixed-hop
// chains, variable-length expansion depth, shortestPath BFS, and the
// label-indexed-seed vs. full-scan ablation (DESIGN.md §7.5).
#include <benchmark/benchmark.h>

#include <random>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"

namespace {

using namespace seraph;

// A layered graph: `layers` levels of `width` nodes, each node linked to
// two nodes of the next layer; first layer labelled Src, last Dst, all
// labelled N.
PropertyGraph Layered(int layers, int width) {
  GraphBuilder b;
  auto id = [width](int layer, int i) {
    return static_cast<int64_t>(layer) * width + i + 1;
  };
  for (int layer = 0; layer < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      if (layer == 0) {
        b.Node(id(layer, i), {"N", "Src"}, {{"i", Value::Int(i)}});
      } else if (layer == layers - 1) {
        b.Node(id(layer, i), {"N", "Dst"}, {{"i", Value::Int(i)}});
      } else {
        b.Node(id(layer, i), {"N"}, {{"i", Value::Int(i)}});
      }
    }
  }
  int64_t rel = 0;
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      b.Rel(++rel, id(layer, i), id(layer + 1, i), "E");
      b.Rel(++rel, id(layer, i), id(layer + 1, (i + 1) % width), "E");
    }
  }
  return b.Build();
}

Table MustRun(const Query& q, const PropertyGraph& g) {
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(q, g, options);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

void BM_FixedChain(benchmark::State& state) {
  int hops = static_cast<int>(state.range(0));
  PropertyGraph g = Layered(hops + 1, 32);
  std::string text = "MATCH (a:Src)";
  for (int i = 0; i < hops; ++i) text += "-[:E]->()";
  text += " RETURN count(*) AS c";
  auto q = ParseCypherQuery(text);
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(std::to_string(hops) + " hops");
}
BENCHMARK(BM_FixedChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_VarLengthDepth(benchmark::State& state) {
  int max = static_cast<int>(state.range(0));
  PropertyGraph g = Layered(10, 16);
  auto q = ParseCypherQuery("MATCH (a:Src)-[:E*1.." + std::to_string(max) +
                            "]->(x) RETURN count(*) AS c");
  int64_t matches = 0;
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    matches = t.rows()[0].GetOrNull("c").AsInt();
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_VarLengthDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_ShortestPath(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  PropertyGraph g = Layered(layers, 16);
  auto q = ParseCypherQuery(
      "MATCH p = shortestPath((a:Src {i: 0})-[:E*..32]-(b:Dst {i: 0})) "
      "RETURN length(p) AS len");
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ShortestPath)->Arg(4)->Arg(8)->Arg(16);

// Ablation: seeding node candidates from the label index vs. scanning all
// nodes (an anonymous-label pattern forces the scan).
void BM_SeedSelectivity(benchmark::State& state) {
  bool indexed = state.range(0) != 0;
  PropertyGraph g = Layered(12, 64);  // 768 nodes, 64 Src.
  auto q = ParseCypherQuery(indexed
                                ? "MATCH (a:Src)-[:E]->(b) RETURN count(*) "
                                  "AS c"
                                : "MATCH (a {i: 0})-[:E]->(b) "
                                  "RETURN count(*) AS c");
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(indexed ? "label_indexed_seed" : "full_scan_seed");
}
BENCHMARK(BM_SeedSelectivity)->Arg(1)->Arg(0);

// Ablation: greedy join ordering across comma patterns. The query lists an
// unselective disconnected pattern first; the optimizer starts from the
// selective one instead and turns the cross product into a pinned join.
void BM_JoinOrder(benchmark::State& state) {
  bool optimized = state.range(0) != 0;
  PropertyGraph g = Layered(8, 48);
  auto q = ParseCypherQuery(
      "MATCH (x)-[:E]->(y), (a:Src {i: 0})-[:E]->(x) "
      "RETURN count(*) AS c");
  ExecutionOptions options;
  options.optimize_match_order = optimized;
  for (auto _ : state) {
    auto result = ExecuteQueryOnGraph(*q, g, options);
    if (!result.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(optimized ? "greedy_join_order" : "textual_order");
}
BENCHMARK(BM_JoinOrder)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
