// Pattern-matching throughput (the MATCH step of Fig. 5): fixed-hop
// chains, variable-length expansion depth, shortestPath BFS, the
// label-indexed-seed vs. full-scan ablation (DESIGN.md §7.5), the
// most-selective-label seed ablation, and morsel-partitioned parallel
// matching scaling (docs/INTERNALS.md, "Intra-query parallelism").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "common/thread_pool.h"
#include "cypher/executor.h"
#include "cypher/matcher.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"

namespace {

using namespace seraph;

// A layered graph: `layers` levels of `width` nodes, each node linked to
// two nodes of the next layer; first layer labelled Src, last Dst, all
// labelled N.
PropertyGraph Layered(int layers, int width) {
  GraphBuilder b;
  auto id = [width](int layer, int i) {
    return static_cast<int64_t>(layer) * width + i + 1;
  };
  for (int layer = 0; layer < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      if (layer == 0) {
        b.Node(id(layer, i), {"N", "Src"}, {{"i", Value::Int(i)}});
      } else if (layer == layers - 1) {
        b.Node(id(layer, i), {"N", "Dst"}, {{"i", Value::Int(i)}});
      } else {
        b.Node(id(layer, i), {"N"}, {{"i", Value::Int(i)}});
      }
    }
  }
  int64_t rel = 0;
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      b.Rel(++rel, id(layer, i), id(layer + 1, i), "E");
      b.Rel(++rel, id(layer, i), id(layer + 1, (i + 1) % width), "E");
    }
  }
  return b.Build();
}

Table MustRun(const Query& q, const PropertyGraph& g) {
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(q, g, options);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

void BM_FixedChain(benchmark::State& state) {
  int hops = static_cast<int>(state.range(0));
  PropertyGraph g = Layered(hops + 1, 32);
  std::string text = "MATCH (a:Src)";
  for (int i = 0; i < hops; ++i) text += "-[:E]->()";
  text += " RETURN count(*) AS c";
  auto q = ParseCypherQuery(text);
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(std::to_string(hops) + " hops");
}
BENCHMARK(BM_FixedChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_VarLengthDepth(benchmark::State& state) {
  int max = static_cast<int>(state.range(0));
  PropertyGraph g = Layered(10, 16);
  auto q = ParseCypherQuery("MATCH (a:Src)-[:E*1.." + std::to_string(max) +
                            "]->(x) RETURN count(*) AS c");
  int64_t matches = 0;
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    matches = t.rows()[0].GetOrNull("c").AsInt();
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_VarLengthDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_ShortestPath(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  PropertyGraph g = Layered(layers, 16);
  auto q = ParseCypherQuery(
      "MATCH p = shortestPath((a:Src {i: 0})-[:E*..32]-(b:Dst {i: 0})) "
      "RETURN length(p) AS len");
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ShortestPath)->Arg(4)->Arg(8)->Arg(16);

// Ablation: seeding node candidates from the label index vs. scanning all
// nodes (an anonymous-label pattern forces the scan).
void BM_SeedSelectivity(benchmark::State& state) {
  bool indexed = state.range(0) != 0;
  PropertyGraph g = Layered(12, 64);  // 768 nodes, 64 Src.
  auto q = ParseCypherQuery(indexed
                                ? "MATCH (a:Src)-[:E]->(b) RETURN count(*) "
                                  "AS c"
                                : "MATCH (a {i: 0})-[:E]->(b) "
                                  "RETURN count(*) AS c");
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel(indexed ? "label_indexed_seed" : "full_scan_seed");
}
BENCHMARK(BM_SeedSelectivity)->Arg(1)->Arg(0);

// Ablation: greedy join ordering across comma patterns. The query lists an
// unselective disconnected pattern first; the optimizer starts from the
// selective one instead and turns the cross product into a pinned join.
void BM_JoinOrder(benchmark::State& state) {
  bool optimized = state.range(0) != 0;
  PropertyGraph g = Layered(8, 48);
  auto q = ParseCypherQuery(
      "MATCH (x)-[:E]->(y), (a:Src {i: 0})-[:E]->(x) "
      "RETURN count(*) AS c");
  ExecutionOptions options;
  options.optimize_match_order = optimized;
  for (auto _ : state) {
    auto result = ExecuteQueryOnGraph(*q, g, options);
    if (!result.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(optimized ? "greedy_join_order" : "textual_order");
}
BENCHMARK(BM_JoinOrder)->Arg(1)->Arg(0);

// Ablation: seed-label selection. A two-label seed (:N:Src) must start
// from the selective Src index (width nodes), not the textual-first N
// index (layers × width nodes). The result bag is identical either way —
// this measures pure seed-scan cost.
void BM_MultiLabelSeed(benchmark::State& state) {
  bool selective_first = state.range(0) != 0;
  PropertyGraph g = Layered(12, 64);  // 768 N nodes, 64 of them Src.
  // Same semantics, different textual label order; the matcher picks the
  // most selective index regardless, so both arms should cost alike (the
  // ablation documents the fix for the labels[0]-only seed selection).
  auto q = ParseCypherQuery(selective_first
                                ? "MATCH (a:Src:N)-[:E]->(b) "
                                  "RETURN count(*) AS c"
                                : "MATCH (a:N:Src)-[:E]->(b) "
                                  "RETURN count(*) AS c");
  int64_t rows = 0;
  for (auto _ : state) {
    Table t = MustRun(*q, g);
    rows = t.rows()[0].GetOrNull("c").AsInt();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(selective_first ? "selective_label_first"
                                 : "unselective_label_first");
}
BENCHMARK(BM_MultiLabelSeed)->Arg(1)->Arg(0);

// Morsel-partitioned parallel matching over a >=100k-seed scan. The
// serial result is computed once as an oracle and every parallel run is
// diffed against it row by row (bit-identical contract) before timing
// starts. Arg = thread count; 1 = the serial matcher itself.
void BM_ParallelSeedScan(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  // 3 layers × 100k: the Src layer alone provides 100k seed candidates.
  static const PropertyGraph* graph = [] {
    return new PropertyGraph(Layered(3, 100'000));
  }();
  static const Query* query = [] {
    auto parsed = ParseCypherQuery(
        "MATCH (a:Src)-[:E]->(b)-[:E]->(c) RETURN count(*) AS c");
    if (!parsed.ok()) std::abort();
    return new Query(std::move(parsed).value());
  }();
  static const Table* oracle = [] {
    return new Table(MustRun(*query, *graph));
  }();

  ThreadPool pool(threads);
  MatchParallelism par;
  par.pool = &pool;
  par.min_seeds = 1024;
  par.morsel_size = 2048;
  ExecutionOptions options;
  options.match_parallelism = threads > 1 ? &par : nullptr;

  // Oracle diff: identical rows, identical order.
  {
    auto check = ExecuteQueryOnGraph(*query, *graph, options);
    if (!check.ok() || check->rows().size() != oracle->rows().size()) {
      state.SkipWithError("parallel result diverges from serial oracle");
      return;
    }
    for (size_t i = 0; i < oracle->rows().size(); ++i) {
      if (!(check->rows()[i] == oracle->rows()[i])) {
        state.SkipWithError("parallel row differs from serial oracle");
        return;
      }
    }
  }

  for (auto _ : state) {
    auto result = ExecuteQueryOnGraph(*query, *graph, options);
    if (!result.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(threads > 1 ? std::to_string(threads) + " match threads"
                             : "serial matcher");
}
BENCHMARK(BM_ParallelSeedScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
