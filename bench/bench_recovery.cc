// Durability costs (docs/INTERNALS.md, "Durability & recovery"):
//
//   BM_CheckpointWrite   full checkpoint commit (capture + encode +
//                        atomic write of every segment + manifest + GC)
//                        as engine state grows — the per-batch price of
//                        --checkpoint-dir.
//   BM_RecoveryReplay    cold restart cost: load + validate the newest
//                        generation, restore the engine, re-seek the
//                        consumer, and replay the uncheckpointed queue
//                        suffix — as a function of the suffix length.
//
// Checkpoints here disable fsync so the numbers track serialization and
// filesystem work, not device-sync latency (which checkpoint cadence
// amortizes in production). Replay runs assert the recovered engine ends
// at the same clock and evaluation count as the uninterrupted victim, so
// the latency numbers can never come from skipping replay work.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "seraph/stream_driver.h"
#include "stream/event_queue.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;
namespace fs = std::filesystem;

constexpr char kConsumer[] = "bench-recovery";
constexpr char kQuery[] =
    "REGISTER QUERY rq STARTING AT '1970-01-01T00:05' { "
    "MATCH (b:Bike)-[r:rentedAt]->(s:Station) WITHIN PT30M "
    "EMIT r.user_id, s.id SNAPSHOT EVERY PT5M }";

std::vector<workloads::Event> MakeEvents(int count) {
  workloads::BikeSharingConfig config;
  config.num_events = count;
  config.num_users = 60;
  config.num_stations = 30;
  return workloads::GenerateBikeSharingStream(config);
}

std::string FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("bench_recovery_" + tag);
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir.string();
}

// Checkpoint write cost as the checkpointed state (stream elements held
// by the engine window + query state) grows.
void BM_CheckpointWrite(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  const std::string dir = FreshDir("write_" + std::to_string(events));

  EventQueue queue;
  for (const auto& event : MakeEvents(events)) {
    if (!queue.Produce(event.graph, event.timestamp).ok()) {
      state.SkipWithError("produce failed");
      return;
    }
  }
  ContinuousEngine engine;
  CountingSink sink;
  engine.AddSink(&sink);
  if (!engine.RegisterText(kQuery).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  queue.Subscribe(kConsumer);
  StreamDriver::Options driver_options;
  driver_options.consumer = kConsumer;
  StreamDriver driver(&queue, &engine, driver_options);
  if (!driver.PumpAll().ok()) {
    state.SkipWithError("pump failed");
    return;
  }

  persist::CheckpointOptions options;
  options.dir = dir;
  options.keep = 2;
  options.fsync = false;
  persist::CheckpointManager manager(options);
  manager.BindQueue(kConsumer, &queue);

  for (auto _ : state) {
    if (Status s = manager.Checkpoint(&engine); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  const Histogram* bytes =
      engine.metrics().FindHistogram("seraph_checkpoint_bytes");
  if (bytes != nullptr && bytes->count() > 0) {
    state.counters["checkpoint_bytes"] =
        static_cast<double>(bytes->sum() / bytes->count());
  }
  state.counters["events"] = events;
  state.SetLabel(std::to_string(events) + " checkpointed element(s)");

  std::error_code ec;
  fs::remove_all(dir, ec);
}
BENCHMARK(BM_CheckpointWrite)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Recovery latency as the uncheckpointed replay suffix grows: the victim
// checkpoints once after (total - replay) events; every iteration then
// cold-starts a fresh engine, restores, and replays the suffix.
void BM_RecoveryReplay(benchmark::State& state) {
  constexpr int kTotal = 1024;
  const int replay = static_cast<int>(state.range(0));
  const std::string dir = FreshDir("replay_" + std::to_string(replay));
  const std::vector<workloads::Event> events = MakeEvents(kTotal);

  // Victim run: deliver the checkpointed prefix, then commit one
  // generation at the batch barrier (offsets already committed by the
  // driver, so the cut is consistent).
  EventQueue setup_queue;
  for (int i = 0; i < kTotal - replay; ++i) {
    if (!setup_queue.Produce(events[i].graph, events[i].timestamp).ok()) {
      state.SkipWithError("produce failed");
      return;
    }
  }
  int64_t victim_evals = 0;
  {
    ContinuousEngine victim;
    CountingSink sink;
    victim.AddSink(&sink);
    if (!victim.RegisterText(kQuery).ok()) {
      state.SkipWithError("register failed");
      return;
    }
    setup_queue.Subscribe(kConsumer);
    StreamDriver::Options driver_options;
    driver_options.consumer = kConsumer;
    StreamDriver driver(&setup_queue, &victim, driver_options);
    if (!driver.PumpAll().ok()) {
      state.SkipWithError("victim pump failed");
      return;
    }
    persist::CheckpointOptions options;
    options.dir = dir;
    options.keep = 1;
    options.fsync = false;
    persist::CheckpointManager manager(options);
    manager.BindQueue(kConsumer, &setup_queue);
    if (Status s = manager.Checkpoint(&victim); !s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    // Oracle endpoint: finish the victim over the full stream so replay
    // correctness below is checked against it.
    for (int i = kTotal - replay; i < kTotal; ++i) {
      if (!setup_queue.Produce(events[i].graph, events[i].timestamp).ok()) {
        state.SkipWithError("produce failed");
        return;
      }
    }
    if (!driver.PumpAll().ok() || !driver.Finish().ok()) {
      state.SkipWithError("victim completion failed");
      return;
    }
    victim_evals = victim.StatsFor("rq")->evaluations;
  }

  for (auto _ : state) {
    EventQueue queue;
    for (const auto& event : events) {
      (void)queue.Produce(event.graph, event.timestamp);
    }
    ContinuousEngine engine;
    CountingSink sink;
    engine.AddSink(&sink);
    if (!engine.RegisterText(kQuery).ok()) {
      state.SkipWithError("register failed");
      return;
    }
    auto report =
        persist::RecoverAll(dir, &engine, &queue, {kConsumer}, nullptr);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    StreamDriver::Options driver_options;
    driver_options.consumer = kConsumer;
    StreamDriver driver(&queue, &engine, driver_options);
    if (!driver.PumpAll().ok() || !driver.Finish().ok()) {
      state.SkipWithError("replay failed");
      return;
    }
    if (engine.StatsFor("rq")->evaluations != victim_evals) {
      state.SkipWithError("recovered run diverged from victim");
      return;
    }
    benchmark::DoNotOptimize(engine);
  }
  state.counters["replayed_elements"] = replay;
  state.SetLabel("replay " + std::to_string(replay) + "/" +
                 std::to_string(kTotal) + " element(s)");

  std::error_code ec;
  fs::remove_all(dir, ec);
}
BENCHMARK(BM_RecoveryReplay)
    ->Arg(0)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
