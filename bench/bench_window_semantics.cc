// Figure 4 machinery: active-window selection and ET-grid generation under
// both window semantics (the DESIGN.md §7.1 ablation), plus substream
// selection cost as streams grow.
#include <benchmark/benchmark.h>

#include "graph/graph_builder.h"
#include "stream/graph_stream.h"
#include "stream/window.h"

namespace {

using namespace seraph;

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

void BM_ActiveWindow(benchmark::State& state) {
  WindowSemantics semantics = state.range(0) == 0
                                  ? WindowSemantics::kLookback
                                  : WindowSemantics::kPaperFormal;
  WindowConfig config{T(0), Duration::FromMinutes(60),
                      Duration::FromMinutes(5), semantics};
  int64_t t = 0;
  for (auto _ : state) {
    t = (t + 13) % 100'000;
    auto window = config.ActiveWindow(T(t));
    benchmark::DoNotOptimize(window);
  }
  state.SetLabel(state.range(0) == 0 ? "lookback" : "paper_formal");
}
BENCHMARK(BM_ActiveWindow)->Arg(0)->Arg(1);

void BM_EvaluationGrid(benchmark::State& state) {
  int64_t horizon_minutes = state.range(0);
  EvaluationTimes et(T(0), Duration::FromMinutes(5));
  for (auto _ : state) {
    auto instants = et.UpTo(T(horizon_minutes));
    benchmark::DoNotOptimize(instants);
  }
  state.counters["instants"] = static_cast<double>(horizon_minutes / 5 + 1);
}
BENCHMARK(BM_EvaluationGrid)->Arg(60)->Arg(600)->Arg(6000);

void BM_SubstreamSelection(benchmark::State& state) {
  int64_t elements = state.range(0);
  PropertyGraphStream stream;
  for (int64_t i = 0; i < elements; ++i) {
    PropertyGraph g = GraphBuilder()
                          .Node(i % 50, {"N"}, {{"i", Value::Int(i)}})
                          .Build();
    (void)stream.Append(std::move(g), T(i));
  }
  int64_t at = 0;
  for (auto _ : state) {
    at = (at + 37) % elements;
    TimeInterval window{T(at - 60), T(at)};
    auto sub = stream.Substream(window,
                                IntervalBounds::kLeftOpenRightClosed);
    benchmark::DoNotOptimize(sub);
  }
  state.SetComplexityN(elements);
}
BENCHMARK(BM_SubstreamSelection)->Range(1 << 8, 1 << 14)->Complexity();

}  // namespace

BENCHMARK_MAIN();
