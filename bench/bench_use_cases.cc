// Table 1's three continuous queries end to end: micro-mobility fraud
// (Listing 5, bounded variant), network monitoring (Listing 2
// reconstruction, shortestPath + z-score), and POLE surveillance.
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_observability.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"
#include "workloads/network.h"
#include "workloads/pole.h"

namespace {

using namespace seraph;

void RunStream(const std::string& query,
               const std::vector<workloads::Event>& events,
               benchmark::State& state) {
  int64_t rows = 0;
  std::optional<ContinuousEngine> engine;
  for (auto _ : state) {
    engine.emplace();
    CountingSink sink;
    engine->AddSink(&sink);
    if (!engine->RegisterText(query).ok()) {
      state.SkipWithError("register failed");
      return;
    }
    for (const auto& event : events) {
      (void)engine->Ingest(event.graph, event.timestamp);
    }
    if (!engine->Drain().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    rows += sink.rows();
  }
  if (engine.has_value()) benchsupport::AddStageCounters(state, *engine);
  state.counters["alert_rows_per_run"] =
      static_cast<double>(rows) / state.iterations();
  int64_t elements = 0;
  for (const auto& e : events) {
    elements += static_cast<int64_t>(e.graph.num_relationships());
  }
  state.counters["stream_rels"] = static_cast<double>(elements);
}

void BM_MicroMobilityFraud(benchmark::State& state) {
  workloads::BikeSharingConfig config;
  config.num_events = static_cast<int>(state.range(0));
  config.num_users = 60;
  config.num_stations = 40;
  config.fraud_fraction = 0.08;
  auto events = workloads::GenerateBikeSharingStream(config);
  RunStream(R"(
    REGISTER QUERY student_trick STARTING AT '1970-01-01T00:05'
    {
      MATCH (b:Bike)-[r:rentedAt]->(s:Station),
            q = (b)-[:returnedAt|rentedAt*3..5]-(o:Station)
      WITHIN PT1H
      WITH r, s, q, relationships(q) AS rels
      WHERE ALL(e IN rels WHERE
            e.user_id = r.user_id AND e.val_time > r.val_time AND
            (e.duration IS NULL OR e.duration < 20))
      EMIT r.user_id, s.id, r.val_time
      ON ENTERING EVERY PT5M
    })",
            events, state);
  state.SetLabel("bike_sharing/" + std::to_string(state.range(0)) +
                 "events");
}
BENCHMARK(BM_MicroMobilityFraud)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_NetworkMonitoring(benchmark::State& state) {
  workloads::NetworkConfig config;
  config.num_ticks = static_cast<int>(state.range(0));
  config.failure_probability = 0.15;
  auto events = workloads::GenerateNetworkStream(config);
  RunStream(workloads::NetworkMonitoringSeraphQuery(config.start +
                                                    config.tick_period),
            events, state);
  state.SetLabel("network/" + std::to_string(state.range(0)) + "ticks");
}
BENCHMARK(BM_NetworkMonitoring)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_CrimeInvestigation(benchmark::State& state) {
  workloads::PoleConfig config;
  config.num_events = static_cast<int>(state.range(0));
  config.crime_probability = 0.3;
  auto events = workloads::GeneratePoleStream(config);
  RunStream(workloads::CrimeInvestigationSeraphQuery(config.start +
                                                     config.event_period),
            events, state);
  state.SetLabel("pole/" + std::to_string(state.range(0)) + "events");
}
BENCHMARK(BM_CrimeInvestigation)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
