// Regenerates the paper's worked results (Tables 2, 5, 6) and measures the
// running example end to end:
//  * one-time Cypher (Listing 1) over the merged Figure-2 store;
//  * the full continuous replay of Listing 5 over the Figure-1 stream.
// On startup it prints the three tables so the bench log doubles as the
// reproduction record (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <iostream>
#include <optional>

#include "bench_observability.h"
#include "common/trace.h"
#include "cypher/executor.h"
#include "cypher/parser.h"
#include "seraph/continuous_engine.h"
#include "seraph/seraph_parser.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

Timestamp At(int hour, int minute) {
  return Timestamp::FromCivil(2022, 10, 14, hour, minute).value();
}

void PrintReproducedTables() {
  std::cout << "=== Reproduction: Table 2 (Listing 1 at 15:40) ===\n";
  PropertyGraph merged = workloads::BuildRunningExampleMergedGraph();
  auto query = ParseCypherQuery(workloads::RunningExampleCypherQuery());
  ExecutionOptions options;
  options.now = At(15, 40);
  auto table2 = ExecuteQueryOnGraph(*query, merged, options);
  std::cout << table2->Canonicalized().ToAsciiTable(
      {"r.user_id", "s.id", "r.val_time", "hops"});

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  (void)engine.RegisterText(workloads::RunningExampleSeraphQuery());
  for (const auto& event : workloads::BuildRunningExampleStream()) {
    (void)engine.Ingest(event.graph, event.timestamp);
  }
  (void)engine.Drain();
  for (auto [h, m, label] :
       {std::tuple<int, int, const char*>{15, 15, "Table 5 (15:15h)"},
        {15, 40, "Table 6 (15:40h)"}}) {
    auto result = sink.ResultAt("student_trick", At(h, m));
    std::cout << "=== Reproduction: " << label << " ===\n"
              << TimeAnnotatedTable{result->table, result->window}
                     .WithAnnotations()
                     .Canonicalized()
                     .ToAsciiTable({"r.user_id", "s.id", "r.val_time",
                                    "hops", "win_start", "win_end"});
  }
  // Stage breakdown of the replay above, as one JSON line on stderr, so
  // the bench log records where pipeline time went.
  benchsupport::DumpEngineMetricsJson(engine, "running_example_replay");
}

// Table 2: one-time Cypher query over the merged store.
void BM_Table2_OneTimeCypher(benchmark::State& state) {
  PropertyGraph merged = workloads::BuildRunningExampleMergedGraph();
  auto query = ParseCypherQuery(workloads::RunningExampleCypherQuery());
  ExecutionOptions options;
  options.now = At(15, 40);
  for (auto _ : state) {
    auto result = ExecuteQueryOnGraph(*query, merged, options);
    if (!result.ok() || result->size() != 2) {
      state.SkipWithError("unexpected Table 2 result");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Table2_OneTimeCypher);

// Tables 5/6: full continuous replay (register, ingest 5 events, run the
// 12-instant ET grid).
void BM_Tables5and6_ContinuousReplay(benchmark::State& state) {
  bool incremental = state.range(0) != 0;
  std::vector<workloads::Event> events =
      workloads::BuildRunningExampleStream();
  int64_t rows = 0;
  std::optional<ContinuousEngine> engine;
  for (auto _ : state) {
    EngineOptions options;
    options.incremental_snapshots = incremental;
    engine.emplace(options);
    CollectingSink sink;
    engine->AddSink(&sink);
    (void)engine->RegisterText(workloads::RunningExampleSeraphQuery());
    for (const auto& event : events) {
      (void)engine->Ingest(event.graph, event.timestamp);
    }
    (void)engine->Drain();
    for (const auto& entry : sink.ResultsFor("student_trick").entries()) {
      rows += static_cast<int64_t>(entry.table.size());
    }
  }
  state.counters["rows_per_replay"] =
      static_cast<double>(rows) / state.iterations();
  if (engine.has_value()) {
    benchsupport::AddStageCounters(state, *engine, "student_trick");
  }
  state.SetLabel(incremental ? "incremental" : "rebuild");
}
BENCHMARK(BM_Tables5and6_ContinuousReplay)->Arg(0)->Arg(1);

// Observability overhead guard: the full continuous replay with (0) no
// recorder attached, (1) a recorder attached but disabled — the
// always-on-metrics default — and (2) tracing fully enabled. The
// acceptance bar is (1) within noise (<2%) of (0); compare the two rows
// in the timing output.
void BM_TracingOverheadGuard(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  std::vector<workloads::Event> events =
      workloads::BuildRunningExampleStream();
  TraceRecorder recorder;
  if (mode == 2) recorder.Enable();
  for (auto _ : state) {
    EngineOptions options;
    if (mode >= 1) options.tracer = &recorder;
    ContinuousEngine engine(options);
    CollectingSink sink;
    engine.AddSink(&sink);
    (void)engine.RegisterText(workloads::RunningExampleSeraphQuery());
    for (const auto& event : events) {
      (void)engine.Ingest(event.graph, event.timestamp);
    }
    (void)engine.Drain();
    benchmark::DoNotOptimize(engine);
    if (mode == 2) {
      state.counters["trace_events"] =
          static_cast<double>(recorder.size());
      recorder.Clear();
    }
  }
  state.SetLabel(mode == 0   ? "no_recorder"
                 : mode == 1 ? "disabled_recorder"
                             : "enabled_recorder");
}
BENCHMARK(BM_TracingOverheadGuard)->Arg(0)->Arg(1)->Arg(2);

// Parsing the two canonical queries.
void BM_ParseListing1(benchmark::State& state) {
  std::string text = workloads::RunningExampleCypherQuery();
  for (auto _ : state) {
    auto query = ParseCypherQuery(text);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseListing1);

void BM_ParseListing5(benchmark::State& state) {
  std::string text = workloads::RunningExampleSeraphQuery();
  for (auto _ : state) {
    auto query = ParseSeraphQuery(text);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseListing5);

}  // namespace

int main(int argc, char** argv) {
  PrintReproducedTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
