// The paper's motivating comparison (Section 3.3 vs. Section 5): Seraph's
// native continuous engine against the external-polling workaround, which
// merges everything into one ever-growing store and re-runs a plain
// Cypher query (with explicit time predicates) every period.
//
// Expected shape: the baseline's per-poll cost grows with the total store
// (it re-matches history it will then filter out), while the native
// engine's cost tracks the window content; the gap widens with stream
// length. The baseline also re-reports standing results (no ON ENTERING).
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_observability.h"
#include "cypher/parser.h"
#include "seraph/continuous_engine.h"
#include "seraph/polling_baseline.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

constexpr char kSeraphQuery[] = R"(
  REGISTER QUERY rentals STARTING AT '1970-01-01T00:05'
  {
    MATCH (b:Bike)-[r:rentedAt]->(s:Station)
    WITHIN PT30M
    EMIT r.user_id, s.id, r.val_time
    ON ENTERING EVERY PT5M
  })";

// The equivalent one-time query the workaround must run: it windows by
// val_time against datetime() because the store has no window notion.
constexpr char kPollingQuery[] = R"(
  WITH datetime() AS win_end, datetime() - duration('PT30M') AS win_start
  MATCH (b:Bike)-[r:rentedAt]->(s:Station)
  WHERE win_start < r.val_time AND r.val_time <= win_end
  RETURN r.user_id, s.id, r.val_time
)";

std::vector<workloads::Event> MakeEvents(int count) {
  workloads::BikeSharingConfig config;
  config.num_events = count;
  config.num_users = 60;
  config.num_stations = 25;
  return workloads::GenerateBikeSharingStream(config);
}

void BM_NativeContinuous(benchmark::State& state) {
  auto events = MakeEvents(static_cast<int>(state.range(0)));
  int64_t rows = 0;
  std::optional<ContinuousEngine> engine;
  for (auto _ : state) {
    engine.emplace();
    CountingSink sink;
    engine->AddSink(&sink);
    (void)engine->RegisterText(kSeraphQuery);
    for (const auto& event : events) {
      (void)engine->Ingest(event.graph, event.timestamp);
    }
    if (!engine->Drain().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
    rows += sink.rows();
  }
  state.counters["rows_per_run"] =
      static_cast<double>(rows) / state.iterations();
  if (engine.has_value()) {
    benchsupport::AddStageCounters(state, *engine, "rentals");
  }
  state.SetLabel("native/" + std::to_string(state.range(0)) + "events");
}
BENCHMARK(BM_NativeContinuous)->Arg(24)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_PollingWorkaround(benchmark::State& state) {
  auto events = MakeEvents(static_cast<int>(state.range(0)));
  Timestamp horizon = events.empty() ? Timestamp() : events.back().timestamp;
  int64_t rows = 0;
  for (auto _ : state) {
    auto query = ParseCypherQuery(kPollingQuery);
    PollingBaseline baseline(std::move(query).value(),
                             Timestamp::FromMillis(5 * 60'000),
                             Duration::FromMinutes(5));
    size_t next = 0;
    for (int64_t poll_ms = 5 * 60'000; poll_ms <= horizon.millis();
         poll_ms += 5 * 60'000) {
      Timestamp poll = Timestamp::FromMillis(poll_ms);
      while (next < events.size() && events[next].timestamp <= poll) {
        (void)baseline.Ingest(events[next++].graph);
      }
      auto due = baseline.AdvanceTo(poll);
      if (!due.ok()) {
        state.SkipWithError("poll failed");
        return;
      }
      for (const auto& [at, table] : *due) {
        rows += static_cast<int64_t>(table.size());
      }
    }
  }
  state.counters["rows_per_run"] =
      static_cast<double>(rows) / state.iterations();
  state.SetLabel("polling/" + std::to_string(state.range(0)) + "events");
}
BENCHMARK(BM_PollingWorkaround)->Arg(24)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
