// Extension-feature tour: one physical rental feed partitioned into
// per-region logical streams (StreamRouter, §8 (ii)), queried with
// multi-stream windows (`WITHIN ... FROM`, §8 (i)) against a static
// station registry (§8 (iii)), with per-query statistics showing the
// unchanged-window result reuse (§6) at work.
//
// Build & run:  ./build/examples/partitioned_fleet
#include <iostream>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "seraph/stream_router.h"

int main() {
  using namespace seraph;

  auto at = [](int minute) { return Timestamp::FromMillis(minute * 60'000); };

  // Static registry: stations with regions (never streamed, never expires).
  GraphBuilder registry;
  for (int64_t s = 1; s <= 6; ++s) {
    registry.Node(1000 + s, {"Station"},
                  {{"id", Value::Int(s)},
                   {"region", Value::String(s <= 3 ? "north" : "south")}});
  }

  ContinuousEngine engine;
  PrintingSink printer(&std::cout, {"b.id", "s.id", "s.region"});
  engine.AddSink(&printer);
  if (Status s = engine.SetStaticGraph(registry.Build()); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // One continuous query per region, each windowing over its own logical
  // sub-stream; the Station nodes come from the static registry.
  for (const char* region : {"north", "south"}) {
    std::string query = std::string("REGISTER QUERY rentals_") + region +
                        " STARTING AT '1970-01-01T00:05' { "
                        "MATCH (b:Bike)-[r:rentedAt]->(s:Station) "
                        "WITHIN PT30M FROM " +
                        region +
                        " EMIT b.id, s.id, s.region ON ENTERING EVERY PT5M }";
    if (Status s = engine.RegisterText(query); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  // Route the physical feed by the station's region property.
  StreamRouter router;
  router.AddRoute("north", NodePropertyEquals("region", Value::String("north")));
  router.AddRoute("south", NodePropertyEquals("region", Value::String("south")));

  auto rental = [&](int64_t bike, int64_t station, int minute) {
    const char* region = station <= 3 ? "north" : "south";
    return GraphBuilder()
        .Node(bike, {"Bike"}, {{"id", Value::Int(bike)}})
        .Node(1000 + station, {"Station"},
              {{"id", Value::Int(station)},
               {"region", Value::String(region)}})
        .Rel(bike * 100 + minute, bike, 1000 + station, "rentedAt",
             {{"val_time", Value::DateTime(at(minute))}})
        .Build();
  };

  struct Ride {
    int64_t bike, station;
    int minute;
  };
  for (const Ride& ride : {Ride{1, 1, 2}, Ride{2, 5, 4}, Ride{3, 2, 8},
                           Ride{4, 6, 12}, Ride{5, 3, 23}}) {
    auto graph = std::make_shared<const PropertyGraph>(
        rental(ride.bike, ride.station, ride.minute));
    auto delivered = router.Route(&engine, graph, at(ride.minute));
    if (!delivered.ok()) {
      std::cerr << delivered.status() << "\n";
      return 1;
    }
  }
  if (Status s = engine.AdvanceTo(at(60)); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  for (const char* region : {"north", "south"}) {
    QueryStats stats = *engine.StatsFor(std::string("rentals_") + region);
    std::cout << "[rentals_" << region << "] evaluations=" << stats.evaluations
              << " reused=" << stats.reused_results
              << " rows=" << stats.rows_emitted << "\n";
  }
  return 0;
}
