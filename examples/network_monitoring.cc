// The Section-4.1 network-monitoring use case: stream full-topology
// configuration snapshots once per minute, continuously compute shortest
// rack→egress routes in a 10-minute window, and emit every route whose
// length's z-score against the configured baseline (μ = 5, σ = 0.3)
// exceeds 3 — i.e. every detour forced by a failed uplink.
//
// Build & run:  ./build/examples/network_monitoring
#include <iostream>

#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/network.h"

int main() {
  using namespace seraph;

  workloads::NetworkConfig config;
  config.num_racks = 8;
  config.num_ticks = 20;
  config.failure_probability = 0.15;
  auto events = workloads::GenerateNetworkStream(config);

  std::string query = workloads::NetworkMonitoringSeraphQuery(
      config.start + config.tick_period);
  std::cout << "Registered query:\n" << query << "\n";

  ContinuousEngine engine;
  PrintingSink printer(&std::cout, {"r.rack_id", "r.tick", "len"});
  CollectingSink collector;
  engine.AddSink(&printer);
  engine.AddSink(&collector);
  if (Status s = engine.RegisterText(query); !s.ok()) {
    std::cerr << "register failed: " << s << "\n";
    return 1;
  }

  for (const auto& event : events) {
    if (Status s = engine.Ingest(event.graph, event.timestamp); !s.ok()) {
      std::cerr << "ingest failed: " << s << "\n";
      return 1;
    }
  }
  if (Status s = engine.Drain(); !s.ok()) {
    std::cerr << "evaluation failed: " << s << "\n";
    return 1;
  }

  int64_t anomalies = 0;
  for (const auto& entry :
       collector.ResultsFor("network_monitor").entries()) {
    anomalies += static_cast<int64_t>(entry.table.size());
  }
  std::cout << "\nticks: " << events.size()
            << "; evaluations: " << engine.evaluations_run()
            << "; anomalous routes reported (SNAPSHOT re-reports while the "
               "detour stays in the window): "
            << anomalies << "\n";
  return 0;
}
