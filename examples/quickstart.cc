// Quickstart: the smallest end-to-end Seraph program.
//
//  1. Create a continuous engine.
//  2. REGISTER a continuous query (windowed MATCH + EMIT ... EVERY).
//  3. Ingest a stream of timestamped property graphs.
//  4. Advance the engine clock; results arrive at every evaluation
//     time instant through a sink.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"

int main() {
  using namespace seraph;

  // A sink that prints every non-empty result table.
  PrintingSink printer(&std::cout, {"who", "grams"});

  ContinuousEngine engine;
  engine.AddSink(&printer);

  // Count coffee purchases per person over a sliding 10-minute window,
  // reporting every 5 minutes.
  Status registered = engine.RegisterText(R"(
    REGISTER QUERY coffee_watch STARTING AT '2026-07-04T09:00'
    {
      MATCH (p:Person)-[b:BOUGHT]->(c:Coffee)
      WITHIN PT10M
      EMIT p.name AS who, sum(b.grams) AS grams
      SNAPSHOT EVERY PT5M
    }
  )");
  if (!registered.ok()) {
    std::cerr << "register failed: " << registered << "\n";
    return 1;
  }

  // Stream elements: each is a little property graph with an arrival time.
  auto at = [](int minute) {
    return Timestamp::FromCivil(2026, 7, 4, 9, minute).value();
  };
  int64_t next_purchase_id = 0;
  auto purchase = [&next_purchase_id](int64_t person_id, const char* name,
                                      int64_t grams) {
    return GraphBuilder()
        .Node(person_id, {"Person"}, {{"name", Value::String(name)}})
        .Node(100, {"Coffee"})
        .Rel(++next_purchase_id, person_id, 100, "BOUGHT",
             {{"grams", Value::Int(grams)}})
        .Build();
  };

  (void)engine.Ingest(purchase(1, "ada", 250), at(2));
  (void)engine.Ingest(purchase(2, "alan", 500), at(4));
  (void)engine.Ingest(purchase(1, "ada", 250), at(8));
  (void)engine.Ingest(purchase(2, "alan", 250), at(13));

  // Drive the clock; due evaluations (09:00, 09:05, 09:10, 09:15) fire.
  Status advanced = engine.AdvanceTo(at(15));
  if (!advanced.ok()) {
    std::cerr << "advance failed: " << advanced << "\n";
    return 1;
  }

  std::cout << "ran " << engine.evaluations_run() << " evaluations over "
            << engine.stream().size() << " stream elements\n";
  return 0;
}
