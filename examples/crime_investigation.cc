// The Section-4.2 crime-investigation (POLE) use case: stream sightings
// and crime events; the continuous query reports every person seen at a
// location where a crime occurred within the last 30 minutes, emitting
// only new suspects (ON ENTERING) every 5 minutes.
//
// Build & run:  ./build/examples/crime_investigation
#include <iostream>

#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"
#include "workloads/pole.h"

int main() {
  using namespace seraph;

  workloads::PoleConfig config;
  config.num_persons = 40;
  config.num_locations = 8;
  config.num_events = 24;  // Two hours of 5-minute batches.
  config.crime_probability = 0.3;
  auto events = workloads::GeneratePoleStream(config);

  std::string query = workloads::CrimeInvestigationSeraphQuery(
      config.start + config.event_period);
  std::cout << "Registered query:\n" << query << "\n";

  ContinuousEngine engine;
  PrintingSink printer(
      &std::cout, {"p.person_id", "c.crime_id", "l.location_id", "s.time"});
  CollectingSink collector;
  engine.AddSink(&printer);
  engine.AddSink(&collector);
  if (Status s = engine.RegisterText(query); !s.ok()) {
    std::cerr << "register failed: " << s << "\n";
    return 1;
  }

  for (const auto& event : events) {
    if (Status s = engine.Ingest(event.graph, event.timestamp); !s.ok()) {
      std::cerr << "ingest failed: " << s << "\n";
      return 1;
    }
  }
  if (Status s = engine.Drain(); !s.ok()) {
    std::cerr << "evaluation failed: " << s << "\n";
    return 1;
  }

  int64_t alerts = 0;
  for (const auto& entry : collector.ResultsFor("crime_watch").entries()) {
    alerts += static_cast<int64_t>(entry.table.size());
  }
  std::cout << "\nevents: " << events.size()
            << "; evaluations: " << engine.evaluations_run()
            << "; suspect alerts (each reported once, ON ENTERING): "
            << alerts << "\n";
  return 0;
}
