// The paper's running example (Section 2 / 5.4), end to end:
//
//  * replays the Figure-1 event stream;
//  * shows the merged Figure-2 snapshot graph;
//  * runs the Listing-1 Cypher workaround at 15:40 (Table 2);
//  * registers the Listing-5 Seraph query and replays the stream,
//    reproducing Tables 5 and 6 at 15:15h and 15:40h;
//  * contrasts with the polling baseline's duplicate reports;
//  * finally runs the fraud detector over a scaled synthetic day.
//
// Build & run:  ./build/examples/bike_sharing
#include <iostream>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "seraph/continuous_engine.h"
#include "seraph/polling_baseline.h"
#include "seraph/sinks.h"
#include "workloads/bike_sharing.h"

namespace {

using namespace seraph;

int RunExactReplay() {
  std::cout << "== Figure 1: the event stream ==\n";
  std::vector<workloads::Event> events =
      workloads::BuildRunningExampleStream();
  for (const auto& event : events) {
    std::cout << "event @ " << event.timestamp.ToClockString() << ": "
              << event.graph.num_nodes() << " nodes, "
              << event.graph.num_relationships() << " relationships\n";
  }

  std::cout << "\n== Figure 2: merged snapshot graph ==\n";
  PropertyGraph merged = workloads::BuildRunningExampleMergedGraph();
  std::cout << merged.DebugString();

  std::cout << "\n== Table 2: one-time Cypher (Listing 1) at 15:40 ==\n";
  auto cypher = ParseCypherQuery(workloads::RunningExampleCypherQuery());
  if (!cypher.ok()) {
    std::cerr << cypher.status() << "\n";
    return 1;
  }
  ExecutionOptions options;
  options.now = Timestamp::Parse("2022-10-14T15:40").value();
  auto table2 = ExecuteQueryOnGraph(*cypher, merged, options);
  if (!table2.ok()) {
    std::cerr << table2.status() << "\n";
    return 1;
  }
  std::cout << table2->Canonicalized().ToAsciiTable(
      {"r.user_id", "s.id", "r.val_time", "hops"});

  std::cout << "\n== Tables 5/6: Seraph continuous query (Listing 5) ==\n";
  std::cout << workloads::RunningExampleSeraphQuery() << "\n";
  PrintingSink printer(&std::cout,
                       {"r.user_id", "s.id", "r.val_time", "hops"});
  ContinuousEngine engine;
  engine.AddSink(&printer);
  Status registered =
      engine.RegisterText(workloads::RunningExampleSeraphQuery());
  if (!registered.ok()) {
    std::cerr << registered << "\n";
    return 1;
  }
  for (const auto& event : events) {
    Status s = engine.Ingest(event.graph, event.timestamp);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  if (Status s = engine.Drain(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  std::cout << "\n== Contrast: the Section-3.3 polling workaround ==\n";
  auto baseline_query =
      ParseCypherQuery(workloads::RunningExampleCypherQuery());
  PollingBaseline baseline(std::move(baseline_query).value(),
                           Timestamp::Parse("2022-10-14T14:45").value(),
                           Duration::FromMinutes(5));
  size_t next = 0;
  int64_t total_rows = 0;
  for (int i = 0; i <= 11; ++i) {
    Timestamp poll = Timestamp::Parse("2022-10-14T14:45").value() +
                     Duration::FromMinutes(5 * i);
    while (next < events.size() && events[next].timestamp <= poll) {
      (void)baseline.Ingest(events[next++].graph);
    }
    auto due = baseline.AdvanceTo(poll);
    if (!due.ok()) {
      std::cerr << due.status() << "\n";
      return 1;
    }
    for (const auto& [at, table] : *due) total_rows += table.size();
  }
  std::cout << "polling reported " << total_rows
            << " rows over 12 polls (duplicates re-reported every period); "
               "Seraph's ON ENTERING reported 2\n";
  return 0;
}

int RunScaledDay() {
  std::cout << "\n== Scaled synthetic day (fraud detection) ==\n";
  workloads::BikeSharingConfig config;
  config.num_events = 48;  // 4 hours of 5-minute batches.
  config.num_stations = 40;
  config.num_users = 60;
  config.fraud_fraction = 0.08;
  auto events = workloads::GenerateBikeSharingStream(config);

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  // The fraud detector at scale. Two deviations from the verbatim
  // Listing 5 keep matching tractable on a busy system: the chain pattern
  // is bounded (*3..5 — one fraudulent extension plus slack, instead of
  // unbounded *3..), and the window stays at 1 hour. The unbounded pattern
  // over a dense hour-wide snapshot enumerates exponentially many paths.
  if (Status s = engine.RegisterText(R"(
        REGISTER QUERY student_trick STARTING AT '1970-01-01T00:05'
        {
          MATCH (b:Bike)-[r:rentedAt]->(s:Station),
                q = (b)-[:returnedAt|rentedAt*3..5]-(o:Station)
          WITHIN PT1H
          WITH r, s, q, relationships(q) AS rels
          WHERE ALL(e IN rels WHERE
                e.user_id = r.user_id AND e.val_time > r.val_time AND
                (e.duration IS NULL OR e.duration < 20))
          EMIT r.user_id, s.id, r.val_time
          ON ENTERING EVERY PT5M
        })");
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  for (const auto& event : events) {
    if (Status s = engine.Ingest(event.graph, event.timestamp); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  if (Status s = engine.Drain(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  int64_t alerts = 0;
  for (const auto& entry : sink.ResultsFor("student_trick").entries()) {
    alerts += static_cast<int64_t>(entry.table.size());
  }
  std::cout << "stream: " << events.size() << " events; evaluations: "
            << engine.evaluations_run() << "; fraud alerts emitted: "
            << alerts << "\n";
  return 0;
}

}  // namespace

int main() {
  int rc = RunExactReplay();
  if (rc != 0) return rc;
  return RunScaledDay();
}
