// seraph_serve — the sharded serving front-end: N per-shard engines
// behind one HTTP endpoint (docs/INTERNALS.md, "Sharded serving tier").
//
//   seraph_serve [--port=<p>] [--shards=<n>] [--queries=<file>]...
//                [--checkpoint-dir=<dir>] [--checkpoint-every=<n>]
//                [--queue-capacity=<n>]
//                [--overflow-policy=<block|reject|shed_oldest>]
//                [--io-timeout-ms=<n>] [--long-poll-ms=<n>]
//                [--max-runtime-sec=<n>] [--threads=<n>]
//                [--match-threads=<n>]
//
// HTTP API (loopback only; one request per connection):
//   POST /queries                REGISTER QUERY text in the body →
//                                {"name": ..., "shards": [...]} with the
//                                placement the query's streams imply.
//   POST /ingest                 JSON lines, one event per line:
//                                {"t_ms": <int>, "graph": "<graph text>"}
//                                (graph text as in io/graph_text.h).
//                                Events are routed through the fleet's
//                                partitioners, pumped, and merged;
//                                responds {"ingested": n, "deliveries": d,
//                                "watermark_ms": w}.
//   GET  /queries/<q>/results?after=<seq>
//                                Long-poll: merged emissions of <q> with
//                                seq > after; parks until data arrives or
//                                --long-poll-ms elapses (→ 204).
//   POST /queries/<q>/revive     Re-enable a disabled query.
//   GET  /queries                Per-query status JSON (with shard sets).
//   GET  /metrics                Coordinator registry: fleet watermark,
//                                per-shard health gauges, router and
//                                merge counters (Prometheus text).
//   GET  /shards/<i>/metrics     Shard i's full engine registry.
//   GET  /healthz                Liveness.
//
// With --checkpoint-dir the fleet checkpoints each shard at its own batch
// barrier (cadence --checkpoint-every) and auto-restores on startup;
// queries preloaded with --queries (one REGISTER QUERY statement per
// file) are re-registered before the restore, which is what makes their
// checkpointed state recoverable. All fleet access runs on the server
// thread, so requests are serialized; the poll loop keeps slow clients
// from wedging the line (tests/metrics_server_test.cc).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/graph_text.h"
#include "io/json.h"
#include "server/metrics_server.h"
#include "shard/partitioner.h"
#include "shard/sharded_engine.h"
#include "stream/overflow_policy.h"

namespace {

using namespace seraph;

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int Fail(const std::string& message) {
  std::cerr << "seraph_serve: " << message << "\n";
  return 1;
}

bool FlagValue(const std::string& arg, const std::string& prefix,
               std::string* value) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int64_t>(parsed);
  return true;
}

// One merged emission retained for long-polling clients.
struct BufferedResult {
  int64_t seq = 0;
  int64_t t_ms = 0;
  std::string json;  // io::ToJson(table): {"win_start","win_end","rows"}.
};

// The /results source: a sink buffering merged fleet output per query.
// Runs on the server thread (the fleet is pumped from request handlers),
// so no locking is needed beyond the tool's single fleet mutex.
class ResultBuffer final : public EmitSink {
 public:
  explicit ResultBuffer(size_t per_query_cap) : cap_(per_query_cap) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override {
    std::deque<BufferedResult>& results = per_query_[query_name];
    BufferedResult entry;
    entry.seq = ++last_seq_;
    entry.t_ms = evaluation_time.millis();
    entry.json = io::ToJson(table);
    results.push_back(std::move(entry));
    while (results.size() > cap_) results.pop_front();
    return Status::OK();
  }

  // Results of `query` with seq > after (empty when caught up); false
  // when the query has never emitted and is unknown to the buffer.
  const std::deque<BufferedResult>* ResultsFor(
      const std::string& query) const {
    auto it = per_query_.find(query);
    return it == per_query_.end() ? nullptr : &it->second;
  }

  int64_t last_seq() const { return last_seq_; }

 private:
  size_t cap_;
  int64_t last_seq_ = 0;
  std::map<std::string, std::deque<BufferedResult>> per_query_;
};

// "after=3&x=y" → 3 (0 when absent or malformed).
int64_t AfterFromQuery(const std::string& query) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.rfind("after=", 0) != 0) continue;
    int64_t after = 0;
    if (ParseInt64(pair.substr(6), &after) && after >= 0) return after;
  }
  return 0;
}

HttpReply JsonReply(int code, const char* reason, std::string body) {
  HttpReply reply;
  reply.code = code;
  reply.reason = reason;
  reply.content_type = "application/json";
  reply.body = std::move(body);
  return reply;
}

HttpReply ErrorReply(int code, const char* reason,
                     const std::string& message) {
  return JsonReply(code, reason,
                   "{\"error\":\"" + EscapeJsonString(message) + "\"}\n");
}

std::string PlacementJson(const shard::QueryPlacement& placement) {
  std::string out =
      "{\"name\":\"" + EscapeJsonString(placement.name) + "\",\"shards\":[";
  for (size_t i = 0; i < placement.shards.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(placement.shards[i]);
  }
  out += "]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  int port = 0;
  int shards = 1;
  std::vector<std::string> query_files;
  std::string checkpoint_dir;
  int64_t checkpoint_every = 1;
  size_t queue_capacity = 0;
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
  int64_t io_timeout_ms = 5000;
  int64_t long_poll_ms = 10000;
  int64_t max_runtime_sec = 0;  // 0 = run until SIGINT/SIGTERM.
  int eval_threads = EvalThreadsFromEnv(1);
  int match_threads = MatchThreadsFromEnv(1);

  for (const std::string& arg : args) {
    std::string value;
    int64_t parsed = 0;
    if (FlagValue(arg, "--port=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed < 0 || parsed > 65535) {
        return Fail("--port expects a port number (0 = ephemeral)");
      }
      port = static_cast<int>(parsed);
    } else if (FlagValue(arg, "--shards=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed < 1) {
        return Fail("--shards expects a positive shard count");
      }
      shards = static_cast<int>(parsed);
    } else if (FlagValue(arg, "--queries=", &value)) {
      if (value.empty()) return Fail("--queries expects a file path");
      query_files.push_back(value);
    } else if (FlagValue(arg, "--checkpoint-dir=", &checkpoint_dir)) {
      if (checkpoint_dir.empty()) {
        return Fail("--checkpoint-dir expects a directory path");
      }
    } else if (FlagValue(arg, "--checkpoint-every=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed <= 0) {
        return Fail("--checkpoint-every expects a positive batch count");
      }
      checkpoint_every = parsed;
    } else if (FlagValue(arg, "--queue-capacity=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed <= 0) {
        return Fail("--queue-capacity expects a positive element count");
      }
      queue_capacity = static_cast<size_t>(parsed);
    } else if (FlagValue(arg, "--overflow-policy=", &value)) {
      if (!ParseOverflowPolicy(value, &overflow_policy)) {
        return Fail("--overflow-policy expects block, reject, or "
                    "shed_oldest");
      }
    } else if (FlagValue(arg, "--io-timeout-ms=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed <= 0) {
        return Fail("--io-timeout-ms expects a positive millisecond count");
      }
      io_timeout_ms = parsed;
    } else if (FlagValue(arg, "--long-poll-ms=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed <= 0) {
        return Fail("--long-poll-ms expects a positive millisecond count");
      }
      long_poll_ms = parsed;
    } else if (FlagValue(arg, "--max-runtime-sec=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed < 0) {
        return Fail("--max-runtime-sec expects a non-negative second "
                    "count (0 = until signalled)");
      }
      max_runtime_sec = parsed;
    } else if (FlagValue(arg, "--threads=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed < 0) {
        return Fail("--threads expects a non-negative thread count");
      }
      eval_threads = static_cast<int>(parsed);
    } else if (FlagValue(arg, "--match-threads=", &value)) {
      if (!ParseInt64(value, &parsed) || parsed < 0) {
        return Fail("--match-threads expects a non-negative thread count");
      }
      match_threads = static_cast<int>(parsed);
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: seraph_serve [--port=<p>] [--shards=<n>] "
             "[--queries=<file>]...\n"
             "                    [--checkpoint-dir=<dir>] "
             "[--checkpoint-every=<n>]\n"
             "                    [--queue-capacity=<n>] "
             "[--overflow-policy=<policy>]\n"
             "                    [--io-timeout-ms=<n>] "
             "[--long-poll-ms=<n>]\n"
             "                    [--max-runtime-sec=<n>] [--threads=<n>] "
             "[--match-threads=<n>]\n"
             "endpoints: POST /queries, POST /ingest, GET "
             "/queries/<q>/results?after=<seq>,\n"
             "           POST /queries/<q>/revive, GET /queries, GET "
             "/metrics,\n"
             "           GET /shards/<i>/metrics, GET /healthz\n";
      return 0;
    } else {
      return Fail("unknown argument '" + arg + "' (see --help)");
    }
  }

  shard::ShardedEngineOptions fleet_options;
  fleet_options.shards = shards;
  fleet_options.engine.eval_threads = eval_threads;
  fleet_options.engine.match_threads = match_threads;
  fleet_options.queue.capacity = queue_capacity;
  fleet_options.queue.overflow_policy = overflow_policy;
  fleet_options.checkpoint_dir = checkpoint_dir;
  fleet_options.checkpoint_every = checkpoint_every;
  shard::ShardedEngine fleet(fleet_options);

  ResultBuffer results(/*per_query_cap=*/1024);
  fleet.AddSink(&results);

  // Preloaded queries must be registered before Restore() so their
  // checkpointed state has definitions to land on.
  for (const std::string& path : query_files) {
    std::ifstream in(path);
    if (!in) return Fail("cannot open query file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto placement = fleet.RegisterText(buffer.str());
    if (!placement.ok()) {
      return Fail("register '" + path + "': " +
                  placement.status().ToString());
    }
    std::cerr << "[seraph_serve] registered '" << placement->name
              << "' on " << placement->shards.size() << " shard(s)\n";
  }
  if (!checkpoint_dir.empty()) {
    if (Status s = fleet.Restore(); !s.ok()) return Fail(s.ToString());
    std::cerr << "[seraph_serve] restored fleet state from '"
              << checkpoint_dir << "' (watermark "
              << fleet.FleetWatermarkMillis() << " ms)\n";
  }

  // One mutex serializes every handler's fleet access. Handlers run on
  // the server thread; the main thread takes the lock only for the final
  // drain at shutdown.
  std::mutex fleet_mutex;

  MetricsServer::Options server_options;
  server_options.port = port;
  server_options.registry = &fleet.metrics();
  server_options.io_timeout_millis = static_cast<int>(io_timeout_ms);
  server_options.long_poll_timeout_millis = static_cast<int>(long_poll_ms);
  server_options.queries_json = [&]() -> std::string {
    std::lock_guard<std::mutex> lock(fleet_mutex);
    return fleet.QueriesStatusJson();
  };
  MetricsServer server(server_options);

  // POST /queries (register) and POST /queries/<q>/revive share the
  // method+prefix, so one handler dispatches on the path shape.
  server.Handle("POST", "/queries", [&](const HttpRequest& request)
                                        -> std::optional<HttpReply> {
    std::lock_guard<std::mutex> lock(fleet_mutex);
    if (request.path == "/queries") {
      auto placement = fleet.RegisterText(request.body);
      if (!placement.ok()) {
        const int code =
            placement.status().code() == StatusCode::kAlreadyExists ? 409
                                                                    : 400;
        return ErrorReply(code, code == 409 ? "Conflict" : "Bad Request",
                          placement.status().ToString());
      }
      return JsonReply(200, "OK", PlacementJson(*placement));
    }
    const std::string revive_suffix = "/revive";
    if (request.path.size() > 9 + revive_suffix.size() &&
        request.path.compare(request.path.size() - revive_suffix.size(),
                             revive_suffix.size(), revive_suffix) == 0) {
      const std::string name = request.path.substr(
          9, request.path.size() - 9 - revive_suffix.size());
      if (Status s = fleet.ReviveQuery(name); !s.ok()) {
        return ErrorReply(404, "Not Found", s.ToString());
      }
      return JsonReply(200, "OK",
                       "{\"revived\":\"" + EscapeJsonString(name) + "\"}\n");
    }
    return ErrorReply(404, "Not Found",
                      "unknown POST path '" + request.path + "'");
  });

  server.Handle("POST", "/ingest", [&](const HttpRequest& request)
                                       -> std::optional<HttpReply> {
    std::lock_guard<std::mutex> lock(fleet_mutex);
    int64_t ingested = 0;
    int64_t deliveries = 0;
    std::istringstream lines(request.body);
    std::string line;
    int line_no = 0;
    while (std::getline(lines, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      auto doc = io::ParseJson(line);
      if (!doc.ok() || !doc->is_map()) {
        return ErrorReply(400, "Bad Request",
                          "line " + std::to_string(line_no) +
                              ": expected {\"t_ms\": <int>, \"graph\": "
                              "<graph text>}");
      }
      const Value::Map& fields = doc->AsMap();
      auto t_it = fields.find("t_ms");
      auto g_it = fields.find("graph");
      if (t_it == fields.end() || !t_it->second.is_int() ||
          g_it == fields.end() || !g_it->second.is_string()) {
        return ErrorReply(400, "Bad Request",
                          "line " + std::to_string(line_no) +
                              ": expected {\"t_ms\": <int>, \"graph\": "
                              "<graph text>}");
      }
      auto graph = io::DecodeGraph(g_it->second.AsString());
      if (!graph.ok()) {
        return ErrorReply(400, "Bad Request",
                          "line " + std::to_string(line_no) + ": " +
                              graph.status().ToString());
      }
      auto delivered = fleet.Ingest(
          std::move(graph).value(),
          Timestamp::FromMillis(t_it->second.AsInt()));
      if (!delivered.ok()) {
        const int code =
            delivered.status().code() == StatusCode::kOutOfRange ? 409 : 500;
        return ErrorReply(code,
                          code == 409 ? "Conflict" : "Internal Server Error",
                          "line " + std::to_string(line_no) + ": " +
                              delivered.status().ToString());
      }
      ++ingested;
      deliveries += *delivered;
    }
    if (Status s = fleet.PumpAll(); !s.ok()) {
      return ErrorReply(500, "Internal Server Error", s.ToString());
    }
    return JsonReply(
        200, "OK",
        "{\"ingested\":" + std::to_string(ingested) +
            ",\"deliveries\":" + std::to_string(deliveries) +
            ",\"watermark_ms\":" +
            std::to_string(fleet.FleetWatermarkMillis()) + "}\n");
  });

  // GET /queries/<q>/results?after=<seq> — long-poll until new merged
  // emissions arrive (nullopt parks the connection; the serve loop keeps
  // re-invoking until data shows up or --long-poll-ms expires → 204).
  server.Handle("GET", "/queries/", [&](const HttpRequest& request)
                                        -> std::optional<HttpReply> {
    const std::string results_suffix = "/results";
    if (request.path.size() <= 9 + results_suffix.size() ||
        request.path.compare(request.path.size() - results_suffix.size(),
                             results_suffix.size(), results_suffix) != 0) {
      return ErrorReply(404, "Not Found",
                        "unknown GET path '" + request.path + "'");
    }
    const std::string name = request.path.substr(
        9, request.path.size() - 9 - results_suffix.size());
    const int64_t after = AfterFromQuery(request.query);
    std::lock_guard<std::mutex> lock(fleet_mutex);
    if (!fleet.PlacementFor(name).ok()) {
      return ErrorReply(404, "Not Found", "unknown query '" + name + "'");
    }
    const std::deque<BufferedResult>* buffered = results.ResultsFor(name);
    bool any = false;
    std::string body = "{\"query\":\"" + EscapeJsonString(name) +
                       "\",\"results\":[";
    int64_t last_seq = after;
    if (buffered != nullptr) {
      for (const BufferedResult& entry : *buffered) {
        if (entry.seq <= after) continue;
        if (any) body += ",";
        any = true;
        body += "{\"seq\":" + std::to_string(entry.seq) +
                ",\"t_ms\":" + std::to_string(entry.t_ms) +
                ",\"result\":" + entry.json + "}";
        last_seq = entry.seq;
      }
    }
    if (!any) return std::nullopt;  // Park: nothing past `after` yet.
    body += "],\"last_seq\":" + std::to_string(last_seq) + "}\n";
    return JsonReply(200, "OK", body);
  });

  // GET /shards/<i>/metrics — one shard's full engine registry (the
  // coordinator /metrics carries the fleet-level aggregation).
  server.Handle("GET", "/shards/", [&](const HttpRequest& request)
                                       -> std::optional<HttpReply> {
    const std::string metrics_suffix = "/metrics";
    if (request.path.size() <= 8 + metrics_suffix.size() ||
        request.path.compare(request.path.size() - metrics_suffix.size(),
                             metrics_suffix.size(), metrics_suffix) != 0) {
      return ErrorReply(404, "Not Found",
                        "unknown GET path '" + request.path + "'");
    }
    const std::string index_text = request.path.substr(
        8, request.path.size() - 8 - metrics_suffix.size());
    int64_t index = -1;
    if (!ParseInt64(index_text, &index) || index < 0 ||
        index >= fleet.num_shards()) {
      return ErrorReply(404, "Not Found",
                        "shard index out of range (fleet has " +
                            std::to_string(fleet.num_shards()) +
                            " shard(s))");
    }
    std::lock_guard<std::mutex> lock(fleet_mutex);
    HttpReply reply;
    reply.content_type = "text/plain; version=0.0.4; charset=utf-8";
    reply.body = fleet.shard_engine(static_cast<int>(index))
                     ->metrics()
                     .ToPrometheusText();
    return reply;
  });

  if (Status s = server.Start(); !s.ok()) return Fail(s.ToString());
  std::cerr << "[seraph_serve] serving " << shards
            << " shard(s) on http://127.0.0.1:" << server.port()
            << " (POST /queries, POST /ingest, GET "
               "/queries/<q>/results, GET /metrics)\n";

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (max_runtime_sec > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(max_runtime_sec)) {
      break;
    }
  }

  server.Stop();
  {
    std::lock_guard<std::mutex> lock(fleet_mutex);
    if (Status s = fleet.Finish(); !s.ok()) {
      std::cerr << "[seraph_serve] final drain: " << s.ToString() << "\n";
    }
    if (!checkpoint_dir.empty()) {
      if (Status s = fleet.Checkpoint(); !s.ok()) {
        std::cerr << "[seraph_serve] final checkpoint: " << s.ToString()
                  << "\n";
      }
    }
  }
  std::cerr << "[seraph_serve] served " << server.requests_served()
            << " request(s), released " << fleet.released_total()
            << " merged emission(s)\n";
  return 0;
}
