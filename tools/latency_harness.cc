// latency_harness — steady-state emit-latency measurement for the
// end-to-end pipeline (docs/INTERNALS.md, "Latency accounting & lag").
//
//   latency_harness [--rate=<events/sec>] [--duration-sec=<n>]
//                   [--queries=<n>] [--out=<path>] [--shards=<n>]
//                   [--metrics-port=<p>] [--stats-interval=<sec>]
//                   [--queue-capacity=<n>] [--overflow-policy=<policy>]
//                   [--shed-lag-ms=<n>]
//
// The harness produces synthetic person-sighting events into an
// EventQueue at a sustained target rate (paced against the wall clock,
// catching up after scheduling hiccups rather than drifting), pumps them
// through a StreamDriver into a ContinuousEngine running <n> identical
// sliding-window queries, and reports the resulting ingest→emit latency
// distribution: p50 / p99 / p999 / max microseconds, the achieved rate,
// and the maximum event-time lag. Results go to stdout and, as JSON, to
// --out (default BENCH_latency.json) for the bench-baseline CI diff.
//
// With --metrics-port the live observability endpoint is served during
// the run (GET /metrics, /healthz, /queries), which is how CI's
// latency-smoke job scrapes `seraph_emit_latency_micros` buckets
// mid-flight. --stats-interval prints the one-line status
// (in/out/p99/lag/dlq) every interval, like seraph_run.
//
// Overload protection (docs/INTERNALS.md, "Overload & backpressure"):
// --queue-capacity bounds the EventQueue (0 = unbounded); a refused
// produce pumps the driver and retries — the producer-side backpressure
// loop CI's overload-soak job exercises at 2x a sustainable rate.
// --overflow-policy picks block / reject / shed_oldest (shed elements
// are dead-lettered and counted, never silently lost); --shed-lag-ms
// arms the driver's degraded mode. The JSON report adds the overload
// ledger (shed/rejected/trimmed/retries/degraded) and the process RSS so
// CI can assert memory stays bounded under sustained overload.
// SERAPH_QUEUE_CAPACITY / SERAPH_OVERFLOW_POLICY / SERAPH_SHED_LAG_MS
// supply defaults for the corresponding flags.
//
// With --shards=N (N > 1) the harness drives a ShardedEngine instead
// (docs/INTERNALS.md, "Sharded serving tier"): events are broadcast
// through the fleet's default route, each query lands on its home shard,
// and the reported latency distribution is the per-shard
// `seraph_engine_emit_latency_micros` histograms merged fleet-wide. The
// JSON report keeps the same field names (the per-queue overload ledger
// is internal to the fleet's lanes and reports as zero).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "seraph/stream_driver.h"
#include "server/metrics_server.h"
#include "shard/sharded_engine.h"
#include "stream/event_queue.h"
#include "stream/overflow_policy.h"

namespace {

using namespace seraph;

int Fail(const std::string& message) {
  std::cerr << "latency_harness: " << message << "\n";
  return 1;
}

// Non-negative integer environment default for an overload knob;
// malformed or negative values fall back.
int64_t Int64FromEnvVar(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) return fallback;
  return static_cast<int64_t>(parsed);
}

// Resident set size in MiB from /proc/self/status (VmRSS), or -1 when
// the file is unavailable. Good enough for CI's bounded-memory assert.
double RssMb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atof(line.c_str() + 6) / 1024.0;  // kB -> MiB.
    }
  }
  return -1.0;
}

bool FlagValue(const std::string& arg, const std::string& prefix,
               std::string* value) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

// One synthetic event: a person sighted in a room — enough structure for
// a MATCH with a relationship hop, tiny enough that event construction
// does not dominate the measured pipeline.
PropertyGraph MakeEvent(int64_t i) {
  GraphBuilder b;
  const int64_t person = 1 + (i % 64);
  const int64_t room = 1000 + (i % 8);
  b.Node(person, {"Person"}, {{"id", Value::Int(person)}});
  b.Node(room, {"Room"}, {{"id", Value::Int(room)}});
  b.Rel(2000 + i, person, room, "IN");
  return b.Build();
}

// A sink that only counts: the harness measures pipeline latency, not
// output formatting.
class CountingSink final : public EmitSink {
 public:
  Status OnResult(const std::string&, Timestamp,
                  const TimeAnnotatedTable& table) override {
    ++emits_;
    rows_ += static_cast<int64_t>(table.table.size());
    return Status::OK();
  }
  int64_t emits() const { return emits_; }
  int64_t rows() const { return rows_; }

 private:
  int64_t emits_ = 0;
  int64_t rows_ = 0;
};

// Registered query text shared by both paths: a sliding 10 s window,
// evaluated every second of event time.
std::string QueryText(int index) {
  return "REGISTER QUERY lat_q" + std::to_string(index) +
         " STARTING AT '1970-01-01T00:00:01' {\n"
         "  MATCH (p:Person)-[:IN]->(r:Room) WITHIN PT10S\n"
         "  EMIT p.id AS person, r.id AS room EVERY PT1S\n"
         "}\n";
}

// The --shards path: same pacing and reporting, driven through a
// ShardedEngine so the latency-smoke CI leg exercises partitioned
// ingest, independent shard barriers, and the ordered merge.
int RunSharded(int shards, double rate, int duration_sec, int queries,
               const std::string& out_path, size_t queue_capacity,
               OverflowPolicy overflow_policy, int metrics_port,
               int stats_interval) {
  shard::ShardedEngineOptions fleet_options;
  fleet_options.shards = shards;
  fleet_options.queue.capacity = queue_capacity;
  fleet_options.queue.overflow_policy = overflow_policy;
  shard::ShardedEngine fleet(fleet_options);
  CountingSink sink;
  fleet.AddSink(&sink);
  for (int q = 0; q < queries; ++q) {
    auto placement = fleet.RegisterText(QueryText(q));
    if (!placement.ok()) return Fail(placement.status().ToString());
  }

  MetricsServer::Options server_options;
  server_options.port = metrics_port < 0 ? 0 : metrics_port;
  server_options.registry = &fleet.metrics();
  server_options.queries_json = [&fleet]() -> std::string {
    // The serve loop races the pump loop here, but this harness only
    // reads the endpoint between runs; seraph_serve is the synchronized
    // serving path.
    return fleet.QueriesStatusJson();
  };
  MetricsServer server(server_options);
  if (metrics_port >= 0) {
    if (Status s = server.Start(); !s.ok()) return Fail(s.ToString());
    std::cerr << "[latency_harness] metrics on http://127.0.0.1:"
              << server.port() << "/metrics (" << shards << " shards)\n";
  }

  // Fleet-wide emit latency: per-shard engine histograms merged.
  auto merged_latency = [&fleet]() {
    HistogramSnapshot merged;
    for (int i = 0; i < fleet.num_shards(); ++i) {
      const Histogram* h = fleet.shard_engine(i)->metrics().FindHistogram(
          "seraph_engine_emit_latency_micros");
      if (h != nullptr) MergeHistogramSnapshot(&merged, h->Snapshot());
    }
    return merged;
  };
  auto max_lag_ms = [&fleet]() {
    int64_t max_lag = 0;
    for (int i = 0; i < fleet.num_shards(); ++i) {
      const Gauge* g = fleet.shard_engine(i)->metrics().FindGauge(
          "seraph_stream_lag_max_millis", {{"stream", "<default>"}});
      if (g != nullptr) max_lag = std::max(max_lag, g->value());
    }
    return max_lag;
  };

  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  const auto deadline = start + std::chrono::seconds(duration_sec);
  const double event_millis_per_event = 1000.0 / rate;
  int64_t produced = 0;
  int64_t next_stats_at = stats_interval;
  while (clock::now() < deadline) {
    const double elapsed_sec =
        std::chrono::duration<double>(clock::now() - start).count();
    const int64_t due = static_cast<int64_t>(elapsed_sec * rate);
    bool idle = produced >= due;
    while (produced < due) {
      const int64_t t_ms =
          1000 + static_cast<int64_t>(produced * event_millis_per_event);
      auto delivered = fleet.Ingest(MakeEvent(produced),
                                    Timestamp::FromMillis(t_ms));
      if (!delivered.ok()) return Fail(delivered.status().ToString());
      ++produced;
    }
    if (Status s = fleet.PumpAll(); !s.ok()) return Fail(s.ToString());
    if (stats_interval > 0 && elapsed_sec >= next_stats_at) {
      next_stats_at += stats_interval;
      HistogramSnapshot lat = merged_latency();
      std::cerr << "[latency_harness] in=" << produced
                << " emits=" << sink.emits() << " p99_emit_us=" << lat.p99
                << " max_lag_ms=" << max_lag_ms()
                << " watermark_ms=" << fleet.FleetWatermarkMillis() << "\n";
    }
    if (idle) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  if (Status s = fleet.Finish(); !s.ok()) return Fail(s.ToString());

  const double wall_sec =
      std::chrono::duration<double>(clock::now() - start).count();
  HistogramSnapshot latency = merged_latency();
  if (latency.count == 0) {
    return Fail("no emit-latency samples were recorded — the run produced "
                "no delivered evaluations (rate/duration too small?)");
  }
  const double achieved = static_cast<double>(produced) / wall_sec;
  const double rss_mb = RssMb();

  char line[640];
  std::snprintf(line, sizeof(line),
                "events=%lld (%.0f/s target %.0f/s)  shards=%d  queries=%d"
                "  emits=%lld  rows=%lld\n"
                "emit latency (us): p50=%lld p99=%lld p999=%lld max=%lld"
                "  samples=%lld\n"
                "max lag: %lld ms  fleet watermark: %lld ms"
                "  merged emissions: %lld  rss=%.1f MiB\n",
                static_cast<long long>(produced), achieved, rate, shards,
                queries, static_cast<long long>(sink.emits()),
                static_cast<long long>(sink.rows()),
                static_cast<long long>(latency.p50),
                static_cast<long long>(latency.p99),
                static_cast<long long>(latency.p999),
                static_cast<long long>(latency.max),
                static_cast<long long>(latency.count),
                static_cast<long long>(max_lag_ms()),
                static_cast<long long>(fleet.FleetWatermarkMillis()),
                static_cast<long long>(fleet.released_total()), rss_mb);
  std::cout << line;

  std::ofstream out(out_path);
  if (!out) return Fail("cannot open '" + out_path + "'");
  out << "{\n"
      << "  \"rate_target\": " << rate << ",\n"
      << "  \"rate_achieved\": " << achieved << ",\n"
      << "  \"duration_sec\": " << duration_sec << ",\n"
      << "  \"shards\": " << shards << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"events\": " << produced << ",\n"
      << "  \"emits\": " << sink.emits() << ",\n"
      << "  \"rows\": " << sink.rows() << ",\n"
      << "  \"latency_samples\": " << latency.count << ",\n"
      << "  \"p50_us\": " << latency.p50 << ",\n"
      << "  \"p99_us\": " << latency.p99 << ",\n"
      << "  \"p999_us\": " << latency.p999 << ",\n"
      << "  \"max_us\": " << latency.max << ",\n"
      << "  \"max_lag_ms\": " << max_lag_ms() << ",\n"
      << "  \"dead_letters\": 0,\n"
      << "  \"queue_capacity\": " << queue_capacity << ",\n"
      << "  \"overflow_policy\": \"" << OverflowPolicyName(overflow_policy)
      << "\",\n"
      << "  \"shed_total\": 0,\n"
      << "  \"rejected_total\": 0,\n"
      << "  \"trimmed_total\": 0,\n"
      << "  \"producer_retries\": 0,\n"
      << "  \"degraded_entries\": 0,\n"
      << "  \"rss_mb\": " << rss_mb << "\n"
      << "}\n";
  std::cerr << "[latency_harness] wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double rate = 2000.0;       // Events per second.
  int duration_sec = 5;       // Sustained production window.
  int queries = 1;            // Identical queries sharing the stream.
  int shards = 1;             // > 1 drives a ShardedEngine fleet.
  std::string out_path = "BENCH_latency.json";
  int metrics_port = -1;      // -1 = endpoint off; 0 = ephemeral.
  int stats_interval = 0;     // Seconds; 0 = off.
  // Overload knobs: flag beats environment beats off/unbounded.
  size_t queue_capacity =
      static_cast<size_t>(Int64FromEnvVar("SERAPH_QUEUE_CAPACITY", 0));
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
  if (const char* env = std::getenv("SERAPH_OVERFLOW_POLICY")) {
    ParseOverflowPolicy(env, &overflow_policy);
  }
  int64_t shed_lag_ms = Int64FromEnvVar("SERAPH_SHED_LAG_MS", 0);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (FlagValue(arg, "--rate=", &value)) {
      rate = std::atof(value.c_str());
      if (rate <= 0) return Fail("--rate expects a positive events/sec");
    } else if (FlagValue(arg, "--duration-sec=", &value)) {
      duration_sec = std::atoi(value.c_str());
      if (duration_sec <= 0) {
        return Fail("--duration-sec expects a positive second count");
      }
    } else if (FlagValue(arg, "--queries=", &value)) {
      queries = std::atoi(value.c_str());
      if (queries <= 0) return Fail("--queries expects a positive count");
    } else if (FlagValue(arg, "--shards=", &value)) {
      shards = std::atoi(value.c_str());
      if (shards <= 0) return Fail("--shards expects a positive count");
    } else if (FlagValue(arg, "--out=", &value)) {
      out_path = value;
      if (out_path.empty()) return Fail("--out expects a file path");
    } else if (FlagValue(arg, "--metrics-port=", &value)) {
      metrics_port = std::atoi(value.c_str());
      if (metrics_port < 0 || metrics_port > 65535) {
        return Fail("--metrics-port expects a port number (0 = ephemeral)");
      }
    } else if (FlagValue(arg, "--stats-interval=", &value)) {
      stats_interval = std::atoi(value.c_str());
      if (stats_interval <= 0) {
        return Fail("--stats-interval expects a positive second count");
      }
    } else if (FlagValue(arg, "--queue-capacity=", &value)) {
      const long long parsed = std::atoll(value.c_str());
      if (parsed <= 0) {
        return Fail("--queue-capacity expects a positive element count");
      }
      queue_capacity = static_cast<size_t>(parsed);
    } else if (FlagValue(arg, "--overflow-policy=", &value)) {
      if (!ParseOverflowPolicy(value, &overflow_policy)) {
        return Fail(
            "--overflow-policy expects block, reject, or shed_oldest");
      }
    } else if (FlagValue(arg, "--shed-lag-ms=", &value)) {
      const long long parsed = std::atoll(value.c_str());
      if (parsed < 0) {
        return Fail("--shed-lag-ms expects a non-negative millisecond "
                    "count (0 = off)");
      }
      shed_lag_ms = static_cast<int64_t>(parsed);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: latency_harness [--rate=<events/sec>] "
                   "[--duration-sec=<n>] [--queries=<n>]\n"
                   "                       [--out=<path>] [--shards=<n>] "
                   "[--metrics-port=<p>] [--stats-interval=<sec>]\n"
                   "                       [--queue-capacity=<n>] "
                   "[--overflow-policy=<block|reject|shed_oldest>]\n"
                   "                       [--shed-lag-ms=<n>]\n";
      return 0;
    } else {
      return Fail("unknown argument '" + arg + "' (see --help)");
    }
  }

  if (shards > 1) {
    return RunSharded(shards, rate, duration_sec, queries, out_path,
                      queue_capacity, overflow_policy, metrics_port,
                      stats_interval);
  }

  EventQueue::Options queue_options;
  queue_options.capacity = queue_capacity;
  queue_options.overflow_policy = overflow_policy;
  EventQueue queue(queue_options);
  DeadLetterQueue dead_letters;
  // Shed elements are a recorded loss, not a silent one.
  queue.SetShedCallback([&](const StreamElement& element) {
    dead_letters.AddElement("latency-harness", element,
                            Status::Unavailable(
                                "shed: event queue overflow (shed_oldest)"),
                            /*attempts=*/0);
  });
  EngineOptions options;
  options.dead_letter = &dead_letters;
  ContinuousEngine engine(options);
  dead_letters.BindDepthGauge(
      engine.metrics().GaugeFor("seraph_dead_letter_depth"));
  CountingSink sink;
  engine.AddSink(&sink, "counting");
  // Sliding 10 s window, evaluated every second of event time. Event
  // time advances at one simulated millisecond per produced event scaled
  // to the target rate, so each harness second triggers about one
  // evaluation per query regardless of rate.
  for (int q = 0; q < queries; ++q) {
    if (Status s = engine.RegisterText(QueryText(q)); !s.ok()) {
      return Fail(s.ToString());
    }
  }

  std::mutex queries_json_mutex;
  std::string queries_json = "[]";
  MetricsServer::Options server_options;
  server_options.port = metrics_port < 0 ? 0 : metrics_port;
  server_options.registry = &engine.metrics();
  server_options.queries_json = [&]() -> std::string {
    std::lock_guard<std::mutex> lock(queries_json_mutex);
    return queries_json;
  };
  MetricsServer server(server_options);
  if (metrics_port >= 0) {
    if (Status s = server.Start(); !s.ok()) return Fail(s.ToString());
    std::cerr << "[latency_harness] metrics on http://127.0.0.1:"
              << server.port() << "/metrics\n";
  }

  StreamDriver::Options driver_options;
  driver_options.consumer = "latency-harness";
  driver_options.dead_letter = &dead_letters;
  driver_options.poll_batch = 256;
  driver_options.shed_lag_millis = shed_lag_ms;
  queue.Subscribe(driver_options.consumer);
  StreamDriver driver(&queue, &engine, driver_options);

  // Registry handles for live reporting (all reads are atomic).
  Histogram* fleet_latency =
      engine.metrics().HistogramFor("seraph_engine_emit_latency_micros");
  Gauge* lag_max = engine.metrics().GaugeFor("seraph_stream_lag_max_millis",
                                             {{"stream", "<default>"}});

  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  const auto deadline = start + std::chrono::seconds(duration_sec);
  // Event time: events advance the stream clock so each wall second
  // covers ~1 s of event time at the target rate.
  const double event_millis_per_event = 1000.0 / rate;
  int64_t produced = 0;
  int64_t producer_retries = 0;
  int64_t next_stats_at = stats_interval;
  while (clock::now() < deadline) {
    const double elapsed_sec =
        std::chrono::duration<double>(clock::now() - start).count();
    // Catch-up pacing: produce the deficit between the schedule and what
    // has been produced so far, then deliver it.
    const int64_t due = static_cast<int64_t>(elapsed_sec * rate);
    bool idle = produced >= due;
    while (produced < due) {
      const int64_t t_ms =
          1000 + static_cast<int64_t>(produced * event_millis_per_event);
      Status s = queue.Produce(MakeEvent(produced),
                               Timestamp::FromMillis(t_ms));
      if (!s.ok()) {
        if (s.code() != StatusCode::kUnavailable) return Fail(s.ToString());
        // Backpressure: the bounded queue refused the produce. Drain the
        // consumer (its committed offset lets the retention trim free
        // space) and retry the same event — the overload ledger, not the
        // producer, records any loss.
        ++producer_retries;
        auto drained = driver.PumpAll();
        if (!drained.ok()) return Fail(drained.status().ToString());
        continue;
      }
      ++produced;
    }
    auto pumped = driver.PumpAll();
    if (!pumped.ok()) return Fail(pumped.status().ToString());
    {
      std::string fresh = QueriesStatusJson(engine);
      std::lock_guard<std::mutex> lock(queries_json_mutex);
      queries_json = std::move(fresh);
    }
    if (stats_interval > 0 && elapsed_sec >= next_stats_at) {
      next_stats_at += stats_interval;
      HistogramSnapshot lat = fleet_latency->Snapshot();
      std::cerr << "[latency_harness] in=" << produced
                << " emits=" << sink.emits() << " p99_emit_us=" << lat.p99
                << " max_lag_ms=" << lag_max->value()
                << " dlq=" << dead_letters.size() << "\n";
    }
    if (idle) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  if (Status s = driver.Finish(); !s.ok()) return Fail(s.ToString());

  const double wall_sec =
      std::chrono::duration<double>(clock::now() - start).count();
  HistogramSnapshot latency = fleet_latency->Snapshot();
  if (latency.count == 0) {
    return Fail("no emit-latency samples were recorded — the run produced "
                "no delivered evaluations (rate/duration too small?)");
  }
  const double achieved = static_cast<double>(produced) / wall_sec;

  // The overload ledger: every element the bounded queue refused or
  // evicted, and every one the degraded driver sampled out, is counted
  // here (and dead-lettered) — delivered + shed partitions the input.
  const int64_t shed_total = queue.shed_total() + driver.shed_total();
  const double rss_mb = RssMb();

  char line[640];
  std::snprintf(line, sizeof(line),
                "events=%lld (%.0f/s target %.0f/s)  queries=%d  emits=%lld"
                "  rows=%lld\n"
                "emit latency (us): p50=%lld p99=%lld p999=%lld max=%lld"
                "  samples=%lld\n"
                "max lag: %lld ms  dead letters: %zu\n"
                "overload: shed=%lld rejected=%lld trimmed=%lld"
                " producer_retries=%lld degraded_entries=%lld"
                "  rss=%.1f MiB\n",
                static_cast<long long>(produced), achieved, rate, queries,
                static_cast<long long>(sink.emits()),
                static_cast<long long>(sink.rows()),
                static_cast<long long>(latency.p50),
                static_cast<long long>(latency.p99),
                static_cast<long long>(latency.p999),
                static_cast<long long>(latency.max),
                static_cast<long long>(latency.count),
                static_cast<long long>(lag_max->value()),
                dead_letters.size(),
                static_cast<long long>(shed_total),
                static_cast<long long>(queue.rejected_total()),
                static_cast<long long>(queue.trimmed_total()),
                static_cast<long long>(producer_retries),
                static_cast<long long>(driver.degraded_entries()),
                rss_mb);
  std::cout << line;

  std::ofstream out(out_path);
  if (!out) return Fail("cannot open '" + out_path + "'");
  out << "{\n"
      << "  \"rate_target\": " << rate << ",\n"
      << "  \"rate_achieved\": " << achieved << ",\n"
      << "  \"duration_sec\": " << duration_sec << ",\n"
      << "  \"queries\": " << queries << ",\n"
      << "  \"events\": " << produced << ",\n"
      << "  \"emits\": " << sink.emits() << ",\n"
      << "  \"rows\": " << sink.rows() << ",\n"
      << "  \"latency_samples\": " << latency.count << ",\n"
      << "  \"p50_us\": " << latency.p50 << ",\n"
      << "  \"p99_us\": " << latency.p99 << ",\n"
      << "  \"p999_us\": " << latency.p999 << ",\n"
      << "  \"max_us\": " << latency.max << ",\n"
      << "  \"max_lag_ms\": " << lag_max->value() << ",\n"
      << "  \"dead_letters\": " << dead_letters.size() << ",\n"
      << "  \"queue_capacity\": " << queue_capacity << ",\n"
      << "  \"overflow_policy\": \"" << OverflowPolicyName(overflow_policy)
      << "\",\n"
      << "  \"shed_total\": " << shed_total << ",\n"
      << "  \"rejected_total\": " << queue.rejected_total() << ",\n"
      << "  \"trimmed_total\": " << queue.trimmed_total() << ",\n"
      << "  \"producer_retries\": " << producer_retries << ",\n"
      << "  \"degraded_entries\": " << driver.degraded_entries() << ",\n"
      << "  \"rss_mb\": " << rss_mb << "\n"
      << "}\n";
  std::cerr << "[latency_harness] wrote " << out_path << "\n";
  return 0;
}
