// seraph_run — run a Seraph continuous query over a recorded event log.
//
//   seraph_run <query.seraph> <events.log> [--csv | --json] [--stats]
//              [--explain] [--metrics=<path|->] [--trace=<path>]
//              [--progress=<n>] [--dead-letter=<path>] [--threads=<n>]
//              [--match-threads=<n>] [--checkpoint-dir=<dir>]
//              [--checkpoint-every=<n>] [--restore]
//              [--queue-capacity=<n>] [--overflow-policy=<policy>]
//              [--eval-deadline-ms=<n>] [--shed-lag-ms=<n>]
//   seraph_run --inspect-checkpoint --checkpoint-dir=<dir>
//
// The query file holds one REGISTER QUERY statement; the event log uses
// the text format of io/graph_text.h (`@ <ISO datetime>` headers followed
// by node/rel lines). Results are printed as ASCII tables per evaluation,
// or as CSV / JSON lines with --csv / --json. With --stats, per-query
// execution counters are reported at the end.
//
// Observability:
//   --metrics=<path>  dump the engine's metrics registry in Prometheus
//                     text format after the run ("-" = stdout): per-stage
//                     latency histograms (window / snapshot / match /
//                     policy / sink), reuse and maintenance counters,
//                     per-stream ingestion counts.
//   --trace=<path>    record every pipeline stage as a span and write a
//                     Chrome trace-event JSON file loadable in
//                     chrome://tracing or https://ui.perfetto.dev.
//   --progress=<n>    print a stats line to stderr every n ingested
//                     events (and advance the engine as events arrive, so
//                     the counters are live). Requires a chronologically
//                     ordered event log.
//   --metrics-port=<p>  serve the live observability endpoint on
//                     127.0.0.1:<p> for the duration of the run (0 picks
//                     an ephemeral port, announced on stderr): GET
//                     /metrics (Prometheus text, incl. the
//                     seraph_emit_latency_micros histograms and
//                     per-stream lag gauges), /healthz, and /queries
//                     (JSON per-query status). See docs/INTERNALS.md,
//                     "Latency accounting & lag".
//   --stats-interval=<sec>  print a one-line status to stderr every
//                     <sec> seconds while the run is in flight: elements
//                     in, rows out, p99 emit latency, max lag, dead-letter
//                     depth. Reads only the (atomic) metrics registry, so
//                     it is safe alongside the run.
//
// Fault tolerance (docs/INTERNALS.md, "Failure model"):
//   --dead-letter=<path>  capture results permanently rejected by the
//                     output sink as JSON lines at <path> instead of
//                     losing them; a summary goes to stderr. The sink is
//                     retried on transient failures and quarantined after
//                     repeated ones.
//   SERAPH_FAULT_SEED / SERAPH_FAULT_POINTS  environment knobs arming
//                     the deterministic fault injector (e.g.
//                     SERAPH_FAULT_POINTS="sink.emit=0.05") for chaos
//                     runs; see common/fault.h.
//
// Durability (docs/INTERNALS.md, "Durability & recovery"):
//   --checkpoint-dir=<dir>  route events through an EventQueue +
//                     StreamDriver and commit atomic checkpoints (engine
//                     state, consumer offsets, dead letters) into <dir>
//                     at the engine's batch barrier.
//   --checkpoint-every=<n>  checkpoint cadence in evaluation batches
//                     (default 1, or the SERAPH_CHECKPOINT_EVERY
//                     environment variable).
//   --restore         before running, restore engine state and the
//                     consumer offset from the newest valid checkpoint
//                     in --checkpoint-dir, then replay only the event
//                     suffix past it; output continues bit-identically.
//                     Without a loadable checkpoint the run cold-starts.
//   --inspect-checkpoint  print every checkpoint generation in
//                     --checkpoint-dir (segments, sizes, CRC status,
//                     streams, offsets, queries) and exit.
//
// Overload protection (docs/INTERNALS.md, "Overload & backpressure"):
//   --queue-capacity=<n>  bound the durable EventQueue to <n> retained
//                     elements (checkpoint mode only; default 0 =
//                     unbounded). Retained means past the retention
//                     horizon — delivered-and-checkpointed entries are
//                     trimmed, so memory tracks consumer lag, not log
//                     size. SERAPH_QUEUE_CAPACITY supplies the default.
//   --overflow-policy=<block|reject|shed_oldest>  what a full queue does
//                     to the producer (default block): block = bounded
//                     wait for a trim, then reject; reject = fail the
//                     produce (the tool pumps the consumer and retries);
//                     shed_oldest = evict the oldest retained element,
//                     dead-lettering it with exact accounting.
//                     SERAPH_OVERFLOW_POLICY supplies the default.
//   --eval-deadline-ms=<n>  cooperative per-evaluation deadline: an
//                     evaluation that exceeds it is cancelled at the next
//                     matcher boundary and fails with kDeadlineExceeded,
//                     flowing through the isolation path (dead-letter,
//                     error budget, disable). 0 = off (default).
//                     SERAPH_EVAL_DEADLINE_MS supplies the default.
//   --shed-lag-ms=<n>  degraded-mode threshold: when the delivered
//                     horizon falls this many event-time ms behind the
//                     newest queued event, the driver switches to larger
//                     pump batches until lag halves. 0 = off (default).
//                     SERAPH_SHED_LAG_MS supplies the default.
//
// Parallel evaluation (docs/INTERNALS.md, "Parallel evaluation"):
//   --threads=<n>     evaluation worker threads: 1 = serial (default),
//                     0 = one per hardware thread. Output is identical at
//                     any thread count. The SERAPH_EVAL_THREADS
//                     environment variable supplies the default when the
//                     flag is absent.
//   --match-threads=<n>  intra-query parallel pattern matching (morsel-
//                     partitioned seed scan; docs/INTERNALS.md,
//                     "Intra-query parallelism"): 1 = serial matching
//                     (default), 0 = one worker per hardware thread.
//                     Results are bit-identical at any thread count. The
//                     SERAPH_MATCH_THREADS environment variable supplies
//                     the default when the flag is absent.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/trace.h"
#include "io/graph_text.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "seraph/seraph_parser.h"
#include "seraph/sinks.h"
#include "seraph/stream_driver.h"
#include "server/metrics_server.h"
#include "stream/event_queue.h"
#include "stream/overflow_policy.h"

namespace {

using namespace seraph;

// Offset key of the tool's queue consumer in checkpoint mode.
constexpr char kRunConsumer[] = "seraph-run";

int Fail(const std::string& message) {
  std::cerr << "seraph_run: " << message << "\n";
  return 1;
}

const char* RoleName(persist::SegmentRole role) {
  switch (role) {
    case persist::SegmentRole::kQueries:
      return "queries";
    case persist::SegmentRole::kOffsets:
      return "offsets";
    case persist::SegmentRole::kDeadLetters:
      return "dead-letters";
    case persist::SegmentRole::kStream:
      return "stream";
  }
  return "unknown";
}

// --inspect-checkpoint: a human-readable manifest-by-manifest summary.
int InspectCheckpoints(const std::string& dir) {
  auto summaries = persist::InspectCheckpoints(dir);
  if (!summaries.ok()) return Fail(summaries.status().ToString());
  if (summaries->empty()) {
    std::cout << "no checkpoints in '" << dir << "'\n";
    return 0;
  }
  for (const persist::ManifestSummary& summary : *summaries) {
    std::cout << persist::ManifestFileName(summary.seq) << ": "
              << (summary.valid ? "VALID" : "INVALID") << "\n";
    if (!summary.valid) {
      std::cout << "  error: " << summary.error << "\n";
    }
    for (const persist::SegmentSummary& segment : summary.segments) {
      std::cout << "  " << RoleName(segment.role) << "  " << segment.file
                << "  " << segment.manifest_size << " bytes";
      if (!segment.present) {
        std::cout << "  MISSING";
      } else if (segment.actual_size != segment.manifest_size) {
        std::cout << "  SIZE MISMATCH (" << segment.actual_size
                  << " on disk)";
      } else {
        std::cout << (segment.crc_ok ? "  crc ok" : "  CRC MISMATCH");
      }
      std::cout << "\n";
    }
    if (!summary.image.has_value()) continue;
    const persist::CheckpointImage& image = *summary.image;
    std::cout << "  clock: " << image.engine.clock.ToString() << "\n";
    size_t elements = 0;
    for (const auto& [name, stream] : image.engine.streams) {
      elements += stream.size();
      std::cout << "  stream '" << name << "': " << stream.size()
                << " element(s)\n";
    }
    for (const auto& [consumer, offset] : image.offsets) {
      std::cout << "  offset " << consumer << ": " << offset << "\n";
    }
    for (const QueryCheckpoint& query : image.engine.queries) {
      std::cout << "  query '" << query.name
                << "': next_eval=" << query.next_eval.ToString()
                << ", evaluations=" << query.stats.evaluations
                << (query.disabled ? ", DISABLED" : "") << "\n";
    }
    std::cout << "  dead letters: " << image.dead_letters.size() << "\n";
  }
  return 0;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Value of a `--flag=value` argument, if `arg` starts with `prefix`.
bool FlagValue(const std::string& arg, const std::string& prefix,
               std::string* value) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

// Non-negative integer environment default for an overload knob;
// malformed or negative values fall back.
int64_t Int64FromEnvVar(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) return fallback;
  return static_cast<int64_t>(parsed);
}

void PrintProgressLine(const ContinuousEngine& engine,
                       const std::string& name, size_t ingested,
                       size_t total) {
  auto stats = engine.StatsFor(name);
  std::cerr << "[seraph_run] ingested " << ingested << "/" << total
            << " events";
  if (stats.ok()) {
    std::cerr << ", evaluations=" << stats->evaluations
              << ", reused=" << stats->reused_results
              << ", rows_emitted=" << stats->rows_emitted;
  }
  std::cerr << "\n";
}

// The --stats-interval reporter: a background thread printing a one-line
// status every interval. It reads only the metrics registry, whose
// instruments are atomics, so running it alongside ingestion/evaluation
// is race-free (the histogram it snapshots is single-writer on the
// engine side, multi-reader by design).
class StatsReporter {
 public:
  StatsReporter(MetricsRegistry* registry, std::string query,
                int interval_sec)
      : registry_(registry),
        query_(std::move(query)),
        interval_sec_(interval_sec) {}

  ~StatsReporter() { Stop(); }

  void Start() {
    ingested_ = registry_->CounterFor("seraph_stream_elements_ingested_total",
                                      {{"stream", "<default>"}});
    rows_ = registry_->CounterFor("seraph_query_rows_emitted_total",
                                  {{"query", query_}});
    latency_ = registry_->HistogramFor("seraph_emit_latency_micros",
                                       {{"query", query_}});
    lag_max_ = registry_->GaugeFor("seraph_stream_lag_max_millis",
                                   {{"stream", "<default>"}});
    dead_letter_depth_ = registry_->GaugeFor("seraph_dead_letter_depth");
    thread_ = std::thread([this] { Loop(); });
  }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    using namespace std::chrono;
    auto next = steady_clock::now() + seconds(interval_sec_);
    while (!stop_.load(std::memory_order_relaxed)) {
      // Sleep in short slices so Stop() is prompt.
      std::this_thread::sleep_for(milliseconds(50));
      if (steady_clock::now() < next) continue;
      next += seconds(interval_sec_);
      HistogramSnapshot latency = latency_->Snapshot();
      std::cerr << "[seraph_run] in=" << ingested_->value()
                << " rows_out=" << rows_->value()
                << " p99_emit_us=" << latency.p99
                << " max_lag_ms=" << lag_max_->value()
                << " dlq=" << dead_letter_depth_->value() << "\n";
    }
  }

  MetricsRegistry* registry_;
  std::string query_;
  int interval_sec_;
  Counter* ingested_ = nullptr;
  Counter* rows_ = nullptr;
  Histogram* latency_ = nullptr;
  Gauge* lag_max_ = nullptr;
  Gauge* dead_letter_depth_ = nullptr;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool csv = false;
  bool json = false;
  bool stats = false;
  bool explain = false;
  std::string metrics_path;
  std::string trace_path;
  std::string dead_letter_path;
  std::string checkpoint_dir;
  bool restore = false;
  bool inspect_checkpoint = false;
  // Cadence default: every batch, overridable by env then flag.
  long checkpoint_every = 1;
  if (const char* env = std::getenv("SERAPH_CHECKPOINT_EVERY")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) checkpoint_every = parsed;
  }
  long progress_every = 0;
  int metrics_port = -1;    // -1 = endpoint off; 0 = ephemeral port.
  int stats_interval = 0;   // Seconds; 0 = reporter off.
  // --threads beats SERAPH_EVAL_THREADS beats serial; --match-threads
  // beats SERAPH_MATCH_THREADS likewise.
  int eval_threads = EvalThreadsFromEnv(1);
  int match_threads = MatchThreadsFromEnv(1);
  // Overload knobs: flag beats environment beats off. Environment-only
  // values are ignored outside checkpoint mode (there is no queue to
  // bound); explicit flags there are an error instead.
  size_t queue_capacity =
      static_cast<size_t>(Int64FromEnvVar("SERAPH_QUEUE_CAPACITY", 0));
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
  if (const char* env = std::getenv("SERAPH_OVERFLOW_POLICY")) {
    ParseOverflowPolicy(env, &overflow_policy);
  }
  int64_t eval_deadline_ms = EvalDeadlineMillisFromEnv(0);
  int64_t shed_lag_ms = Int64FromEnvVar("SERAPH_SHED_LAG_MS", 0);
  bool overload_flags_explicit = false;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    std::string value;
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (FlagValue(arg, "--metrics=", &metrics_path)) {
      if (metrics_path.empty()) {
        return Fail("--metrics expects a file path or '-' for stdout");
      }
    } else if (FlagValue(arg, "--trace=", &trace_path)) {
      if (trace_path.empty()) {
        return Fail("--trace expects a file path");
      }
    } else if (FlagValue(arg, "--dead-letter=", &dead_letter_path)) {
      if (dead_letter_path.empty()) {
        return Fail("--dead-letter expects a file path");
      }
    } else if (FlagValue(arg, "--checkpoint-dir=", &checkpoint_dir)) {
      if (checkpoint_dir.empty()) {
        return Fail("--checkpoint-dir expects a directory path");
      }
    } else if (FlagValue(arg, "--checkpoint-every=", &value)) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        return Fail("--checkpoint-every expects a positive batch count");
      }
      checkpoint_every = parsed;
    } else if (arg == "--restore") {
      restore = true;
    } else if (arg == "--inspect-checkpoint") {
      inspect_checkpoint = true;
    } else if (FlagValue(arg, "--progress=", &value)) {
      progress_every = std::strtol(value.c_str(), nullptr, 10);
      if (progress_every <= 0) {
        return Fail("--progress expects a positive event count");
      }
    } else if (FlagValue(arg, "--metrics-port=", &value)) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0 ||
          parsed > 65535) {
        return Fail("--metrics-port expects a port number "
                    "(0 = ephemeral)");
      }
      metrics_port = static_cast<int>(parsed);
    } else if (FlagValue(arg, "--stats-interval=", &value)) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        return Fail("--stats-interval expects a positive second count");
      }
      stats_interval = static_cast<int>(parsed);
    } else if (FlagValue(arg, "--threads=", &value)) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return Fail("--threads expects a non-negative thread count "
                    "(0 = hardware concurrency)");
      }
      eval_threads = static_cast<int>(parsed);
    } else if (FlagValue(arg, "--queue-capacity=", &value)) {
      char* end = nullptr;
      long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed <= 0) {
        return Fail("--queue-capacity expects a positive element count");
      }
      queue_capacity = static_cast<size_t>(parsed);
      overload_flags_explicit = true;
    } else if (FlagValue(arg, "--overflow-policy=", &value)) {
      if (!ParseOverflowPolicy(value, &overflow_policy)) {
        return Fail(
            "--overflow-policy expects block, reject, or shed_oldest");
      }
      overload_flags_explicit = true;
    } else if (FlagValue(arg, "--eval-deadline-ms=", &value)) {
      char* end = nullptr;
      long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return Fail("--eval-deadline-ms expects a non-negative millisecond "
                    "count (0 = off)");
      }
      eval_deadline_ms = static_cast<int64_t>(parsed);
    } else if (FlagValue(arg, "--shed-lag-ms=", &value)) {
      char* end = nullptr;
      long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return Fail("--shed-lag-ms expects a non-negative millisecond "
                    "count (0 = off)");
      }
      shed_lag_ms = static_cast<int64_t>(parsed);
      overload_flags_explicit = true;
    } else if (FlagValue(arg, "--match-threads=", &value)) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return Fail("--match-threads expects a non-negative thread count "
                    "(0 = hardware concurrency)");
      }
      match_threads = static_cast<int>(parsed);
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: seraph_run <query.seraph> <events.log> "
             "[--csv | --json] [--stats] [--explain]\n"
             "                  [--metrics=<path|->] [--trace=<path>] "
             "[--progress=<n>]\n"
             "                  [--dead-letter=<path>] [--threads=<n>] "
             "[--match-threads=<n>]\n"
             "                  [--checkpoint-dir=<dir>] "
             "[--checkpoint-every=<n>] [--restore]\n"
             "                  [--metrics-port=<p>] "
             "[--stats-interval=<sec>]\n"
             "                  [--queue-capacity=<n>] "
             "[--overflow-policy=<block|reject|shed_oldest>]\n"
             "                  [--eval-deadline-ms=<n>] "
             "[--shed-lag-ms=<n>]\n"
             "       seraph_run --inspect-checkpoint "
             "--checkpoint-dir=<dir>\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (csv && json) return Fail("--csv and --json are mutually exclusive");
  if (inspect_checkpoint) {
    if (checkpoint_dir.empty()) {
      return Fail("--inspect-checkpoint requires --checkpoint-dir=<dir>");
    }
    return InspectCheckpoints(checkpoint_dir);
  }
  if (restore && checkpoint_dir.empty()) {
    return Fail("--restore requires --checkpoint-dir=<dir>");
  }
  if (!checkpoint_dir.empty() && progress_every > 0) {
    return Fail("--progress is not supported with --checkpoint-dir; the "
                "restore banner reports the replay backlog instead");
  }
  if (checkpoint_dir.empty() && overload_flags_explicit) {
    return Fail("--queue-capacity/--overflow-policy/--shed-lag-ms bound "
                "the durable event queue and require --checkpoint-dir");
  }
  if (positional.size() != 2) {
    return Fail("expected <query.seraph> <events.log> (see --help)");
  }

  auto query_text = ReadFile(positional[0]);
  if (!query_text.ok()) return Fail(query_text.status().ToString());
  auto query = ParseSeraphQuery(*query_text);
  if (!query.ok()) return Fail(query.status().ToString());
  if (explain) std::cerr << query->Describe();

  auto log_text = ReadFile(positional[1]);
  if (!log_text.ok()) return Fail(log_text.status().ToString());
  std::istringstream log_stream(*log_text);
  auto events = io::ReadEventLog(&log_stream);
  if (!events.ok()) return Fail(events.status().ToString());

  // Output columns come from the query's own projection aliases.
  std::vector<std::string> columns;
  for (const ProjectionItem& item : query->projection.items) {
    columns.push_back(item.alias);
  }
  std::string name = query->name;

  // Environment-driven fault injection for chaos runs (no-op unless
  // SERAPH_FAULT_SEED / SERAPH_FAULT_POINTS are set).
  FaultInjector::Global().ConfigureFromEnv();

  TraceRecorder tracer;
  DeadLetterQueue dead_letters;
  EngineOptions options;
  if (!trace_path.empty()) {
    tracer.Enable();
    options.tracer = &tracer;
  }
  if (!dead_letter_path.empty()) {
    options.dead_letter = &dead_letters;
  }
  options.eval_threads = eval_threads;
  options.match_threads = match_threads;
  options.eval_deadline_millis = eval_deadline_ms;
  if (!checkpoint_dir.empty()) {
    options.checkpoint_every = checkpoint_every;
  }
  ContinuousEngine engine(options);
  // Live dead-letter depth for /metrics and the stats line (the gauge
  // mirrors every queue mutation).
  dead_letters.BindDepthGauge(
      engine.metrics().GaugeFor("seraph_dead_letter_depth"));
  // /queries serves a published snapshot: the engine's query state is not
  // thread-safe to walk from the server thread, so the run refreshes this
  // string at quiescent points and the server only copies it.
  std::mutex queries_json_mutex;
  std::string queries_json = "[]";
  auto publish_queries = [&] {
    std::string fresh = QueriesStatusJson(engine);
    std::lock_guard<std::mutex> lock(queries_json_mutex);
    queries_json = std::move(fresh);
  };
  MetricsServer::Options server_options;
  server_options.port = metrics_port < 0 ? 0 : metrics_port;
  server_options.registry = &engine.metrics();
  server_options.queries_json = [&]() -> std::string {
    std::lock_guard<std::mutex> lock(queries_json_mutex);
    return queries_json;
  };
  MetricsServer server(server_options);
  if (metrics_port >= 0) {
    if (Status s = server.Start(); !s.ok()) return Fail(s.ToString());
    std::cerr << "[seraph_run] metrics on http://127.0.0.1:" << server.port()
              << "/metrics (also /healthz, /queries)\n";
  }
  StatsReporter reporter(&engine.metrics(), name, stats_interval);
  if (stats_interval > 0) reporter.Start();
  PrintingSink printer(&std::cout, columns);
  CsvSink csv_sink(&std::cout, columns);
  JsonLinesSink json_sink(&std::cout, /*include_empty=*/false);
  // With a dead-letter destination the sink gets the full isolation
  // treatment: transient failures retried, permanent rejections captured.
  SinkPolicy sink_policy;
  sink_policy.retry.max_attempts = 3;
  EmitSink* output = csv ? static_cast<EmitSink*>(&csv_sink)
                         : json ? static_cast<EmitSink*>(&json_sink)
                                : static_cast<EmitSink*>(&printer);
  engine.AddSink(output, "output", sink_policy);
  if (Status s = engine.Register(std::move(query).value()); !s.ok()) {
    return Fail(s.ToString());
  }
  publish_queries();
  if (!checkpoint_dir.empty()) {
    // Durable mode: route the event log through an EventQueue so the
    // consumer offset is a checkpointable position, commit a generation
    // at every batch barrier, and (with --restore) resume from the
    // newest valid one — replaying only the uncheckpointed suffix.
    EventQueue::Options queue_options;
    queue_options.capacity = queue_capacity;
    queue_options.overflow_policy = overflow_policy;
    EventQueue queue(queue_options);
    // Shed elements are a recorded loss, not a silent one: each eviction
    // lands in the dead-letter queue with the overflow reason.
    queue.SetShedCallback([&](const StreamElement& element) {
      dead_letters.AddElement(kRunConsumer, element,
                              Status::Unavailable(
                                  "shed: event queue overflow (shed_oldest)"),
                              /*attempts=*/0);
    });
    // Unbounded runs preload the whole log so the restore banner reports
    // the true replay backlog; bounded runs produce after recovery, under
    // backpressure, so the queue never exceeds its capacity.
    if (queue_capacity == 0) {
      for (const StreamElement& event : *events) {
        if (Status s = queue.Produce(event.graph, event.timestamp);
            !s.ok()) {
          return Fail(s.ToString());
        }
      }
    }
    persist::CheckpointOptions checkpoint_options;
    checkpoint_options.dir = checkpoint_dir;
    persist::CheckpointManager manager(checkpoint_options);
    manager.BindQueue(kRunConsumer, &queue);
    manager.BindDeadLetter(&dead_letters);
    manager.AttachTo(&engine);
    if (restore) {
      auto report = persist::RecoverAll(
          checkpoint_dir, &engine, &queue, {kRunConsumer},
          options.dead_letter != nullptr ? &dead_letters : nullptr);
      if (report.ok()) {
        std::cerr << "[seraph_run] restored checkpoint seq="
                  << report->seq << ": " << report->queries
                  << " query(ies), " << report->stream_elements
                  << " checkpointed element(s), replay backlog "
                  << report->replay_backlog.at(kRunConsumer) << "\n";
      } else if (report.status().code() == StatusCode::kNotFound) {
        std::cerr << "[seraph_run] no checkpoint in '" << checkpoint_dir
                  << "'; cold-starting\n";
        queue.Subscribe(kRunConsumer);
      } else {
        return Fail(report.status().ToString());
      }
    } else {
      queue.Subscribe(kRunConsumer);
    }
    // Retention: entries below min(committed offsets, checkpoint horizon)
    // are trimmed after each commit, so queue memory tracks consumer lag
    // rather than log size. Bound AFTER recovery so the horizon starts at
    // the restore point.
    manager.ManageRetention(&queue);
    StreamDriver::Options driver_options;
    driver_options.consumer = kRunConsumer;
    driver_options.shed_lag_millis = shed_lag_ms;
    if (options.dead_letter != nullptr) {
      driver_options.dead_letter = &dead_letters;
    }
    StreamDriver driver(&queue, &engine, driver_options);
    size_t delivered = 0;
    if (queue_capacity > 0) {
      // Bounded ingest: a refused produce (queue full under block/reject)
      // drains the consumer — advancing the committed offset and, at
      // batch barriers, the checkpoint horizon — then retries. A retry
      // that can free nothing means the capacity cannot cover the replay
      // suffix between checkpoints; fail with the remedy.
      for (const StreamElement& event : *events) {
        int stalled_retries = 0;
        while (true) {
          Status s = queue.Produce(event.graph, event.timestamp);
          if (s.ok()) break;
          if (s.code() != StatusCode::kUnavailable) return Fail(s.ToString());
          const int64_t trimmed_before = queue.trimmed_total();
          auto drained = driver.PumpAll();
          if (!drained.ok()) return Fail(drained.status().ToString());
          delivered += *drained;
          queue.TrimCommitted();
          if (*drained == 0 && queue.trimmed_total() == trimmed_before) {
            if (++stalled_retries >= 3) {
              return Fail(
                  "event queue full (capacity " +
                  std::to_string(queue_capacity) +
                  ") and the consumer cannot free space; increase "
                  "--queue-capacity, lower --checkpoint-every, or use "
                  "--overflow-policy=shed_oldest");
            }
          } else {
            stalled_retries = 0;
          }
        }
      }
    }
    auto pumped = driver.PumpAll();
    if (!pumped.ok()) return Fail(pumped.status().ToString());
    delivered += *pumped;
    if (Status s = driver.Finish(); !s.ok()) return Fail(s.ToString());
    std::cerr << "[seraph_run] delivered " << delivered << " event(s), "
              << manager.checkpoints_written() << " checkpoint(s) written"
              << " (last seq=" << manager.last_seq() << ")";
    if (manager.checkpoint_failures() > 0) {
      std::cerr << ", " << manager.checkpoint_failures() << " failed";
    }
    std::cerr << "\n";
    if (queue_capacity > 0) {
      std::cerr << "[seraph_run] queue: capacity " << queue_capacity
                << " (policy " << OverflowPolicyName(overflow_policy)
                << "), shed " << queue.shed_total() << ", rejected "
                << queue.rejected_total() << ", trimmed "
                << queue.trimmed_total() << ", driver shed "
                << driver.shed_total() << ", degraded entries "
                << driver.degraded_entries() << "\n";
    }
  } else {
    size_t ingested = 0;
    for (const StreamElement& event : *events) {
      if (Status s = engine.Ingest(event.graph, event.timestamp); !s.ok()) {
        return Fail(s.ToString());
      }
      ++ingested;
      if (progress_every > 0 &&
          ingested % static_cast<size_t>(progress_every) == 0) {
        // Advance so the progress counters reflect evaluations up to this
        // event; needs the log in chronological order.
        if (Status s = engine.AdvanceTo(event.timestamp); !s.ok()) {
          return Fail(s.ToString() +
                      " (--progress requires a chronological event log)");
        }
        PrintProgressLine(engine, name, ingested, events->size());
        publish_queries();
      }
    }
    if (Status s = engine.Drain(); !s.ok()) return Fail(s.ToString());
    if (progress_every > 0) {
      PrintProgressLine(engine, name, ingested, events->size());
    }
  }

  // The run is quiescent again: refresh /queries and stop the periodic
  // reporter (the endpoint itself stays up until exit so a scraper can
  // collect the final state).
  publish_queries();
  reporter.Stop();

  // Query isolation: evaluation failures no longer abort the run, so
  // surface them here — and treat a disabled query (error budget
  // exhausted) as a failed run.
  QueryStats final_stats = *engine.StatsFor(name);
  if (final_stats.eval_failures > 0) {
    std::cerr << "[seraph_run] " << final_stats.eval_failures
              << " evaluation(s) failed, last error: "
              << final_stats.last_error.ToString() << "\n";
  }

  if (stats) {
    QueryStats counters = *engine.StatsFor(name);
    std::cerr << "evaluations: " << counters.evaluations
              << ", reused: " << counters.reused_results
              << ", rows emitted: " << counters.rows_emitted << "\n"
              << "latency (us): " << engine.LatencyFor(name)->ToString()
              << "\n"
              << "stage micros (cumulative): window="
              << counters.window_micros
              << " snapshot=" << counters.snapshot_micros
              << " match=" << counters.match_micros
              << " policy=" << counters.policy_micros
              << " sink=" << counters.sink_micros << "\n";
  }
  if (!metrics_path.empty()) {
    std::string text = engine.metrics().ToPrometheusText();
    if (metrics_path == "-") {
      std::cout << text;
    } else {
      std::ofstream out(metrics_path);
      if (!out) return Fail("cannot open metrics file '" + metrics_path + "'");
      out << text;
    }
  }
  if (!dead_letter_path.empty()) {
    if (!dead_letters.empty()) {
      std::ofstream out(dead_letter_path);
      if (!out) {
        return Fail("cannot open dead-letter file '" + dead_letter_path + "'");
      }
      if (Status s = dead_letters.WriteJsonLines(&out); !s.ok()) {
        return Fail(s.ToString());
      }
      std::cerr << "[seraph_run] " << dead_letters.size()
                << " dead-lettered entr"
                << (dead_letters.size() == 1 ? "y" : "ies") << " written to "
                << dead_letter_path
                << (engine.SinkQuarantined("output")
                        ? " (output sink quarantined)"
                        : "")
                << "\n";
    } else {
      std::cerr << "[seraph_run] no dead-lettered entries\n";
    }
  }
  if (!trace_path.empty()) {
    if (Status s = tracer.WriteJsonFile(trace_path); !s.ok()) {
      return Fail(s.ToString());
    }
    std::cerr << "[seraph_run] wrote " << tracer.size()
              << " trace events to " << trace_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (engine.QueryDisabled(name)) {
    return Fail("query '" + name + "' was disabled after repeated "
                "evaluation failures (last: " +
                final_stats.last_error.ToString() + ")");
  }
  return 0;
}
