// seraph_run — run a Seraph continuous query over a recorded event log.
//
//   seraph_run <query.seraph> <events.log> [--csv] [--stats]
//
// The query file holds one REGISTER QUERY statement; the event log uses
// the text format of io/graph_text.h (`@ <ISO datetime>` headers followed
// by node/rel lines). Results are printed as ASCII tables per evaluation,
// or as CSV with --csv. With --stats, per-query execution counters are
// reported at the end.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "io/graph_text.h"
#include "seraph/continuous_engine.h"
#include "seraph/seraph_parser.h"
#include "seraph/sinks.h"

namespace {

using namespace seraph;

int Fail(const std::string& message) {
  std::cerr << "seraph_run: " << message << "\n";
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool csv = false;
  bool json = false;
  bool stats = false;
  bool explain = false;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: seraph_run <query.seraph> <events.log> "
                   "[--csv | --json] [--stats] [--explain]\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (csv && json) return Fail("--csv and --json are mutually exclusive");
  if (positional.size() != 2) {
    return Fail("expected <query.seraph> <events.log> (see --help)");
  }

  auto query_text = ReadFile(positional[0]);
  if (!query_text.ok()) return Fail(query_text.status().ToString());
  auto query = ParseSeraphQuery(*query_text);
  if (!query.ok()) return Fail(query.status().ToString());
  if (explain) std::cerr << query->Describe();

  auto log_text = ReadFile(positional[1]);
  if (!log_text.ok()) return Fail(log_text.status().ToString());
  std::istringstream log_stream(*log_text);
  auto events = io::ReadEventLog(&log_stream);
  if (!events.ok()) return Fail(events.status().ToString());

  // Output columns come from the query's own projection aliases.
  std::vector<std::string> columns;
  for (const ProjectionItem& item : query->projection.items) {
    columns.push_back(item.alias);
  }
  std::string name = query->name;

  ContinuousEngine engine;
  PrintingSink printer(&std::cout, columns);
  CsvSink csv_sink(&std::cout, columns);
  JsonLinesSink json_sink(&std::cout, /*include_empty=*/false);
  if (csv) {
    engine.AddSink(&csv_sink);
  } else if (json) {
    engine.AddSink(&json_sink);
  } else {
    engine.AddSink(&printer);
  }
  if (Status s = engine.Register(std::move(query).value()); !s.ok()) {
    return Fail(s.ToString());
  }
  for (const StreamElement& event : *events) {
    if (Status s = engine.Ingest(event.graph, event.timestamp); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  if (Status s = engine.Drain(); !s.ok()) return Fail(s.ToString());

  if (stats) {
    QueryStats counters = *engine.StatsFor(name);
    std::cerr << "evaluations: " << counters.evaluations
              << ", reused: " << counters.reused_results
              << ", rows emitted: " << counters.rows_emitted << "\n"
              << "latency (us): " << engine.LatencyFor(name)->ToString()
              << "\n";
  }
  return 0;
}
