#!/usr/bin/env bash
# Runs the benchmark suite that tracks the engine's performance trajectory
# (bench_match: pattern matching incl. morsel-parallel scaling;
# bench_parallel_queries: inter-query scheduler scaling; bench_recovery:
# checkpoint write cost vs. state size and recovery latency vs. replay
# length; bench_emit_latency: the latency-stamping overhead guard;
# bench_delta: delta-matching ablation — steady-state evaluation latency
# vs. window size with churn held fixed; bench_overload: bounded-queue
# admission cost per overflow policy and
# the degraded-mode catch-up pump;
# bench_sharded: the sharded serving tier — one hash-partitioned
# workload through 1/2/4-shard fleets vs. the bare engine) plus
# the steady-state latency harness, and writes one BENCH_<name>.json per
# binary for archiving as a CI artifact and diffing against the committed
# baselines in bench/baselines/ (tools/compare_benches.py).
#
#   tools/run_benches.sh [build-dir] [output-dir]
#
# Defaults: build-dir = build, output-dir = bench-results. Extra repetition
# or filter knobs can be passed via BENCH_ARGS (forwarded verbatim to the
# google-benchmark binaries) and LATENCY_ARGS (to the latency harness).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
BENCHES=(bench_match bench_parallel_queries bench_recovery bench_emit_latency
         bench_delta
         bench_overload bench_sharded)

mkdir -p "${OUT_DIR}"
for bench in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${BUILD_DIR} --target ${bench})" >&2
    exit 1
  fi
  echo "== ${bench} =="
  "${bin}" \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/BENCH_${bench#bench_}.json" \
    --benchmark_out_format=json \
    ${BENCH_ARGS:-}
done

# The end-to-end latency harness (not a google-benchmark binary): a short
# sustained run writing the flat BENCH_latency.json summary.
HARNESS="${BUILD_DIR}/tools/latency_harness"
if [[ ! -x "${HARNESS}" ]]; then
  echo "error: ${HARNESS} not built (cmake --build ${BUILD_DIR} --target latency_harness)" >&2
  exit 1
fi
echo "== latency_harness =="
"${HARNESS}" --rate=2000 --duration-sec=5 --queries=4 \
  --out="${OUT_DIR}/BENCH_latency.json" ${LATENCY_ARGS:-}

echo "wrote $(ls "${OUT_DIR}"/BENCH_*.json | wc -l) result files to ${OUT_DIR}/"
