#!/usr/bin/env bash
# Runs the benchmark suite that tracks the engine's performance trajectory
# (bench_match: pattern matching incl. morsel-parallel scaling;
# bench_parallel_queries: inter-query scheduler scaling; bench_recovery:
# checkpoint write cost vs. state size and recovery latency vs. replay
# length) and writes one google-benchmark JSON file per binary for
# archiving as a CI artifact.
#
#   tools/run_benches.sh [build-dir] [output-dir]
#
# Defaults: build-dir = build, output-dir = bench-results. Extra repetition
# or filter knobs can be passed via BENCH_ARGS (forwarded verbatim).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
BENCHES=(bench_match bench_parallel_queries bench_recovery)

mkdir -p "${OUT_DIR}"
for bench in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${BUILD_DIR} --target ${bench})" >&2
    exit 1
  fi
  echo "== ${bench} =="
  "${bin}" \
    --benchmark_format=json \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json \
    ${BENCH_ARGS:-}
done
echo "wrote $(ls "${OUT_DIR}"/*.json | wc -l) result files to ${OUT_DIR}/"
