#!/usr/bin/env python3
"""Diffs fresh benchmark results against the committed baselines.

    tools/compare_benches.py [--baseline-dir bench/baselines]
                             [--results-dir bench-results]
                             [--threshold 4.0] [--latency-threshold 10.0]

Two file shapes are understood, matched by name:

  * google-benchmark JSON (BENCH_match.json, BENCH_parallel_queries.json,
    BENCH_recovery.json, BENCH_emit_latency.json, BENCH_overload.json):
    each benchmark's real_time is compared by name; a fresh run slower
    than `baseline * threshold` fails.
  * the latency harness's flat JSON (BENCH_latency.json): p50_us / p99_us
    / p999_us are compared against `baseline * latency-threshold`, and
    rate_achieved must stay above `baseline / latency-threshold`.

The thresholds are deliberately generous: CI runners are noisy,
heterogeneous machines, so this is a regression *tripwire* (an order-of-
magnitude slip, an accidentally quadratic path), not a precision gate.
Benchmarks present on only one side are reported but never fail the run,
so adding or retiring a benchmark does not need a baseline refresh in the
same change.

Exit code: 0 = within thresholds (or nothing to compare), 1 = regression.
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def is_google_benchmark(doc):
    return isinstance(doc, dict) and "benchmarks" in doc


def benchmark_times(doc):
    """name -> real_time in ns (google-benchmark normalises to time_unit)."""
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        times[name] = float(real_time) * scale
    return times


def compare_google_benchmark(name, baseline, fresh, threshold, failures):
    base_times = benchmark_times(baseline)
    fresh_times = benchmark_times(fresh)
    for bench_name in sorted(base_times.keys() | fresh_times.keys()):
        if bench_name not in base_times:
            print(f"  [new]    {bench_name} (no baseline; skipped)")
            continue
        if bench_name not in fresh_times:
            print(f"  [gone]   {bench_name} (not in fresh run; skipped)")
            continue
        base = base_times[bench_name]
        cur = fresh_times[bench_name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if base > 0 and ratio > threshold:
            verdict = f"REGRESSION (> {threshold:.1f}x)"
            failures.append(f"{name}: {bench_name} {ratio:.2f}x slower")
        print(f"  [{verdict:>10}] {bench_name}: {base:.0f} ns -> {cur:.0f} ns"
              f" ({ratio:.2f}x)")


def compare_latency(name, baseline, fresh, threshold, failures):
    for key in ("p50_us", "p99_us", "p999_us"):
        base = float(baseline.get(key, 0))
        cur = float(fresh.get(key, 0))
        if base <= 0:
            print(f"  [new]    {key} (no baseline; skipped)")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio > threshold:
            verdict = f"REGRESSION (> {threshold:.1f}x)"
            failures.append(f"{name}: {key} {ratio:.2f}x slower")
        print(f"  [{verdict:>10}] {key}: {base:.0f} us -> {cur:.0f} us"
              f" ({ratio:.2f}x)")
    base_rate = float(baseline.get("rate_achieved", 0))
    cur_rate = float(fresh.get("rate_achieved", 0))
    if base_rate > 0:
        ratio = cur_rate / base_rate
        verdict = "ok"
        if ratio < 1.0 / threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: rate_achieved collapsed to {ratio:.2f}x of baseline")
        print(f"  [{verdict:>10}] rate_achieved: {base_rate:.0f}/s ->"
              f" {cur_rate:.0f}/s ({ratio:.2f}x)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--results-dir", default="bench-results")
    parser.add_argument("--threshold", type=float, default=4.0,
                        help="max slowdown ratio for google-benchmark times")
    parser.add_argument("--latency-threshold", type=float, default=10.0,
                        help="max slowdown ratio for harness percentiles")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"no baseline directory at {args.baseline_dir}; "
              "nothing to compare")
        return 0
    if not os.path.isdir(args.results_dir):
        print(f"error: results directory {args.results_dir} not found",
              file=sys.stderr)
        return 1

    baselines = {f for f in os.listdir(args.baseline_dir)
                 if f.startswith("BENCH_") and f.endswith(".json")}
    results = {f for f in os.listdir(args.results_dir)
               if f.startswith("BENCH_") and f.endswith(".json")}

    failures = []
    compared = 0
    for file_name in sorted(baselines | results):
        if file_name not in baselines:
            print(f"{file_name}: no committed baseline (skipped)")
            continue
        if file_name not in results:
            print(f"{file_name}: baseline has no fresh counterpart (skipped)")
            continue
        baseline = load_json(os.path.join(args.baseline_dir, file_name))
        fresh = load_json(os.path.join(args.results_dir, file_name))
        print(f"{file_name}:")
        if is_google_benchmark(baseline) and is_google_benchmark(fresh):
            compare_google_benchmark(file_name, baseline, fresh,
                                     args.threshold, failures)
        else:
            compare_latency(file_name, baseline, fresh,
                            args.latency_threshold, failures)
        compared += 1

    if not compared:
        print("no overlapping benchmark files; nothing compared")
        return 0
    if failures:
        print("\nbenchmark regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} benchmark file(s) within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
