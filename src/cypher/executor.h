// Clause-by-clause query evaluation with bag-table semantics
// (Section 3.2; lifted per Fig. 7 by fixing the evaluation instant).
//
// The executor is shared between one-time Cypher evaluation and Seraph's
// continuous engine: the latter fixes the evaluation time instant, supplies
// per-MATCH snapshot graphs via a GraphResolver, and exposes the active
// window bounds to expressions.
#ifndef SERAPH_CYPHER_EXECUTOR_H_
#define SERAPH_CYPHER_EXECUTOR_H_

#include <map>
#include <optional>
#include <string>

#include "common/result.h"
#include "cypher/ast.h"
#include "graph/property_graph.h"
#include "table/table.h"
#include "temporal/interval.h"

namespace seraph {

struct MatchParallelism;  // cypher/matcher.h
class CancellationToken;  // common/cancel.h

struct ExecutionOptions {
  // Values for $parameters.
  std::map<std::string, Value> parameters;
  // The evaluation time instant: the value of datetime() / timestamp().
  Timestamp now;
  // Active window bounds (Seraph): resolves the reserved win_start /
  // win_end names in expressions.
  std::optional<TimeInterval> window;
  // Greedy join-order optimization within MATCH clauses (see
  // MatchOptions); disable to execute patterns in textual order.
  bool optimize_match_order = true;
  // Morsel-partitioned parallel pattern matching (cypher/matcher.h); the
  // spec must outlive the execution. Null = serial matching.
  const MatchParallelism* match_parallelism = nullptr;
  // Cooperative evaluation deadline (common/cancel.h); checked by the
  // matcher at seed/expansion boundaries. Null = no deadline. Must
  // outlive the execution.
  const CancellationToken* cancellation = nullptr;
};

// Supplies the graph each MATCH clause is evaluated against. Seraph's
// continuous engine returns the snapshot graph of the clause's WITHIN
// window; one-time Cypher uses a single graph for everything.
class GraphResolver {
 public:
  virtual ~GraphResolver() = default;

  // Graph for pattern matching of `clause` (the clause_index-th clause of
  // the single query being executed).
  virtual const PropertyGraph& GraphFor(const MatchClause& clause,
                                        size_t clause_index) const = 0;

  // Graph used for property lookups in expressions (the widest snapshot;
  // must contain every entity any clause can bind).
  virtual const PropertyGraph& BaseGraph() const = 0;
};

// Resolver using one graph for all clauses (plain Cypher).
class SingleGraphResolver final : public GraphResolver {
 public:
  explicit SingleGraphResolver(const PropertyGraph& graph) : graph_(graph) {}
  const PropertyGraph& GraphFor(const MatchClause&, size_t) const override {
    return graph_;
  }
  const PropertyGraph& BaseGraph() const override { return graph_; }

 private:
  const PropertyGraph& graph_;
};

// Evaluates one clause chain against `input` (Section 3.2's functional
// composition); `input` is normally Table::Unit().
Result<Table> ExecuteSingleQuery(const SingleQuery& query,
                                 const GraphResolver& resolver,
                                 const Table& input,
                                 const ExecutionOptions& options);

// Evaluates a full query (UNION of single queries) from the unit table.
Result<Table> ExecuteQuery(const Query& query, const GraphResolver& resolver,
                           const ExecutionOptions& options);

// Convenience: output(Q, G) for a one-time Cypher query.
Result<Table> ExecuteQueryOnGraph(const Query& query,
                                  const PropertyGraph& graph,
                                  const ExecutionOptions& options);

}  // namespace seraph

#endif  // SERAPH_CYPHER_EXECUTOR_H_
