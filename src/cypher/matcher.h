// Pattern matching: the match(π, G, u) set of Section 3.2 (lifted to
// snapshot graphs in Section 5.3).
//
// Given the path patterns of one MATCH clause, a graph, and an input
// record u, produces every extension u · u' such that the patterns are
// satisfied under the combined assignment. Variable-length relationship
// patterns are evaluated by on-the-fly expansion of the rigid patterns
// they subsume (DFS bounded by the hop range), and Cypher's relationship
// isomorphism rule is enforced: a relationship is traversed at most once
// per match of the whole clause.
//
// shortestPath(...) / allShortestPaths(...) path patterns are evaluated by
// BFS between all candidate endpoint bindings.
#ifndef SERAPH_CYPHER_MATCHER_H_
#define SERAPH_CYPHER_MATCHER_H_

#include <vector>

#include "common/result.h"
#include "cypher/ast.h"
#include "cypher/eval.h"
#include "graph/property_graph.h"
#include "table/record.h"

namespace seraph {

struct MatchOptions {
  // Greedy join-order optimization across the comma-separated patterns of
  // one MATCH clause: patterns whose variables are already bound (by the
  // input record or by previously processed patterns) are matched first,
  // and otherwise the pattern with the most selective label-indexed seed
  // starts. Purely an execution-order change — the result bag is
  // identical (ablated in bench_match's BM_JoinOrder).
  bool optimize_pattern_order = true;
};

// Appends to `out` every record extending `input` with bindings for the
// free variables of `patterns` matched against `graph`. `ctx` supplies
// parameters / evaluation time for property expressions inside patterns;
// its record pointer is managed internally.
Status MatchPatterns(const std::vector<PathPattern>& patterns,
                     const PropertyGraph& graph, const Record& input,
                     EvalContext& ctx, std::vector<Record>* out,
                     const MatchOptions& options = {});

// Single-pattern variant (the exists(<pattern>) predicate).
Status MatchSinglePattern(const PathPattern& pattern,
                          const PropertyGraph& graph, const Record& input,
                          EvalContext& ctx, std::vector<Record>* out);

}  // namespace seraph

#endif  // SERAPH_CYPHER_MATCHER_H_
