// Pattern matching: the match(π, G, u) set of Section 3.2 (lifted to
// snapshot graphs in Section 5.3).
//
// Given the path patterns of one MATCH clause, a graph, and an input
// record u, produces every extension u · u' such that the patterns are
// satisfied under the combined assignment. Variable-length relationship
// patterns are evaluated by on-the-fly expansion of the rigid patterns
// they subsume (DFS bounded by the hop range), and Cypher's relationship
// isomorphism rule is enforced: a relationship is traversed at most once
// per match of the whole clause.
//
// shortestPath(...) / allShortestPaths(...) path patterns are evaluated by
// BFS between all candidate endpoint bindings.
//
// With a MatchParallelism spec the seed candidates of the first processed
// pattern are partitioned into fixed-size morsels fanned out on a shared
// ThreadPool; morsel outputs are concatenated in ascending seed order, so
// the result bag — content *and* order — is bit-identical to serial
// execution at any thread count (docs/INTERNALS.md, "Intra-query
// parallelism").
#ifndef SERAPH_CYPHER_MATCHER_H_
#define SERAPH_CYPHER_MATCHER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "cypher/ast.h"
#include "cypher/eval.h"
#include "graph/property_graph.h"
#include "table/record.h"

namespace seraph {

// Intra-query parallelism for pattern matching. The first seed
// enumeration of a MATCH (the label-indexed node list or full node scan
// feeding the DFS) is split into `morsel_size` chunks; each morsel runs
// the full recursive match on a pool task with its own output vector and
// its own per-branch relationship-isomorphism state. Everything the
// morsels share — graph, patterns, parameters — is read-only for the
// duration of the call.
//
// Fan-out happens only when a pool with >1 worker is supplied, the first
// pattern's seed node is not pinned by a pre-bound variable, and the
// seed domain has at least `min_seeds` candidates — small graphs stay on
// the serial path untouched.
struct MatchParallelism {
  ThreadPool* pool = nullptr;  // Not owned; null = serial.
  // Fan out only when the seed domain is at least this large; below it
  // the partitioning overhead outweighs the DFS work.
  size_t min_seeds = 2048;
  // Seed candidates per morsel.
  size_t morsel_size = 512;
  // Observability; all optional (not owned). The counter/histogram are
  // written once per fan-out from the thread driving the match — for the
  // engine that is the query's single evaluating worker, preserving the
  // registry's single-writer histogram contract.
  Counter* partitions = nullptr;        // seraph_match_partitions_total
  Histogram* seed_candidates = nullptr; // seraph_match_seed_candidates
  TraceRecorder* tracer = nullptr;      // Span per morsel batch.
  std::string query_label;              // "query" arg on spans.
};

struct MatchOptions {
  // Greedy join-order optimization across the comma-separated patterns of
  // one MATCH clause: patterns whose variables are already bound (by the
  // input record or by previously processed patterns) are matched first,
  // and otherwise the pattern with the most selective label-indexed seed
  // starts. Purely an execution-order change — the result bag is
  // identical (ablated in bench_match's BM_JoinOrder).
  bool optimize_pattern_order = true;
  // Morsel-partitioned parallel seed matching (null = serial, or inherit
  // a spec from EvalContext::match_parallelism when one is set there).
  // The spec must outlive the call.
  const MatchParallelism* parallel = nullptr;
};

// Appends to `out` every record extending `input` with bindings for the
// free variables of `patterns` matched against `graph`. `ctx` supplies
// parameters / evaluation time for property expressions inside patterns;
// its record pointer is managed internally.
Status MatchPatterns(const std::vector<PathPattern>& patterns,
                     const PropertyGraph& graph, const Record& input,
                     EvalContext& ctx, std::vector<Record>* out,
                     const MatchOptions& options = {});

// Single-pattern variant (the exists(<pattern>) predicate).
Status MatchSinglePattern(const PathPattern& pattern,
                          const PropertyGraph& graph, const Record& input,
                          EvalContext& ctx, std::vector<Record>* out);

// Delta-matching support (seraph/delta): matches one rigid pattern —
// kNormal mode, fixed length, no variable-length relationships — and
// records, for every emitted record, the concrete trail (node and
// relationship ids in pattern position order) that produced it.
// `out` and `trails` grow in lockstep: trails->at(i) is the witness of
// out->at(i). Always runs the serial DFS, so the emission order is the
// canonical content-determined order the delta index keys reproduce.
// Rejects variable-length / shortestPath patterns with kInvalidArgument.
Status MatchPatternWithTrails(const PathPattern& pattern,
                              const PropertyGraph& graph, const Record& input,
                              EvalContext& ctx, std::vector<Record>* out,
                              std::vector<PathValue>* trails);

}  // namespace seraph

#endif  // SERAPH_CYPHER_MATCHER_H_
