// Recursive-descent parser for the Cypher core grammar of Fig. 3, extended
// with the Seraph per-MATCH `WITHIN <duration>` clause of Fig. 6. The
// Seraph front-end (seraph/seraph_parser.h) composes the public building
// blocks exposed here to parse full `REGISTER QUERY` statements.
#ifndef SERAPH_CYPHER_PARSER_H_
#define SERAPH_CYPHER_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "cypher/ast.h"
#include "cypher/token.h"

namespace seraph {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  // ---- Whole-input entry points ----

  // Parses a complete query (UNION of single queries) and requires the
  // input to be fully consumed.
  Result<Query> ParseQuery();

  // Parses a single standalone expression (tests, tools).
  Result<ExprPtr> ParseStandaloneExpression();

  // ---- Building blocks (used by the Seraph front-end) ----

  // Clause chain without the final RETURN: MATCH / OPTIONAL MATCH /
  // UNWIND / WITH, in order, stopping at RETURN / EMIT / UNION / '}' / end.
  Result<std::vector<Clause>> ParseClauseChain();

  // The projection body shared by WITH / RETURN / EMIT (after its keyword).
  // `stop_keywords` lists keywords that terminate the item list in addition
  // to the structural terminators (e.g. "ON", "EVERY" for EMIT).
  Result<ProjectionBody> ParseProjectionBody(
      const std::vector<std::string>& stop_keywords = {});

  // Guarded against stack exhaustion: expression nesting beyond
  // kMaxExpressionDepth is a clean kParseError, not a crash. The bound
  // leaves generous headroom for real queries (hundreds of levels) while
  // staying stack-safe under sanitizer builds.
  static constexpr int kMaxExpressionDepth = 600;
  Result<ExprPtr> ParseExpression();

  // An ISO-8601 duration, written either as an identifier-shaped literal
  // (PT5M, P1D) or a quoted string ('PT1H30M').
  Result<Duration> ParseDurationLiteral();

  // An ISO-8601 datetime, written either as a quoted string or unquoted as
  // in the paper (2022-10-14T14:45h); the unquoted form is re-assembled
  // from the token stream.
  Result<Timestamp> ParseDateTimeLiteral();

  // ---- Token-level helpers ----

  const Token& Peek(size_t ahead = 0) const;
  bool PeekIsKeyword(std::string_view keyword, size_t ahead = 0) const;
  // Consumes the next token if it is the given keyword.
  bool ConsumeKeyword(std::string_view keyword);
  // Requires and consumes `keyword`.
  Status ExpectKeyword(std::string_view keyword);
  bool Consume(TokenKind kind);
  Status Expect(TokenKind kind);
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  // Requires full consumption of the input.
  Status ExpectEnd();

  // Parse error pointing at the current token.
  Status ErrorHere(const std::string& message) const;

 private:
  // Clauses.
  Result<SingleQuery> ParseSingleQuery();
  Result<MatchClause> ParseMatchClause(bool optional);
  Result<UnwindClause> ParseUnwindClause();
  Result<WithClause> ParseWithClause();

  // Patterns.
  Result<std::vector<PathPattern>> ParsePatternList();
  Result<PathPattern> ParsePathPattern();
  Result<NodePattern> ParseNodePattern();
  Result<RelPattern> ParseRelPattern();
  Result<std::vector<std::pair<std::string, ExprPtr>>> ParsePropertyMap();

  // Expressions (precedence climbing, loosest first).
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseXor();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAddSub();
  Result<ExprPtr> ParseMulDiv();
  Result<ExprPtr> ParsePower();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePostfix();
  Result<ExprPtr> ParseAtom();
  Result<ExprPtr> ParseCase();
  Result<ExprPtr> ParseListAtom();
  Result<ExprPtr> ParseFunctionCall(std::string name);

  // Names.
  Result<std::string> ParseIdentifier(const char* what);

  const Token& TokenAt(size_t index) const;
  void Advance() { ++pos_; }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

// Convenience: tokenizes and parses a complete Cypher query.
Result<Query> ParseCypherQuery(std::string_view text);

// Convenience: tokenizes and parses a standalone expression.
Result<ExprPtr> ParseCypherExpression(std::string_view text);

}  // namespace seraph

#endif  // SERAPH_CYPHER_PARSER_H_
