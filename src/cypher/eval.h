// Expression-evaluation context and ternary-logic helpers.
//
// Cypher expressions evaluate under three-valued logic: null propagates
// through arithmetic and comparisons, and AND/OR/NOT follow Kleene logic.
// An EvalContext supplies the current record (variable bindings), the graph
// (for property/entity access), query parameters, the evaluation time
// instant (the value of `datetime()` — in Seraph this is the ET instant
// fixed by the continuous semantics, Fig. 7), the current window bounds,
// and — during grouped projection — pre-computed aggregate results.
#ifndef SERAPH_CYPHER_EVAL_H_
#define SERAPH_CYPHER_EVAL_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "cypher/ast.h"
#include "graph/property_graph.h"
#include "table/record.h"
#include "temporal/interval.h"
#include "value/value.h"

namespace seraph {

// Intra-query parallel pattern matching spec (defined in
// cypher/matcher.h; carried here so the engine can hand it to every
// pattern-matching entry point — including exists(<pattern>) — through
// the one context object that reaches them all).
struct MatchParallelism;

class EvalContext {
 public:
  EvalContext(const PropertyGraph* graph, const Record* record)
      : graph_(graph), record_(record) {}

  const PropertyGraph* graph() const { return graph_; }
  void set_graph(const PropertyGraph* graph) { graph_ = graph; }

  const Record* record() const { return record_; }
  void set_record(const Record* record) { record_ = record; }

  void set_parameters(const std::map<std::string, Value>* params) {
    parameters_ = params;
  }
  const std::map<std::string, Value>* parameters() const {
    return parameters_;
  }

  Timestamp now() const { return now_; }
  void set_now(Timestamp now) { now_ = now; }

  // The active window at the current evaluation (Seraph only); makes the
  // reserved win_start / win_end names resolvable inside expressions.
  void set_window(std::optional<TimeInterval> window) { window_ = window; }
  const std::optional<TimeInterval>& window() const { return window_; }

  void set_aggregate_results(
      const std::unordered_map<const Expr*, Value>* results) {
    aggregate_results_ = results;
  }
  const std::unordered_map<const Expr*, Value>* aggregate_results() const {
    return aggregate_results_;
  }

  // Scoped bindings introduced by list comprehensions / quantifiers;
  // innermost binding wins over the record.
  void PushLocal(const std::string& name, Value value) {
    locals_.emplace_back(name, std::move(value));
  }
  void PopLocal() { locals_.pop_back(); }

  // Resolves `name` against locals, the record, and the reserved window
  // names. kEvaluationError when unbound.
  Result<Value> Lookup(const std::string& name) const;

  // Intra-query parallelism granted to pattern matching under this
  // context (null = serial; not owned, must outlive the context). The
  // matcher clears it on the context copies it hands to morsel workers,
  // so partitioning never nests.
  const MatchParallelism* match_parallelism() const {
    return match_parallelism_;
  }
  void set_match_parallelism(const MatchParallelism* parallelism) {
    match_parallelism_ = parallelism;
  }

  // Cooperative evaluation deadline (null = none, the default; not owned,
  // must outlive the context). Unlike match_parallelism, the token is
  // *kept* on morsel-worker context copies: all workers share one sticky
  // token, so a deadline observed by any of them aborts the whole match.
  const CancellationToken* cancellation() const { return cancellation_; }
  void set_cancellation(const CancellationToken* token) {
    cancellation_ = token;
  }
  // OK when no token is installed or the deadline holds; the hot-loop
  // check (one null test when deadlines are off).
  Status CheckCancelled() const {
    if (cancellation_ == nullptr) return Status::OK();
    return cancellation_->Check();
  }

 private:
  const PropertyGraph* graph_;
  const Record* record_;
  const std::map<std::string, Value>* parameters_ = nullptr;
  Timestamp now_;
  std::optional<TimeInterval> window_;
  const std::unordered_map<const Expr*, Value>* aggregate_results_ = nullptr;
  const MatchParallelism* match_parallelism_ = nullptr;
  const CancellationToken* cancellation_ = nullptr;
  std::vector<std::pair<std::string, Value>> locals_;
};

// ---------------------------------------------------------------------------
// Ternary logic / value operations shared by the evaluator and executor.
// ---------------------------------------------------------------------------

// Cypher equality: null if either side is null; numbers compare
// numerically; values of different (non-numeric) kinds are not equal.
Value CypherEquals(const Value& a, const Value& b);

// Ordering comparison: null when either side is null or the kinds are not
// comparable; otherwise boolean.
Value CypherCompare(CmpOp op, const Value& a, const Value& b);

// Kleene three-valued connectives.
Value TernaryAnd(const Value& a, const Value& b);
Value TernaryOr(const Value& a, const Value& b);
Value TernaryXor(const Value& a, const Value& b);
Value TernaryNot(const Value& a);

// True only when `v` is boolean true (null and non-booleans are not
// "passing" — the WHERE-filter rule).
bool IsTruthy(const Value& v);

// x IN list: ternary membership (null element comparisons propagate).
Value CypherIn(const Value& element, const Value& list);

// Arithmetic with null propagation; type errors are reported.
Result<Value> CypherArithmetic(BinaryOp op, const Value& a, const Value& b);

}  // namespace seraph

#endif  // SERAPH_CYPHER_EVAL_H_
