#include "cypher/ast.h"

namespace seraph {

namespace {

std::string PropertiesToString(
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  if (props.empty()) return "";
  std::string out = " {";
  bool first = true;
  for (const auto& [key, expr] : props) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + expr->ToString();
  }
  out += "}";
  return out;
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNeq:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSubtract:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDivide:
      return "/";
    case BinaryOp::kModulo:
      return "%";
    case BinaryOp::kPower:
      return "^";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kXor:
      return "XOR";
    case BinaryOp::kIn:
      return "IN";
    case BinaryOp::kStartsWith:
      return "STARTS WITH";
    case BinaryOp::kEndsWith:
      return "ENDS WITH";
    case BinaryOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

}  // namespace

std::string LiteralExpr::ToString() const {
  if (value_.is_string()) {
    return "'" + value_.AsString() + "'";
  }
  return value_.ToString();
}

std::string ListExpr::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += items_[i]->ToString();
  }
  return out + "]";
}

std::string MapExpr::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, expr] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += key + ": " + expr->ToString();
  }
  return out + "}";
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot:
      return "NOT (" + operand_->ToString() + ")";
    case UnaryOp::kNegate:
      return "-(" + operand_->ToString() + ")";
    case UnaryOp::kPlus:
      return "+(" + operand_->ToString() + ")";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + BinaryOpToString(op_) + " " +
         rhs_->ToString() + ")";
}

std::string ComparisonExpr::ToString() const {
  std::string out = "(" + operands_[0]->ToString();
  for (size_t i = 0; i < ops_.size(); ++i) {
    out += std::string(" ") + CmpOpToString(ops_[i]) + " " +
           operands_[i + 1]->ToString();
  }
  return out + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::string out = name_ + "(";
  if (count_star_) {
    out += "*";
  } else {
    if (distinct_) out += "DISTINCT ";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
  }
  return out + ")";
}

std::string ListComprehensionExpr::ToString() const {
  std::string out = "[" + var_ + " IN " + list_->ToString();
  if (where_) out += " WHERE " + where_->ToString();
  if (projection_) out += " | " + projection_->ToString();
  return out + "]";
}

std::string ReduceExpr::ToString() const {
  return "reduce(" + acc_var_ + " = " + init_->ToString() + ", " + var_ +
         " IN " + list_->ToString() + " | " + body_->ToString() + ")";
}

std::string QuantifierExpr::ToString() const {
  const char* name = "";
  switch (quantifier_) {
    case Quantifier::kAll:
      name = "ALL";
      break;
    case Quantifier::kAny:
      name = "ANY";
      break;
    case Quantifier::kNone:
      name = "NONE";
      break;
    case Quantifier::kSingle:
      name = "SINGLE";
      break;
  }
  return std::string(name) + "(" + var_ + " IN " + list_->ToString() +
         " WHERE " + predicate_->ToString() + ")";
}

std::string CaseExpr::ToString() const {
  std::string out = "CASE";
  if (subject_) out += " " + subject_->ToString();
  for (const auto& [when, then] : branches_) {
    out += " WHEN " + when->ToString() + " THEN " + then->ToString();
  }
  if (else_) out += " ELSE " + else_->ToString();
  return out + " END";
}

std::string NodePattern::ToString() const {
  std::string out = "(" + variable;
  for (const std::string& label : labels) out += ":" + label;
  out += PropertiesToString(properties);
  return out + ")";
}

std::string RelPattern::ToString() const {
  std::string inner = variable;
  if (!types.empty()) {
    inner += ":";
    for (size_t i = 0; i < types.size(); ++i) {
      if (i > 0) inner += "|";
      inner += types[i];
    }
  }
  if (variable_length) {
    inner += "*";
    if (min_hops.has_value()) inner += std::to_string(*min_hops);
    inner += "..";
    if (max_hops.has_value()) inner += std::to_string(*max_hops);
  }
  inner += PropertiesToString(properties);
  std::string body = inner.empty() ? "-" : "-[" + inner + "]-";
  switch (direction) {
    case RelDirection::kOutgoing:
      return body + ">";
    case RelDirection::kIncoming:
      return "<" + body;
    case RelDirection::kUndirected:
      return body;
  }
  return body;
}

std::string PathPattern::ToString() const {
  std::string out;
  if (!path_variable.empty()) out += path_variable + " = ";
  if (mode == PathMode::kShortest) out += "shortestPath(";
  if (mode == PathMode::kAllShortest) out += "allShortestPaths(";
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += nodes[i].ToString();
    if (i < rels.size()) out += rels[i].ToString();
  }
  if (mode != PathMode::kNormal) out += ")";
  return out;
}

}  // namespace seraph
