// Lexical tokens for the Cypher / Seraph grammar (Figs. 3 and 6).
//
// Keywords are not distinguished lexically: Cypher keywords are
// case-insensitive and may be used as identifiers in some positions, so the
// lexer emits kIdentifier and the parser matches keywords by
// case-insensitive text.
#ifndef SERAPH_CYPHER_TOKEN_H_
#define SERAPH_CYPHER_TOKEN_H_

#include <cstdint>
#include <string>

namespace seraph {

enum class TokenKind {
  kEnd,         // End of input.
  kIdentifier,  // Names and keywords (case preserved).
  kInteger,     // 123
  kFloat,       // 1.5, .5, 1e3
  kString,      // 'abc' or "abc" (value unescaped)
  kParameter,   // $name
  // Punctuation / operators.
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kColon,       // :
  kSemicolon,   // ;
  kDot,         // .
  kDotDot,      // ..
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kCaret,       // ^
  kEq,          // =
  kNeq,         // <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPipe,        // |
};

// Returns a printable token-kind name for diagnostics.
const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  // Identifier text, keyword text (case preserved), string value
  // (unescaped), or numeric spelling.
  std::string text;
  int64_t int_value = 0;     // Valid when kind == kInteger.
  double float_value = 0.0;  // Valid when kind == kFloat.
  // 1-based source position for error messages.
  int line = 1;
  int column = 1;
};

}  // namespace seraph

#endif  // SERAPH_CYPHER_TOKEN_H_
