// Abstract syntax for the supported Cypher core (Fig. 3) plus the Seraph
// per-MATCH `WITHIN` width (Fig. 6).
//
// Expressions are a small class hierarchy; each node knows how to evaluate
// itself against an EvalContext (see eval.h) and how to print itself back
// to (approximately) source form. Clause structures are plain data consumed
// by the executor.
#ifndef SERAPH_CYPHER_AST_H_
#define SERAPH_CYPHER_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "temporal/duration.h"
#include "value/value.h"

namespace seraph {

class EvalContext;
class Expr;

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

class Expr {
 public:
  virtual ~Expr() = default;

  // Evaluates under `ctx` with Cypher's ternary-logic semantics: missing
  // bindings/properties yield null; type errors yield kEvaluationError.
  virtual Result<Value> Eval(EvalContext& ctx) const = 0;

  // Approximate source rendering, for diagnostics and tests.
  virtual std::string ToString() const = 0;

  // Invokes `fn` on each direct child expression.
  virtual void VisitChildren(
      const std::function<void(const Expr&)>& fn) const {
    (void)fn;
  }

  // True for calls to aggregating functions (count, sum, collect, ...).
  virtual bool IsAggregateCall() const { return false; }

  // True for nodes whose value depends on the evaluation instant rather
  // than only on the data: zero-argument datetime(), timestamp(), and the
  // reserved win_start / win_end names. Used to decide whether results
  // may be reused across evaluations with identical window contents.
  virtual bool IsVolatile() const { return false; }

  // Appends every aggregate call in this subtree (including this node).
  void CollectAggregates(std::vector<const Expr*>* out) const;

  // True iff the subtree contains an aggregate call.
  bool ContainsAggregate() const;

  // True iff the subtree contains a volatile node (see IsVolatile).
  bool ContainsVolatile() const;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class ParameterExpr final : public Expr {
 public:
  explicit ParameterExpr(std::string name) : name_(std::move(name)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override { return "$" + name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class VariableExpr final : public Expr {
 public:
  explicit VariableExpr(std::string name) : name_(std::move(name)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override { return name_; }
  bool IsVolatile() const override {
    // The reserved window-bound names change every evaluation even when
    // the window contents do not.
    return name_ == "win_start" || name_ == "win_end";
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

// object.key — property access on nodes, relationships, and maps.
class PropertyExpr final : public Expr {
 public:
  PropertyExpr(ExprPtr object, std::string key)
      : object_(std::move(object)), key_(std::move(key)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override {
    return object_->ToString() + "." + key_;
  }
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*object_);
  }
  const Expr& object() const { return *object_; }
  const std::string& key() const { return key_; }

 private:
  ExprPtr object_;
  std::string key_;
};

// object[index] — list indexing (negative counts from the end) and map
// key lookup.
class IndexExpr final : public Expr {
 public:
  IndexExpr(ExprPtr object, ExprPtr index)
      : object_(std::move(object)), index_(std::move(index)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override {
    return object_->ToString() + "[" + index_->ToString() + "]";
  }
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*object_);
    fn(*index_);
  }

 private:
  ExprPtr object_;
  ExprPtr index_;
};

class ListExpr final : public Expr {
 public:
  explicit ListExpr(std::vector<ExprPtr> items) : items_(std::move(items)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    for (const ExprPtr& e : items_) fn(*e);
  }

 private:
  std::vector<ExprPtr> items_;
};

class MapExpr final : public Expr {
 public:
  explicit MapExpr(std::vector<std::pair<std::string, ExprPtr>> entries)
      : entries_(std::move(entries)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    for (const auto& [key, e] : entries_) fn(*e);
  }

 private:
  std::vector<std::pair<std::string, ExprPtr>> entries_;
};

enum class UnaryOp { kNot, kNegate, kPlus };

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*operand_);
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kPower,
  kAnd,
  kOr,
  kXor,
  kIn,          // x IN list
  kStartsWith,  // string STARTS WITH prefix
  kEndsWith,
  kContains,
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*lhs_);
    fn(*rhs_);
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

enum class CmpOp { kEq, kNeq, kLt, kLe, kGt, kGe };

// A comparison chain `e1 op1 e2 op2 e3 ...` (e.g. the paper's
// `win_start <= e.val_time <= win_end`), evaluated as the ternary
// conjunction of the pairwise comparisons.
class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(std::vector<ExprPtr> operands, std::vector<CmpOp> ops)
      : operands_(std::move(operands)), ops_(std::move(ops)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    for (const ExprPtr& e : operands_) fn(*e);
  }

 private:
  std::vector<ExprPtr> operands_;
  std::vector<CmpOp> ops_;
};

// `x IS NULL` / `x IS NOT NULL` — always boolean, never null.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override {
    return operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*operand_);
  }

 private:
  ExprPtr operand_;
  bool negated_;
};

// Function invocation — scalar built-ins (labels, nodes, size, ...) or
// aggregates (count, sum, avg, collect, stDev, ...). `count(*)` is
// represented with `count_star = true` and no arguments.
class FunctionCallExpr final : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args, bool distinct,
                   bool count_star);
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    for (const ExprPtr& e : args_) fn(*e);
  }
  bool IsAggregateCall() const override { return is_aggregate_; }
  bool IsVolatile() const override {
    return (name_ == "datetime" && args_.empty()) || name_ == "timestamp";
  }

  // Lower-cased canonical function name.
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  bool distinct() const { return distinct_; }
  bool count_star() const { return count_star_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  bool distinct_;
  bool count_star_;
  bool is_aggregate_;
};

// [x IN list WHERE pred | projection]
class ListComprehensionExpr final : public Expr {
 public:
  ListComprehensionExpr(std::string var, ExprPtr list, ExprPtr where,
                        ExprPtr projection)
      : var_(std::move(var)),
        list_(std::move(list)),
        where_(std::move(where)),
        projection_(std::move(projection)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*list_);
    if (where_) fn(*where_);
    if (projection_) fn(*projection_);
  }

 private:
  std::string var_;
  ExprPtr list_;
  ExprPtr where_;       // May be null.
  ExprPtr projection_;  // May be null (identity).
};

// reduce(acc = init, x IN list | body) — left fold over a list.
class ReduceExpr final : public Expr {
 public:
  ReduceExpr(std::string acc_var, ExprPtr init, std::string var, ExprPtr list,
             ExprPtr body)
      : acc_var_(std::move(acc_var)),
        init_(std::move(init)),
        var_(std::move(var)),
        list_(std::move(list)),
        body_(std::move(body)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*init_);
    fn(*list_);
    fn(*body_);
  }

 private:
  std::string acc_var_;
  ExprPtr init_;
  std::string var_;
  ExprPtr list_;
  ExprPtr body_;
};

enum class Quantifier { kAll, kAny, kNone, kSingle };

// ALL/ANY/NONE/SINGLE(x IN list WHERE pred), with Cypher's ternary result.
class QuantifierExpr final : public Expr {
 public:
  QuantifierExpr(Quantifier quantifier, std::string var, ExprPtr list,
                 ExprPtr predicate)
      : quantifier_(quantifier),
        var_(std::move(var)),
        list_(std::move(list)),
        predicate_(std::move(predicate)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    fn(*list_);
    fn(*predicate_);
  }

 private:
  Quantifier quantifier_;
  std::string var_;
  ExprPtr list_;
  ExprPtr predicate_;
};

// CASE [subject] WHEN c THEN v ... [ELSE e] END.
class CaseExpr final : public Expr {
 public:
  CaseExpr(ExprPtr subject, std::vector<std::pair<ExprPtr, ExprPtr>> branches,
           ExprPtr else_value)
      : subject_(std::move(subject)),
        branches_(std::move(branches)),
        else_(std::move(else_value)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override;
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    if (subject_) fn(*subject_);
    for (const auto& [cond, val] : branches_) {
      fn(*cond);
      fn(*val);
    }
    if (else_) fn(*else_);
  }

 private:
  ExprPtr subject_;  // Null for the searched (generic) form.
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr else_;  // May be null (defaults to NULL).
};

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

// (v:Label1:Label2 {key: expr, ...})
struct NodePattern {
  std::string variable;  // Empty when anonymous.
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, ExprPtr>> properties;

  std::string ToString() const;
};

enum class RelDirection {
  kOutgoing,    // (a)-[r]->(b)
  kIncoming,    // (a)<-[r]-(b)
  kUndirected,  // (a)-[r]-(b)
};

// -[v:TYPE1|TYPE2 *min..max {key: expr}]->
struct RelPattern {
  std::string variable;  // Empty when anonymous.
  std::vector<std::string> types;
  RelDirection direction = RelDirection::kOutgoing;
  bool variable_length = false;
  std::optional<int64_t> min_hops;  // Defaults to 1 when variable-length.
  std::optional<int64_t> max_hops;  // Unbounded when absent.
  std::vector<std::pair<std::string, ExprPtr>> properties;

  std::string ToString() const;
};

enum class PathMode { kNormal, kShortest, kAllShortest };

// A linear path pattern: n0 r0 n1 r1 ... nk, optionally named and
// optionally wrapped in shortestPath()/allShortestPaths().
struct PathPattern {
  std::string path_variable;  // Empty when unnamed.
  PathMode mode = PathMode::kNormal;
  std::vector<NodePattern> nodes;  // size == rels.size() + 1
  std::vector<RelPattern> rels;

  std::string ToString() const;
};

// exists((a)-[:R]->(b)) — pattern-existence predicate: true iff the
// pattern has at least one match in the current graph under the current
// bindings. (Declared after the pattern types it references.)
class ExistsPatternExpr final : public Expr {
 public:
  explicit ExistsPatternExpr(PathPattern pattern)
      : pattern_(std::move(pattern)) {}
  Result<Value> Eval(EvalContext& ctx) const override;
  std::string ToString() const override {
    return "exists(" + pattern_.ToString() + ")";
  }
  void VisitChildren(
      const std::function<void(const Expr&)>& fn) const override {
    for (const NodePattern& np : pattern_.nodes) {
      for (const auto& [key, expr] : np.properties) fn(*expr);
    }
    for (const RelPattern& rp : pattern_.rels) {
      for (const auto& [key, expr] : rp.properties) fn(*expr);
    }
  }

 private:
  PathPattern pattern_;
};

// ---------------------------------------------------------------------------
// Clauses and queries
// ---------------------------------------------------------------------------

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct ProjectionItem {
  ExprPtr expr;
  std::string alias;  // Output field name (defaulted by the parser).
};

// The shared body of WITH / RETURN / EMIT.
struct ProjectionBody {
  bool distinct = false;
  bool include_all = false;  // '*'
  std::vector<ProjectionItem> items;
  std::vector<OrderByItem> order_by;
  ExprPtr skip;   // May be null.
  ExprPtr limit;  // May be null.
};

// MATCH <patterns> [WITHIN <duration> [FROM <stream>]] [WHERE <expr>]
// `within` is the Seraph extension (Fig. 6); absent for plain Cypher.
// `from_stream` names the input stream this clause's window ranges over
// (our multi-stream extension, §8 future work (i)); empty selects the
// engine's default stream.
struct MatchClause {
  bool optional = false;
  std::vector<PathPattern> patterns;
  ExprPtr where;  // May be null.
  std::optional<Duration> within;
  std::string from_stream;
};

// UNWIND <expr> AS <alias>
struct UnwindClause {
  ExprPtr list;
  std::string alias;
};

// WITH <projection> [WHERE <expr>]
struct WithClause {
  ProjectionBody body;
  ExprPtr where;  // May be null.
};

using Clause = std::variant<MatchClause, UnwindClause, WithClause>;

// RETURN <projection> — also used for Seraph's EMIT projection.
struct ReturnClause {
  ProjectionBody body;
};

// A linear clause chain ending in RETURN.
struct SingleQuery {
  std::vector<Clause> clauses;
  ReturnClause ret;
};

// query UNION [ALL] query ... (Fig. 3).
struct Query {
  std::vector<SingleQuery> parts;
  // union_all[i] applies between parts[i] and parts[i+1].
  std::vector<bool> union_all;
};

}  // namespace seraph

#endif  // SERAPH_CYPHER_AST_H_
