#include "cypher/executor.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "cypher/eval.h"
#include "cypher/functions.h"
#include "cypher/matcher.h"

namespace seraph {

namespace {

// Free variables a pattern list introduces (node, relationship, and path
// variables).
std::set<std::string> PatternVariables(
    const std::vector<PathPattern>& patterns) {
  std::set<std::string> vars;
  for (const PathPattern& path : patterns) {
    if (!path.path_variable.empty()) vars.insert(path.path_variable);
    for (const NodePattern& np : path.nodes) {
      if (!np.variable.empty()) vars.insert(np.variable);
    }
    for (const RelPattern& rp : path.rels) {
      if (!rp.variable.empty()) vars.insert(rp.variable);
    }
  }
  return vars;
}

// Lexicographic ordering for grouping keys.
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

class Executor {
 public:
  Executor(const GraphResolver& resolver, const ExecutionOptions& options)
      : resolver_(resolver),
        options_(options),
        ctx_(&resolver.BaseGraph(), nullptr) {
    ctx_.set_parameters(&options_.parameters);
    ctx_.set_now(options_.now);
    ctx_.set_window(options_.window);
    ctx_.set_match_parallelism(options_.match_parallelism);
    ctx_.set_cancellation(options_.cancellation);
  }

  Result<Table> Run(const SingleQuery& query, const Table& input) {
    Table table = input;
    for (size_t i = 0; i < query.clauses.size(); ++i) {
      const Clause& clause = query.clauses[i];
      if (const auto* match = std::get_if<MatchClause>(&clause)) {
        SERAPH_ASSIGN_OR_RETURN(table, ApplyMatch(*match, i, table));
      } else if (const auto* unwind = std::get_if<UnwindClause>(&clause)) {
        SERAPH_ASSIGN_OR_RETURN(table, ApplyUnwind(*unwind, table));
      } else if (const auto* with = std::get_if<WithClause>(&clause)) {
        SERAPH_ASSIGN_OR_RETURN(table,
                                ApplyProjection(with->body, table));
        if (with->where != nullptr) {
          SERAPH_ASSIGN_OR_RETURN(table, ApplyWhere(*with->where, table));
        }
      }
    }
    return ApplyProjection(query.ret.body, table);
  }

 private:
  // ---- MATCH ----

  Result<Table> ApplyMatch(const MatchClause& match, size_t clause_index,
                           const Table& input) {
    const PropertyGraph& graph = resolver_.GraphFor(match, clause_index);
    std::set<std::string> fields = input.fields();
    std::set<std::string> new_vars = PatternVariables(match.patterns);
    for (const std::string& v : new_vars) fields.insert(v);
    Table out(fields);
    MatchOptions match_options;
    match_options.optimize_pattern_order = options_.optimize_match_order;
    for (const Record& row : input.rows()) {
      std::vector<Record> matches;
      SERAPH_RETURN_IF_ERROR(MatchPatterns(match.patterns, graph, row, ctx_,
                                           &matches, match_options));
      size_t emitted = 0;
      for (Record& m : matches) {
        if (match.where != nullptr) {
          // The WHERE attached to MATCH filters each candidate match (and,
          // for OPTIONAL MATCH, participates in the "no match" decision).
          ctx_.set_record(&m);
          SERAPH_ASSIGN_OR_RETURN(Value cond, match.where->Eval(ctx_));
          if (!IsTruthy(cond)) continue;
        }
        // Ensure every pattern variable is present (anonymous paths keep
        // records uniform).
        for (const std::string& v : new_vars) {
          if (!m.Has(v)) m.Set(v, Value::Null());
        }
        out.AppendUnchecked(std::move(m));
        ++emitted;
      }
      if (emitted == 0 && match.optional) {
        Record padded = row;
        for (const std::string& v : new_vars) {
          if (!padded.Has(v)) padded.Set(v, Value::Null());
        }
        out.AppendUnchecked(std::move(padded));
      }
    }
    return out;
  }

  // ---- UNWIND ----

  Result<Table> ApplyUnwind(const UnwindClause& unwind, const Table& input) {
    std::set<std::string> fields = input.fields();
    fields.insert(unwind.alias);
    Table out(fields);
    for (const Record& row : input.rows()) {
      ctx_.set_record(&row);
      SERAPH_ASSIGN_OR_RETURN(Value list, unwind.list->Eval(ctx_));
      if (list.is_null()) continue;
      if (!list.is_list()) {
        // UNWIND of a non-list value produces that single value.
        Record extended = row;
        extended.Set(unwind.alias, std::move(list));
        out.AppendUnchecked(std::move(extended));
        continue;
      }
      for (const Value& item : list.AsList()) {
        Record extended = row;
        extended.Set(unwind.alias, item);
        out.AppendUnchecked(std::move(extended));
      }
    }
    return out;
  }

  // ---- WHERE ----

  Result<Table> ApplyWhere(const Expr& predicate, const Table& input) {
    Table out(input.fields());
    for (const Record& row : input.rows()) {
      ctx_.set_record(&row);
      SERAPH_ASSIGN_OR_RETURN(Value cond, predicate.Eval(ctx_));
      if (IsTruthy(cond)) out.AppendUnchecked(row);
    }
    return out;
  }

  // ---- WITH / RETURN projection ----

  Result<Table> ApplyProjection(const ProjectionBody& body,
                                const Table& input) {
    // Materialize the item list ('*' expands to every current field).
    std::vector<const ProjectionItem*> items;
    std::vector<ProjectionItem> star_items;
    if (body.include_all) {
      for (const std::string& field : input.fields()) {
        ProjectionItem item;
        item.expr = std::make_unique<VariableExpr>(field);
        item.alias = field;
        star_items.push_back(std::move(item));
      }
    }
    for (const ProjectionItem& item : star_items) items.push_back(&item);
    for (const ProjectionItem& item : body.items) items.push_back(&item);

    bool has_aggregates = false;
    for (const ProjectionItem* item : items) {
      if (item->expr->ContainsAggregate()) has_aggregates = true;
    }

    std::set<std::string> fields;
    for (const ProjectionItem* item : items) fields.insert(item->alias);
    Table out(fields);

    // For ORDER BY, Cypher lets sort keys reference pre-projection
    // variables (unless eliminated by DISTINCT or aggregation); we keep
    // the source record of each output row as sort context.
    std::vector<Record> order_context;
    if (!has_aggregates) {
      for (const Record& row : input.rows()) {
        ctx_.set_record(&row);
        Record projected;
        for (const ProjectionItem* item : items) {
          SERAPH_ASSIGN_OR_RETURN(Value v, item->expr->Eval(ctx_));
          projected.Set(item->alias, std::move(v));
        }
        out.AppendUnchecked(std::move(projected));
        order_context.push_back(row);
      }
    } else {
      SERAPH_ASSIGN_OR_RETURN(
          out, ApplyGroupedProjection(items, input, out, &order_context));
    }

    if (body.distinct) {
      out = out.Distinct();
      order_context.clear();  // No per-row source after dedup.
    }
    SERAPH_RETURN_IF_ERROR(ApplyOrderSkipLimit(body, &out, order_context));
    return out;
  }

  Result<Table> ApplyGroupedProjection(
      const std::vector<const ProjectionItem*>& items, const Table& input,
      Table out, std::vector<Record>* order_context) {
    // Split items into grouping keys (no aggregate inside) and aggregated
    // items; collect every aggregate call.
    std::vector<const ProjectionItem*> key_items;
    std::vector<const Expr*> aggregates;
    for (const ProjectionItem* item : items) {
      if (item->expr->ContainsAggregate()) {
        item->expr->CollectAggregates(&aggregates);
      } else {
        key_items.push_back(item);
      }
    }

    struct Group {
      Record representative;
      // Per aggregate call (parallel to `aggregates`): evaluated inputs.
      std::vector<std::vector<Value>> inputs;
      std::vector<std::optional<Value>> params;
      std::vector<int64_t> row_count;  // For count(*).
    };
    std::map<std::vector<Value>, Group, ValueVectorLess> groups;
    std::vector<const std::vector<Value>*> group_order;

    for (const Record& row : input.rows()) {
      ctx_.set_record(&row);
      std::vector<Value> key;
      key.reserve(key_items.size());
      for (const ProjectionItem* item : key_items) {
        SERAPH_ASSIGN_OR_RETURN(Value v, item->expr->Eval(ctx_));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      Group& group = it->second;
      if (inserted) {
        group.representative = row;
        group.inputs.resize(aggregates.size());
        group.params.resize(aggregates.size());
        group.row_count.assign(aggregates.size(), 0);
        group_order.push_back(&it->first);
      }
      for (size_t a = 0; a < aggregates.size(); ++a) {
        const auto* call = static_cast<const FunctionCallExpr*>(aggregates[a]);
        ++group.row_count[a];
        if (call->count_star()) continue;
        if (call->args().empty()) {
          return Status::SemanticError("aggregate '" + call->name() +
                                       "' requires an argument");
        }
        SERAPH_ASSIGN_OR_RETURN(Value v, call->args()[0]->Eval(ctx_));
        group.inputs[a].push_back(std::move(v));
        if (call->args().size() > 1 && !group.params[a].has_value()) {
          SERAPH_ASSIGN_OR_RETURN(Value p, call->args()[1]->Eval(ctx_));
          group.params[a] = std::move(p);
        }
      }
    }

    // An aggregation with no grouping keys over an empty input still
    // produces one row (count(*) = 0 etc.).
    if (groups.empty() && key_items.empty()) {
      auto [it, inserted] = groups.try_emplace(std::vector<Value>{});
      Group& group = it->second;
      group.inputs.resize(aggregates.size());
      group.params.resize(aggregates.size());
      group.row_count.assign(aggregates.size(), 0);
      group_order.push_back(&it->first);
    }

    for (const std::vector<Value>* key : group_order) {
      Group& group = groups.at(*key);
      std::unordered_map<const Expr*, Value> results;
      for (size_t a = 0; a < aggregates.size(); ++a) {
        const auto* call = static_cast<const FunctionCallExpr*>(aggregates[a]);
        if (call->count_star()) {
          results[aggregates[a]] = Value::Int(group.row_count[a]);
          continue;
        }
        SERAPH_ASSIGN_OR_RETURN(
            Value v, ComputeAggregate(call->name(), call->distinct(),
                                      group.inputs[a], group.params[a]));
        results[aggregates[a]] = std::move(v);
      }
      ctx_.set_record(&group.representative);
      ctx_.set_aggregate_results(&results);
      Record projected;
      for (const ProjectionItem* item : items) {
        SERAPH_ASSIGN_OR_RETURN(Value v, item->expr->Eval(ctx_));
        projected.Set(item->alias, std::move(v));
      }
      ctx_.set_aggregate_results(nullptr);
      out.AppendUnchecked(std::move(projected));
      order_context->push_back(group.representative);
    }
    return out;
  }

  Status ApplyOrderSkipLimit(const ProjectionBody& body, Table* table,
                             const std::vector<Record>& order_context) {
    if (!body.order_by.empty()) {
      // Evaluate sort keys once per row against the projected record
      // extended with its source record (projected aliases shadow source
      // variables), so keys may reference pre-projection variables.
      struct Keyed {
        std::vector<Value> keys;
        Record row;
      };
      bool has_context = order_context.size() == table->size();
      std::vector<Keyed> keyed;
      keyed.reserve(table->size());
      for (size_t i = 0; i < table->rows().size(); ++i) {
        const Record& row = table->rows()[i];
        Record merged =
            has_context ? order_context[i].Extended(row) : row;
        ctx_.set_record(&merged);
        Keyed k;
        k.row = row;
        for (const OrderByItem& item : body.order_by) {
          SERAPH_ASSIGN_OR_RETURN(Value v, item.expr->Eval(ctx_));
          k.keys.push_back(std::move(v));
        }
        keyed.push_back(std::move(k));
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [&body](const Keyed& a, const Keyed& b) {
                         for (size_t i = 0; i < body.order_by.size(); ++i) {
                           int c = Value::Compare(a.keys[i], b.keys[i]);
                           if (c != 0) {
                             return body.order_by[i].ascending ? c < 0 : c > 0;
                           }
                         }
                         return false;
                       });
      Table sorted(table->fields());
      for (Keyed& k : keyed) sorted.AppendUnchecked(std::move(k.row));
      *table = std::move(sorted);
    }
    int64_t skip = 0;
    int64_t limit = -1;
    if (body.skip != nullptr) {
      ctx_.set_record(nullptr);
      SERAPH_ASSIGN_OR_RETURN(Value v, body.skip->Eval(ctx_));
      if (!v.is_int() || v.AsInt() < 0) {
        return Status::EvaluationError("SKIP requires a non-negative integer");
      }
      skip = v.AsInt();
    }
    if (body.limit != nullptr) {
      ctx_.set_record(nullptr);
      SERAPH_ASSIGN_OR_RETURN(Value v, body.limit->Eval(ctx_));
      if (!v.is_int() || v.AsInt() < 0) {
        return Status::EvaluationError(
            "LIMIT requires a non-negative integer");
      }
      limit = v.AsInt();
    }
    if (skip > 0 || limit >= 0) {
      Table sliced(table->fields());
      int64_t index = 0;
      for (const Record& row : table->rows()) {
        if (index++ < skip) continue;
        if (limit >= 0 &&
            static_cast<int64_t>(sliced.size()) >= limit) {
          break;
        }
        sliced.AppendUnchecked(row);
      }
      *table = std::move(sliced);
    }
    return Status::OK();
  }

  const GraphResolver& resolver_;
  ExecutionOptions options_;
  EvalContext ctx_;
};

}  // namespace

Result<Table> ExecuteSingleQuery(const SingleQuery& query,
                                 const GraphResolver& resolver,
                                 const Table& input,
                                 const ExecutionOptions& options) {
  Executor executor(resolver, options);
  return executor.Run(query, input);
}

Result<Table> ExecuteQuery(const Query& query, const GraphResolver& resolver,
                           const ExecutionOptions& options) {
  if (query.parts.empty()) {
    return Status::SemanticError("empty query");
  }
  SERAPH_ASSIGN_OR_RETURN(
      Table acc, ExecuteSingleQuery(query.parts[0], resolver, Table::Unit(),
                                    options));
  bool any_distinct_union = false;
  for (size_t i = 1; i < query.parts.size(); ++i) {
    SERAPH_ASSIGN_OR_RETURN(
        Table next, ExecuteSingleQuery(query.parts[i], resolver, Table::Unit(),
                                       options));
    if (acc.fields() != next.fields()) {
      return Status::SemanticError(
          "UNION parts must return the same column names");
    }
    if (!query.union_all[i - 1]) any_distinct_union = true;
    acc = Table::BagUnion(acc, next);
  }
  if (any_distinct_union) acc = acc.Distinct();
  return acc;
}

Result<Table> ExecuteQueryOnGraph(const Query& query,
                                  const PropertyGraph& graph,
                                  const ExecutionOptions& options) {
  SingleGraphResolver resolver(graph);
  return ExecuteQuery(query, resolver, options);
}

}  // namespace seraph
