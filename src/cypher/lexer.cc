#include "cypher/lexer.h"

#include <cctype>
#include <cstdlib>

namespace seraph {

namespace {

// Cursor over the input with line/column tracking.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

Status LexError(const Cursor& cur, const std::string& what) {
  return Status::ParseError(what + " at line " + std::to_string(cur.line()) +
                            ", column " + std::to_string(cur.column()));
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  Cursor cur(text);
  auto push = [&tokens, &cur](TokenKind kind, std::string tok_text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.line = cur.line();
    t.column = cur.column();
    tokens.push_back(std::move(t));
  };

  while (!cur.AtEnd()) {
    char c = cur.Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.Advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.Peek(1) == '/') {
      while (!cur.AtEnd() && cur.Peek() != '\n') cur.Advance();
      continue;
    }
    if (c == '/' && cur.Peek(1) == '*') {
      cur.Advance();
      cur.Advance();
      while (!cur.AtEnd() && !(cur.Peek() == '*' && cur.Peek(1) == '/')) {
        cur.Advance();
      }
      if (cur.AtEnd()) return LexError(cur, "unterminated block comment");
      cur.Advance();
      cur.Advance();
      continue;
    }
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      int line = cur.line(), col = cur.column();
      std::string ident;
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) ident += cur.Advance();
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::move(ident);
      t.line = line;
      t.column = col;
      tokens.push_back(std::move(t));
      continue;
    }
    // Backquoted identifiers (`E-Bike`).
    if (c == '`') {
      int line = cur.line(), col = cur.column();
      cur.Advance();
      std::string ident;
      while (!cur.AtEnd() && cur.Peek() != '`') ident += cur.Advance();
      if (cur.AtEnd()) return LexError(cur, "unterminated backquoted name");
      cur.Advance();
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::move(ident);
      t.line = line;
      t.column = col;
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers: 123, 1.5, .5, 1e3. A lone '.' not followed by a digit is
    // punctuation; ".." is a range.
    if (IsDigit(c) || (c == '.' && IsDigit(cur.Peek(1)))) {
      int line = cur.line(), col = cur.column();
      std::string num;
      bool is_float = false;
      while (!cur.AtEnd() && IsDigit(cur.Peek())) num += cur.Advance();
      if (cur.Peek() == '.' && IsDigit(cur.Peek(1))) {
        is_float = true;
        num += cur.Advance();
        while (!cur.AtEnd() && IsDigit(cur.Peek())) num += cur.Advance();
      }
      if (cur.Peek() == 'e' || cur.Peek() == 'E') {
        char sign = cur.Peek(1);
        if (IsDigit(sign) ||
            ((sign == '+' || sign == '-') && IsDigit(cur.Peek(2)))) {
          is_float = true;
          num += cur.Advance();
          if (cur.Peek() == '+' || cur.Peek() == '-') num += cur.Advance();
          while (!cur.AtEnd() && IsDigit(cur.Peek())) num += cur.Advance();
        }
      }
      Token t;
      t.line = line;
      t.column = col;
      t.text = num;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '\'' || c == '"') {
      int line = cur.line(), col = cur.column();
      char quote = cur.Advance();
      std::string value;
      while (!cur.AtEnd() && cur.Peek() != quote) {
        char ch = cur.Advance();
        if (ch == '\\' && !cur.AtEnd()) {
          char esc = cur.Advance();
          switch (esc) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            case 'r':
              value += '\r';
              break;
            case '\\':
            case '\'':
            case '"':
              value += esc;
              break;
            default:
              value += esc;
          }
        } else {
          value += ch;
        }
      }
      if (cur.AtEnd()) return LexError(cur, "unterminated string literal");
      cur.Advance();
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      t.line = line;
      t.column = col;
      tokens.push_back(std::move(t));
      continue;
    }
    // Parameters.
    if (c == '$') {
      int line = cur.line(), col = cur.column();
      cur.Advance();
      if (!IsIdentStart(cur.Peek())) {
        return LexError(cur, "expected parameter name after '$'");
      }
      std::string name;
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) name += cur.Advance();
      Token t;
      t.kind = TokenKind::kParameter;
      t.text = std::move(name);
      t.line = line;
      t.column = col;
      tokens.push_back(std::move(t));
      continue;
    }
    // Punctuation and operators (longest match first).
    switch (c) {
      case '(':
        cur.Advance();
        push(TokenKind::kLParen, "(");
        continue;
      case ')':
        cur.Advance();
        push(TokenKind::kRParen, ")");
        continue;
      case '[':
        cur.Advance();
        push(TokenKind::kLBracket, "[");
        continue;
      case ']':
        cur.Advance();
        push(TokenKind::kRBracket, "]");
        continue;
      case '{':
        cur.Advance();
        push(TokenKind::kLBrace, "{");
        continue;
      case '}':
        cur.Advance();
        push(TokenKind::kRBrace, "}");
        continue;
      case ',':
        cur.Advance();
        push(TokenKind::kComma, ",");
        continue;
      case ':':
        cur.Advance();
        push(TokenKind::kColon, ":");
        continue;
      case ';':
        cur.Advance();
        push(TokenKind::kSemicolon, ";");
        continue;
      case '.':
        cur.Advance();
        if (cur.Peek() == '.') {
          cur.Advance();
          push(TokenKind::kDotDot, "..");
        } else {
          push(TokenKind::kDot, ".");
        }
        continue;
      case '+':
        cur.Advance();
        push(TokenKind::kPlus, "+");
        continue;
      case '-':
        cur.Advance();
        push(TokenKind::kMinus, "-");
        continue;
      case '*':
        cur.Advance();
        push(TokenKind::kStar, "*");
        continue;
      case '/':
        cur.Advance();
        push(TokenKind::kSlash, "/");
        continue;
      case '%':
        cur.Advance();
        push(TokenKind::kPercent, "%");
        continue;
      case '^':
        cur.Advance();
        push(TokenKind::kCaret, "^");
        continue;
      case '=':
        cur.Advance();
        push(TokenKind::kEq, "=");
        continue;
      case '<':
        cur.Advance();
        if (cur.Peek() == '=') {
          cur.Advance();
          push(TokenKind::kLe, "<=");
        } else if (cur.Peek() == '>') {
          cur.Advance();
          push(TokenKind::kNeq, "<>");
        } else {
          push(TokenKind::kLt, "<");
        }
        continue;
      case '>':
        cur.Advance();
        if (cur.Peek() == '=') {
          cur.Advance();
          push(TokenKind::kGe, ">=");
        } else {
          push(TokenKind::kGt, ">");
        }
        continue;
      case '|':
        cur.Advance();
        push(TokenKind::kPipe, "|");
        continue;
      default:
        return LexError(cur, std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer literal";
    case TokenKind::kFloat:
      return "float literal";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kParameter:
      return "parameter";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPipe:
      return "'|'";
  }
  return "unknown";
}

}  // namespace seraph
