// Hand-written tokenizer for Cypher / Seraph query text.
#ifndef SERAPH_CYPHER_LEXER_H_
#define SERAPH_CYPHER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "cypher/token.h"

namespace seraph {

// Tokenizes `text`, appending a trailing kEnd token. Supports `//` line
// comments and `/* */` block comments, decimal integer/float literals,
// single- or double-quoted strings with backslash escapes, backquoted
// identifiers, and `$param` markers.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace seraph

#endif  // SERAPH_CYPHER_LEXER_H_
