#include "cypher/matcher.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace seraph {

namespace {

// Default expansion cap for unbounded variable-length patterns: the
// relationship-uniqueness rule already bounds expansion by |R|, so this is
// a pure safety net against pathological graphs.
constexpr int64_t kUnboundedHops = 1'000'000;

// Variables a single path pattern mentions (node, rel, and path vars).
std::set<std::string> PathPatternVariables(const PathPattern& path) {
  std::set<std::string> vars;
  if (!path.path_variable.empty()) vars.insert(path.path_variable);
  for (const NodePattern& np : path.nodes) {
    if (!np.variable.empty()) vars.insert(np.variable);
  }
  for (const RelPattern& rp : path.rels) {
    if (!rp.variable.empty()) vars.insert(rp.variable);
  }
  return vars;
}

// The label of `np` with the smallest index entry, or nullptr when the
// pattern carries no labels. Seeding from the most selective label is a
// pure execution-order optimization: NodeSatisfies re-checks every label,
// and each label index iterates in ascending node-id order, so the result
// bag (and its order) is independent of which label seeds the scan.
const std::string* MostSelectiveLabel(const NodePattern& np,
                                      const PropertyGraph& graph) {
  const std::string* best = nullptr;
  size_t best_count = 0;
  for (const std::string& label : np.labels) {
    size_t count = graph.CountNodesWithLabel(label);
    if (best == nullptr || count < best_count) {
      best = &label;
      best_count = count;
    }
  }
  return best;
}

// Cost estimate for starting a pattern with no bound variable: the size of
// its cheapest node seed set, considering every label on every node (a
// node pattern with labels [:Big:Tiny] seeds from the Tiny index).
size_t SeedCost(const PathPattern& path, const PropertyGraph& graph) {
  size_t best = graph.num_nodes();
  for (const NodePattern& np : path.nodes) {
    for (const std::string& label : np.labels) {
      best = std::min(best, graph.CountNodesWithLabel(label));
    }
  }
  return best;
}

// Greedy join order: repeatedly pick the pattern that is connected to the
// already-bound variables (cheap: it starts from a pinned node), breaking
// ties — and seeding the very first choice — by label-index selectivity.
std::vector<size_t> PlanPatternOrder(
    const std::vector<const PathPattern*>& patterns,
    const PropertyGraph& graph, const Record& input) {
  std::set<std::string> bound;
  for (const auto& [name, value] : input) bound.insert(name);
  std::vector<std::set<std::string>> vars;
  vars.reserve(patterns.size());
  for (const PathPattern* p : patterns) {
    vars.push_back(PathPatternVariables(*p));
  }
  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  while (order.size() < patterns.size()) {
    size_t best = patterns.size();
    bool best_connected = false;
    size_t best_cost = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const std::string& v : vars[i]) {
        if (bound.contains(v)) {
          connected = true;
          break;
        }
      }
      size_t cost = connected ? 0 : SeedCost(*patterns[i], graph);
      if (best == patterns.size() ||
          (connected && !best_connected) ||
          (connected == best_connected && cost < best_cost)) {
        best = i;
        best_connected = connected;
        best_cost = cost;
      }
    }
    used[best] = true;
    order.push_back(best);
    bound.insert(vars[best].begin(), vars[best].end());
  }
  return order;
}

// DFS matcher for the patterns of one MATCH clause.
class Matcher {
 public:
  Matcher(const PropertyGraph& graph, EvalContext& ctx,
          std::vector<const PathPattern*> patterns, std::vector<Record>* out)
      : graph_(graph), ctx_(ctx), patterns_(std::move(patterns)), out_(out) {
    order_.resize(patterns_.size());
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  }

  void set_order(std::vector<size_t> order) { order_ = std::move(order); }

  // Mirrors every emission into `trails` with the concrete trail that
  // produced it (single rigid pattern only — the delta-index build path).
  void set_trail_sink(std::vector<PathValue>* trails) { trails_ = trails; }

  // Restricts the seed enumeration of the first processed pattern's first
  // node to [begin, end) — one morsel of the full seed domain. The slice
  // must be drawn from the same domain the serial scan would use (the
  // most-selective label index, or all node ids) so that concatenating
  // slice outputs in slice order reproduces the serial output exactly.
  void set_seed_slice(const NodeId* begin, const NodeId* end) {
    seed_begin_ = begin;
    seed_end_ = end;
  }

  Status Run(const Record& input) {
    current_ = input;
    return MatchPattern(0);
  }

 private:
  // ---- Pattern-list driver ----

  Status MatchPattern(size_t pattern_idx) {
    if (pattern_idx == patterns_.size()) {
      out_->push_back(current_);
      if (trails_ != nullptr) trails_->push_back(*emitting_trail_);
      return Status::OK();
    }
    const PathPattern& path = *patterns_[order_[pattern_idx]];
    if (path.mode != PathMode::kNormal) {
      return MatchShortest(path, pattern_idx);
    }
    PathValue trail;
    return MatchNode(path, 0, pattern_idx, /*forced=*/nullptr, &trail);
  }

  // ---- Chain traversal ----

  // Matches node pattern `node_idx` of `path`. `forced` pins the candidate
  // (the endpoint reached through the previous relationship).
  Status MatchNode(const PathPattern& path, size_t node_idx,
                   size_t pattern_idx, const NodeId* forced,
                   PathValue* trail) {
    const NodePattern& np = path.nodes[node_idx];
    auto try_candidate = [&](NodeId id) -> Status {
      // Seed/candidate boundary: one null test when no deadline is set.
      SERAPH_RETURN_IF_ERROR(ctx_.CheckCancelled());
      SERAPH_ASSIGN_OR_RETURN(bool ok, NodeSatisfies(id, np));
      if (!ok) return Status::OK();
      bool bound_here = false;
      if (!np.variable.empty()) {
        const Value* existing = current_.Find(np.variable);
        if (existing != nullptr) {
          if (!existing->is_node() || existing->AsNode() != id) {
            return Status::OK();
          }
        } else {
          current_.Set(np.variable, Value::Node(id));
          bound_here = true;
        }
      }
      trail->nodes.push_back(id);
      Status s;
      if (node_idx + 1 < path.nodes.size()) {
        s = MatchRel(path, node_idx, pattern_idx, id, trail);
      } else {
        s = FinishPath(path, pattern_idx, trail);
      }
      trail->nodes.pop_back();
      if (bound_here) current_.Erase(np.variable);
      return s;
    };

    if (forced != nullptr) {
      return try_candidate(*forced);
    }
    // A pre-bound variable pins the candidate.
    if (!np.variable.empty()) {
      const Value* existing = current_.Find(np.variable);
      if (existing != nullptr) {
        if (!existing->is_node()) return Status::OK();
        return try_candidate(existing->AsNode());
      }
    }
    // A seed slice (one morsel of the partitioned top-level scan) replaces
    // the full enumeration for the first processed pattern's first node.
    if (seed_begin_ != nullptr && pattern_idx == 0 && node_idx == 0) {
      for (const NodeId* it = seed_begin_; it != seed_end_; ++it) {
        SERAPH_RETURN_IF_ERROR(try_candidate(*it));
      }
      return Status::OK();
    }
    // Seed from the most selective label index when possible (copy-free —
    // the index set iterates in ascending id order), else scan all nodes.
    if (const std::string* label = MostSelectiveLabel(np, graph_)) {
      for (NodeId id : graph_.NodesWithLabelSet(*label)) {
        SERAPH_RETURN_IF_ERROR(try_candidate(id));
      }
      return Status::OK();
    }
    for (NodeId id : graph_.NodeIds()) {
      SERAPH_RETURN_IF_ERROR(try_candidate(id));
    }
    return Status::OK();
  }

  // Matches relationship pattern `node_idx` (between nodes node_idx and
  // node_idx+1) starting from `from`.
  Status MatchRel(const PathPattern& path, size_t node_idx, size_t pattern_idx,
                  NodeId from, PathValue* trail) {
    const RelPattern& rp = path.rels[node_idx];
    if (rp.variable_length) {
      return MatchVarLength(path, node_idx, pattern_idx, from, trail);
    }
    auto try_rel = [&](RelId rid, NodeId next) -> Status {
      if (used_rels_.contains(rid)) return Status::OK();
      SERAPH_ASSIGN_OR_RETURN(bool ok, RelSatisfies(rid, rp));
      if (!ok) return Status::OK();
      bool bound_here = false;
      if (!rp.variable.empty()) {
        const Value* existing = current_.Find(rp.variable);
        if (existing != nullptr) {
          if (!existing->is_relationship() ||
              existing->AsRelationship() != rid) {
            return Status::OK();
          }
        } else {
          current_.Set(rp.variable, Value::Relationship(rid));
          bound_here = true;
        }
      }
      used_rels_.insert(rid);
      trail->rels.push_back(rid);
      Status s = MatchNode(path, node_idx + 1, pattern_idx, &next, trail);
      trail->rels.pop_back();
      used_rels_.erase(rid);
      if (bound_here) current_.Erase(rp.variable);
      return s;
    };

    return ForEachIncident(from, rp.direction, [&](RelId rid, NodeId other) {
      return try_rel(rid, other);
    });
  }

  // Expands a variable-length relationship pattern from `from`, then
  // continues with the next node pattern at every admissible depth.
  Status MatchVarLength(const PathPattern& path, size_t node_idx,
                        size_t pattern_idx, NodeId from, PathValue* trail) {
    const RelPattern& rp = path.rels[node_idx];
    int64_t min_hops = rp.min_hops.value_or(1);
    int64_t max_hops = rp.max_hops.value_or(kUnboundedHops);
    std::vector<Value> rel_values;  // The list bound to the rel variable.

    // Depth-first expansion; at every depth in [min, max] we also try to
    // finish the segment at the current endpoint. Invariant: every node of
    // the trail is pushed by exactly one MatchNode call or one traversal
    // step, so before handing the endpoint to the next node pattern's
    // MatchNode (which pushes it itself) we temporarily pop it.
    std::function<Status(NodeId, int64_t)> expand =
        [&](NodeId at, int64_t depth) -> Status {
      if (depth >= min_hops) {
        bool bound_here = false;
        if (!rp.variable.empty()) {
          // A variable-length variable binds to the relationship list; it
          // cannot be pre-bound (rejected by the parser).
          current_.Set(rp.variable, Value::MakeList(rel_values));
          bound_here = true;
        }
        trail->nodes.pop_back();
        Status finish = MatchNode(path, node_idx + 1, pattern_idx, &at, trail);
        trail->nodes.push_back(at);
        if (bound_here) current_.Erase(rp.variable);
        SERAPH_RETURN_IF_ERROR(finish);
      }
      if (depth == max_hops) return Status::OK();
      return ForEachIncident(
          at, rp.direction, [&](RelId rid, NodeId other) -> Status {
            if (used_rels_.contains(rid)) return Status::OK();
            SERAPH_ASSIGN_OR_RETURN(bool ok, RelSatisfies(rid, rp));
            if (!ok) return Status::OK();
            used_rels_.insert(rid);
            rel_values.push_back(Value::Relationship(rid));
            trail->rels.push_back(rid);
            trail->nodes.push_back(other);
            Status s = expand(other, depth + 1);
            trail->nodes.pop_back();
            trail->rels.pop_back();
            rel_values.pop_back();
            used_rels_.erase(rid);
            return s;
          });
    };
    return expand(from, 0);
  }

  // Completes one path pattern: binds its path variable (if any) and moves
  // on to the next pattern in the clause.
  Status FinishPath(const PathPattern& path, size_t pattern_idx,
                    PathValue* trail) {
    bool bound_here = false;
    if (!path.path_variable.empty()) {
      PathValue value = *trail;
      current_.Set(path.path_variable, Value::Path(std::move(value)));
      bound_here = true;
    }
    // Relationships of this completed pattern stay "used" for the
    // remaining patterns of the clause.
    std::vector<RelId> pinned = trail->rels;
    for (RelId r : pinned) clause_rels_.insert(r);
    std::set<RelId> saved_used = used_rels_;
    used_rels_.clear();
    used_rels_.insert(clause_rels_.begin(), clause_rels_.end());
    const PathValue* saved_trail = emitting_trail_;
    emitting_trail_ = trail;
    Status s = MatchPattern(pattern_idx + 1);
    emitting_trail_ = saved_trail;
    used_rels_ = std::move(saved_used);
    for (RelId r : pinned) clause_rels_.erase(r);
    if (bound_here) current_.Erase(path.path_variable);
    return s;
  }

  // ---- shortestPath ----

  Status MatchShortest(const PathPattern& path, size_t pattern_idx) {
    if (path.nodes.size() != 2 || path.rels.size() != 1) {
      return Status::SemanticError(
          "shortestPath() requires a single relationship pattern between "
          "two nodes");
    }
    const RelPattern& rp = path.rels[0];
    // Enumerate source candidates, BFS to every target candidate.
    const NodePattern& src_np = path.nodes[0];
    const NodePattern& dst_np = path.nodes[1];
    SERAPH_ASSIGN_OR_RETURN(
        std::vector<NodeId> sources,
        CandidateNodes(src_np, /*use_seed_slice=*/pattern_idx == 0));
    for (NodeId src : sources) {
      bool src_bound_here = false;
      if (!src_np.variable.empty() && !current_.Has(src_np.variable)) {
        current_.Set(src_np.variable, Value::Node(src));
        src_bound_here = true;
      }
      SERAPH_ASSIGN_OR_RETURN(std::vector<NodeId> targets,
                              CandidateNodes(dst_np));
      for (NodeId dst : targets) {
        if (dst == src) continue;
        bool dst_bound_here = false;
        if (!dst_np.variable.empty() && !current_.Has(dst_np.variable)) {
          current_.Set(dst_np.variable, Value::Node(dst));
          dst_bound_here = true;
        }
        SERAPH_RETURN_IF_ERROR(EmitShortestPaths(path, rp, src, dst,
                                                 pattern_idx));
        if (dst_bound_here) current_.Erase(dst_np.variable);
      }
      if (src_bound_here) current_.Erase(src_np.variable);
    }
    return Status::OK();
  }

  // BFS from src to dst; emits the first shortest path (kShortest) or all
  // paths of minimal length (kAllShortest).
  Status EmitShortestPaths(const PathPattern& path, const RelPattern& rp,
                           NodeId src, NodeId dst, size_t pattern_idx) {
    int64_t max_hops = rp.max_hops.value_or(kUnboundedHops);
    int64_t min_hops = rp.min_hops.value_or(1);
    // BFS computing distance labels.
    std::unordered_map<NodeId, int64_t> dist;
    dist[src] = 0;
    std::deque<NodeId> frontier{src};
    bool reached = false;
    while (!frontier.empty() && !reached) {
      NodeId at = frontier.front();
      frontier.pop_front();
      if (dist[at] == max_hops) continue;
      Status s = ForEachIncident(
          at, rp.direction, [&](RelId rid, NodeId other) -> Status {
            SERAPH_ASSIGN_OR_RETURN(bool ok, RelSatisfies(rid, rp));
            if (!ok) return Status::OK();
            if (!dist.contains(other)) {
              dist[other] = dist[at] + 1;
              if (other == dst) reached = true;
              frontier.push_back(other);
            }
            return Status::OK();
          });
      if (!s.ok()) return s;
    }
    auto it = dist.find(dst);
    if (it == dist.end() || it->second < min_hops) return Status::OK();
    int64_t shortest = it->second;
    // Enumerate paths of exactly `shortest` hops via depth-limited DFS
    // guided by the distance labels (each step must decrease the remaining
    // distance, so this only walks shortest paths).
    PathValue trail;
    trail.nodes.push_back(src);
    bool emitted = false;
    std::function<Status(NodeId)> walk = [&](NodeId at) -> Status {
      if (emitted && path.mode == PathMode::kShortest) return Status::OK();
      int64_t at_depth = static_cast<int64_t>(trail.rels.size());
      if (at == dst && at_depth == shortest) {
        emitted = true;
        return EmitPath(path, trail, pattern_idx);
      }
      if (at_depth == shortest) return Status::OK();
      return ForEachIncident(
          at, rp.direction, [&](RelId rid, NodeId other) -> Status {
            if (emitted && path.mode == PathMode::kShortest) {
              return Status::OK();
            }
            SERAPH_ASSIGN_OR_RETURN(bool ok, RelSatisfies(rid, rp));
            if (!ok) return Status::OK();
            // Prune: `other` must be strictly closer to completion.
            auto dother = dist.find(other);
            if (dother == dist.end() || dother->second != at_depth + 1) {
              return Status::OK();
            }
            trail.rels.push_back(rid);
            trail.nodes.push_back(other);
            Status s = walk(other);
            trail.nodes.pop_back();
            trail.rels.pop_back();
            return s;
          });
    };
    return walk(src);
  }

  // Binds the path variable / relationship list of a shortest path and
  // continues with the remaining patterns.
  Status EmitPath(const PathPattern& path, const PathValue& trail,
                  size_t pattern_idx) {
    const RelPattern& rp = path.rels[0];
    bool rel_bound = false;
    if (!rp.variable.empty()) {
      Value::List rels;
      for (RelId r : trail.rels) rels.push_back(Value::Relationship(r));
      current_.Set(rp.variable, Value::MakeList(std::move(rels)));
      rel_bound = true;
    }
    bool path_bound = false;
    if (!path.path_variable.empty()) {
      current_.Set(path.path_variable, Value::Path(trail));
      path_bound = true;
    }
    Status s = MatchPattern(pattern_idx + 1);
    if (path_bound) current_.Erase(path.path_variable);
    if (rel_bound) current_.Erase(rp.variable);
    return s;
  }

  // ---- Candidate enumeration and constraint checks ----

  // `use_seed_slice` routes the shortestPath source enumeration of the
  // first processed pattern through the morsel's seed slice.
  Result<std::vector<NodeId>> CandidateNodes(const NodePattern& np,
                                             bool use_seed_slice = false) {
    std::vector<NodeId> out;
    if (!np.variable.empty()) {
      const Value* existing = current_.Find(np.variable);
      if (existing != nullptr) {
        if (existing->is_node()) {
          SERAPH_ASSIGN_OR_RETURN(bool ok,
                                  NodeSatisfies(existing->AsNode(), np));
          if (ok) out.push_back(existing->AsNode());
        }
        return out;
      }
    }
    auto consider = [&](NodeId id) -> Status {
      SERAPH_ASSIGN_OR_RETURN(bool ok, NodeSatisfies(id, np));
      if (ok) out.push_back(id);
      return Status::OK();
    };
    if (use_seed_slice && seed_begin_ != nullptr) {
      for (const NodeId* it = seed_begin_; it != seed_end_; ++it) {
        SERAPH_RETURN_IF_ERROR(consider(*it));
      }
      return out;
    }
    if (const std::string* label = MostSelectiveLabel(np, graph_)) {
      for (NodeId id : graph_.NodesWithLabelSet(*label)) {
        SERAPH_RETURN_IF_ERROR(consider(id));
      }
      return out;
    }
    for (NodeId id : graph_.NodeIds()) {
      SERAPH_RETURN_IF_ERROR(consider(id));
    }
    return out;
  }

  Result<bool> NodeSatisfies(NodeId id, const NodePattern& np) {
    const NodeData* data = graph_.node(id);
    if (data == nullptr) return false;
    for (const std::string& label : np.labels) {
      if (!data->labels.contains(label)) return false;
    }
    for (const auto& [key, expr] : np.properties) {
      ctx_.set_record(&current_);
      SERAPH_ASSIGN_OR_RETURN(Value expected, expr->Eval(ctx_));
      auto it = data->properties.find(key);
      if (it == data->properties.end()) return false;
      if (!IsTruthy(CypherEquals(it->second, expected))) return false;
    }
    return true;
  }

  Result<bool> RelSatisfies(RelId id, const RelPattern& rp) {
    const RelData* data = graph_.relationship(id);
    if (data == nullptr) return false;
    if (!rp.types.empty()) {
      bool any = false;
      for (const std::string& type : rp.types) {
        if (data->type == type) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    for (const auto& [key, expr] : rp.properties) {
      ctx_.set_record(&current_);
      SERAPH_ASSIGN_OR_RETURN(Value expected, expr->Eval(ctx_));
      auto it = data->properties.find(key);
      if (it == data->properties.end()) return false;
      if (!IsTruthy(CypherEquals(it->second, expected))) return false;
    }
    return true;
  }

  // Applies `fn(rel, other_endpoint)` for each relationship incident to
  // `from` admissible under `direction`.
  Status ForEachIncident(NodeId from, RelDirection direction,
                         const std::function<Status(RelId, NodeId)>& fn) {
    // Expansion boundary of the DFS (and of var-length/BFS walks).
    SERAPH_RETURN_IF_ERROR(ctx_.CheckCancelled());
    if (direction != RelDirection::kIncoming) {
      for (RelId rid : graph_.OutRelationships(from)) {
        const RelData* data = graph_.relationship(rid);
        SERAPH_RETURN_IF_ERROR(fn(rid, data->trg));
      }
    }
    if (direction != RelDirection::kOutgoing) {
      for (RelId rid : graph_.InRelationships(from)) {
        const RelData* data = graph_.relationship(rid);
        if (data->src == data->trg) continue;  // Self-loop seen via out.
        SERAPH_RETURN_IF_ERROR(fn(rid, data->src));
      }
    }
    return Status::OK();
  }

  const PropertyGraph& graph_;
  EvalContext& ctx_;
  const std::vector<const PathPattern*> patterns_;
  std::vector<Record>* out_;
  // Processing order over patterns_ (a permutation; see PlanPatternOrder).
  std::vector<size_t> order_;

  Record current_;
  // Relationships used by the pattern currently being traversed.
  std::set<RelId> used_rels_;
  // Relationships pinned by already-completed patterns of this clause.
  std::set<RelId> clause_rels_;
  // Optional morsel restriction of the top-level seed scan (not owned).
  const NodeId* seed_begin_ = nullptr;
  const NodeId* seed_end_ = nullptr;
  // Optional emission mirror (MatchPatternWithTrails; not owned). When
  // set, every record pushed to out_ is paired with the trail that
  // produced it; emitting_trail_ points at the live trail of the pattern
  // currently completing (stashed by FinishPath around its recursion).
  std::vector<PathValue>* trails_ = nullptr;
  const PathValue* emitting_trail_ = nullptr;
};

// The processing order over `views` (identity, or the greedy plan).
std::vector<size_t> ResolveOrder(const std::vector<const PathPattern*>& views,
                                 const PropertyGraph& graph,
                                 const Record& input,
                                 const MatchOptions& options) {
  if (options.optimize_pattern_order && views.size() > 1) {
    return PlanPatternOrder(views, graph, input);
  }
  std::vector<size_t> order(views.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

// The seed domain of the first processed pattern's first node — exactly
// the candidate list the serial scan enumerates (most-selective label
// index, else every node, both in ascending id order). nullopt when the
// scan cannot be partitioned: no patterns, or the seed variable is
// pre-bound by the input record (the scan then visits one pinned node).
std::optional<std::vector<NodeId>> TopLevelSeeds(
    const std::vector<const PathPattern*>& views,
    const std::vector<size_t>& order, const PropertyGraph& graph,
    const Record& input) {
  if (views.empty()) return std::nullopt;
  const PathPattern& first = *views[order[0]];
  if (first.nodes.empty()) return std::nullopt;
  const NodePattern& np = first.nodes.front();
  if (!np.variable.empty() && input.Find(np.variable) != nullptr) {
    return std::nullopt;
  }
  if (const std::string* label = MostSelectiveLabel(np, graph)) {
    const std::set<NodeId>& indexed = graph.NodesWithLabelSet(*label);
    return std::vector<NodeId>(indexed.begin(), indexed.end());
  }
  return graph.NodeIds();
}

// Partitioned execution: `seeds` is cut into fixed-size morsels, each
// matched by an independent Matcher on a pool task (own output vector,
// own relationship-isomorphism state, own EvalContext copy). Serial
// equivalence: between top-level seeds the serial matcher's
// used_rels_/clause_rels_ are empty (every DFS branch erases what it
// inserts on unwind), so per-morsel matchers see identical state, and
// concatenating their outputs in morsel order — ascending seed order —
// reproduces the serial bag, content and order. On failure the morsels
// preceding the first failed one plus that morsel's partial output are
// kept, which is exactly the serial abort point.
Status MatchPartitioned(const std::vector<const PathPattern*>& views,
                        const std::vector<size_t>& order,
                        const std::vector<NodeId>& seeds,
                        const PropertyGraph& graph, const Record& input,
                        EvalContext& ctx, std::vector<Record>* out,
                        const MatchParallelism& par) {
  const size_t morsel_size = std::max<size_t>(par.morsel_size, 1);
  const size_t num_morsels = (seeds.size() + morsel_size - 1) / morsel_size;
  std::vector<std::vector<Record>> morsel_out(num_morsels);
  std::vector<Status> morsel_status(num_morsels, Status::OK());
  const int64_t start_micros = TraceRecorder::NowMicros();

  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_morsels);
  for (size_t m = 0; m < num_morsels; ++m) {
    tasks.push_back([&, m] {
      const size_t begin = m * morsel_size;
      const size_t end = std::min(seeds.size(), begin + morsel_size);
      // Private context copy; parallelism cleared so nothing matched
      // inside a morsel (e.g. an exists() predicate) fans out again.
      EvalContext morsel_ctx = ctx;
      morsel_ctx.set_match_parallelism(nullptr);
      Matcher matcher(graph, morsel_ctx, views, &morsel_out[m]);
      matcher.set_order(order);
      matcher.set_seed_slice(seeds.data() + begin, seeds.data() + end);
      try {
        morsel_status[m] = matcher.Run(input);
      } catch (const std::exception& e) {
        morsel_status[m] =
            Status::Internal(std::string("match morsel threw: ") + e.what());
      } catch (...) {
        morsel_status[m] = Status::Internal("match morsel threw");
      }
    });
  }
  ThreadPool::BatchPtr batch = par.pool->SubmitBatch(std::move(tasks));
  par.pool->WaitAll(batch);

  // Observability from the submitting thread only — for the engine that
  // is the query's single evaluating worker, so the per-query histogram
  // keeps a single writer.
  if (par.partitions != nullptr) {
    par.partitions->Increment(static_cast<int64_t>(num_morsels));
  }
  if (par.seed_candidates != nullptr) {
    par.seed_candidates->Record(static_cast<int64_t>(seeds.size()));
  }
  if (par.tracer != nullptr && par.tracer->enabled()) {
    par.tracer->AddComplete(
        "match_morsels", "match", start_micros,
        TraceRecorder::NowMicros() - start_micros,
        {{"query", par.query_label},
         {"seeds", std::to_string(seeds.size())},
         {"morsels", std::to_string(num_morsels)},
         {"morsel_size", std::to_string(morsel_size)}});
  }

  size_t emit = num_morsels;
  size_t total = 0;
  for (size_t m = 0; m < num_morsels; ++m) {
    total += morsel_out[m].size();
    if (!morsel_status[m].ok()) {
      emit = m + 1;
      break;
    }
  }
  out->reserve(out->size() + total);
  for (size_t m = 0; m < emit; ++m) {
    for (Record& r : morsel_out[m]) out->push_back(std::move(r));
    if (!morsel_status[m].ok()) return morsel_status[m];
  }
  return Status::OK();
}

// Shared driver behind both public entry points: plans the order, then
// either fans the top-level seed scan out in morsels (pool granted, seed
// variable free, domain at least min_seeds) or runs the serial DFS.
Status MatchViews(const std::vector<const PathPattern*>& views,
                  const PropertyGraph& graph, const Record& input,
                  EvalContext& ctx, std::vector<Record>* out,
                  const MatchOptions& options) {
  std::vector<size_t> order = ResolveOrder(views, graph, input, options);
  const MatchParallelism* par =
      options.parallel != nullptr ? options.parallel : ctx.match_parallelism();
  if (par != nullptr && par->pool != nullptr && par->pool->size() > 1) {
    std::optional<std::vector<NodeId>> seeds =
        TopLevelSeeds(views, order, graph, input);
    if (seeds.has_value() &&
        seeds->size() >= std::max<size_t>(par->min_seeds, 1)) {
      return MatchPartitioned(views, order, *seeds, graph, input, ctx, out,
                              *par);
    }
  }
  Matcher matcher(graph, ctx, views, out);
  matcher.set_order(std::move(order));
  const Record* saved = ctx.record();
  Status s = matcher.Run(input);
  ctx.set_record(saved);
  return s;
}

}  // namespace

Status MatchPatterns(const std::vector<PathPattern>& patterns,
                     const PropertyGraph& graph, const Record& input,
                     EvalContext& ctx, std::vector<Record>* out,
                     const MatchOptions& options) {
  std::vector<const PathPattern*> views;
  views.reserve(patterns.size());
  for (const PathPattern& p : patterns) views.push_back(&p);
  return MatchViews(views, graph, input, ctx, out, options);
}

Status MatchSinglePattern(const PathPattern& pattern,
                          const PropertyGraph& graph, const Record& input,
                          EvalContext& ctx, std::vector<Record>* out) {
  // Inherits intra-query parallelism from the context, so a top-level
  // exists(<pattern>) over a large seed domain partitions too.
  return MatchViews({&pattern}, graph, input, ctx, out, MatchOptions{});
}

Status MatchPatternWithTrails(const PathPattern& pattern,
                              const PropertyGraph& graph, const Record& input,
                              EvalContext& ctx, std::vector<Record>* out,
                              std::vector<PathValue>* trails) {
  if (pattern.mode != PathMode::kNormal) {
    return Status::InvalidArgument(
        "MatchPatternWithTrails requires a kNormal path pattern");
  }
  for (const RelPattern& rp : pattern.rels) {
    if (rp.variable_length) {
      return Status::InvalidArgument(
          "MatchPatternWithTrails requires fixed-length relationships");
    }
  }
  // Serial on purpose: the trail order must be the canonical serial DFS
  // order regardless of any parallelism spec in the context.
  Matcher matcher(graph, ctx, {&pattern}, out);
  matcher.set_trail_sink(trails);
  const Record* saved = ctx.record();
  Status s = matcher.Run(input);
  ctx.set_record(saved);
  return s;
}

}  // namespace seraph
