#include "cypher/functions.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "cypher/eval.h"
#include "graph/property_graph.h"

namespace seraph {

namespace {

Status Arity(const std::string& name, const std::vector<Value>& args,
             size_t expected) {
  if (args.size() != expected) {
    return Status::EvaluationError(
        name + "() expects " + std::to_string(expected) + " argument(s), got " +
        std::to_string(args.size()));
  }
  return Status::OK();
}

Status TypeError(const std::string& name, const Value& got,
                 const char* expected) {
  return Status::EvaluationError(name + "(): expected " + expected + ", got " +
                                 ValueKindToString(got.kind()));
}

}  // namespace

bool IsAggregateFunction(const std::string& name) {
  static const std::unordered_set<std::string>* kAggregates =
      new std::unordered_set<std::string>{
          "count",          "sum",   "avg",    "min",
          "max",            "collect", "stdev", "stdevp",
          "percentilecont", "percentiledisc"};
  return kAggregates->contains(name);
}

bool IsScalarFunction(const std::string& name) {
  static const std::unordered_set<std::string>* kScalars =
      new std::unordered_set<std::string>{
          "labels",     "type",       "id",        "properties", "keys",
          "nodes",      "relationships", "length", "size",       "head",
          "last",       "tail",       "reverse",   "range",      "abs",
          "ceil",       "floor",      "round",     "sign",       "sqrt",
          "exp",        "log",        "log10",     "tointeger",  "tofloat",
          "tostring",   "toboolean",  "coalesce",  "startnode",  "endnode",
          "datetime",   "duration",   "timestamp", "tolower",    "toupper",
          "trim",       "ltrim",      "rtrim",     "replace",    "split",
          "substring",  "left",       "right",     "exists"};
  return kScalars->contains(name);
}

Result<Value> CallScalarFunction(const std::string& name,
                                 const std::vector<Value>& args,
                                 EvalContext& ctx) {
  // --- Graph-entity functions ---
  if (name == "labels") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_node()) return TypeError(name, args[0], "NODE");
    const NodeData* node = ctx.graph()->node(args[0].AsNode());
    if (node == nullptr) return Value::Null();
    Value::List labels;
    for (const std::string& label : node->labels) {
      labels.push_back(Value::String(label));
    }
    return Value::MakeList(std::move(labels));
  }
  if (name == "type") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_relationship()) {
      return TypeError(name, args[0], "RELATIONSHIP");
    }
    const RelData* rel = ctx.graph()->relationship(args[0].AsRelationship());
    return rel == nullptr ? Value::Null() : Value::String(rel->type);
  }
  if (name == "id") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_node()) return Value::Int(args[0].AsNode().value);
    if (args[0].is_relationship()) {
      return Value::Int(args[0].AsRelationship().value);
    }
    return TypeError(name, args[0], "NODE or RELATIONSHIP");
  }
  if (name == "properties") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_map()) return args[0];
    if (args[0].is_node()) {
      const NodeData* node = ctx.graph()->node(args[0].AsNode());
      if (node == nullptr) return Value::Null();
      return Value::MakeMap(node->properties);
    }
    if (args[0].is_relationship()) {
      const RelData* rel = ctx.graph()->relationship(args[0].AsRelationship());
      if (rel == nullptr) return Value::Null();
      return Value::MakeMap(rel->properties);
    }
    return TypeError(name, args[0], "NODE, RELATIONSHIP or MAP");
  }
  if (name == "keys") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    Value::Map props;
    if (args[0].is_map()) {
      props = args[0].AsMap();
    } else if (args[0].is_node()) {
      const NodeData* node = ctx.graph()->node(args[0].AsNode());
      if (node == nullptr) return Value::Null();
      props = node->properties;
    } else if (args[0].is_relationship()) {
      const RelData* rel = ctx.graph()->relationship(args[0].AsRelationship());
      if (rel == nullptr) return Value::Null();
      props = rel->properties;
    } else {
      return TypeError(name, args[0], "NODE, RELATIONSHIP or MAP");
    }
    Value::List keys;
    for (const auto& [key, value] : props) keys.push_back(Value::String(key));
    return Value::MakeList(std::move(keys));
  }
  if (name == "nodes") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_path()) return TypeError(name, args[0], "PATH");
    Value::List nodes;
    for (NodeId id : args[0].AsPath().nodes) nodes.push_back(Value::Node(id));
    return Value::MakeList(std::move(nodes));
  }
  if (name == "relationships") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_path()) return TypeError(name, args[0], "PATH");
    Value::List rels;
    for (RelId id : args[0].AsPath().rels) {
      rels.push_back(Value::Relationship(id));
    }
    return Value::MakeList(std::move(rels));
  }
  if (name == "startnode" || name == "endnode") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_relationship()) {
      return TypeError(name, args[0], "RELATIONSHIP");
    }
    const RelData* rel = ctx.graph()->relationship(args[0].AsRelationship());
    if (rel == nullptr) return Value::Null();
    return Value::Node(name == "startnode" ? rel->src : rel->trg);
  }
  if (name == "length") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_path()) return Value::Int(args[0].AsPath().length());
    if (args[0].is_list()) {
      return Value::Int(static_cast<int64_t>(args[0].AsList().size()));
    }
    if (args[0].is_string()) {
      return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
    }
    return TypeError(name, args[0], "PATH, LIST or STRING");
  }
  if (name == "size") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_list()) {
      return Value::Int(static_cast<int64_t>(args[0].AsList().size()));
    }
    if (args[0].is_string()) {
      return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
    }
    if (args[0].is_map()) {
      return Value::Int(static_cast<int64_t>(args[0].AsMap().size()));
    }
    return TypeError(name, args[0], "LIST, STRING or MAP");
  }
  // --- List functions ---
  if (name == "head" || name == "last") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_list()) return TypeError(name, args[0], "LIST");
    const auto& list = args[0].AsList();
    if (list.empty()) return Value::Null();
    return name == "head" ? list.front() : list.back();
  }
  if (name == "tail") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_list()) return TypeError(name, args[0], "LIST");
    const auto& list = args[0].AsList();
    if (list.empty()) return Value::MakeList({});
    return Value::MakeList(Value::List(list.begin() + 1, list.end()));
  }
  if (name == "reverse") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_list()) {
      Value::List list = args[0].AsList();
      std::reverse(list.begin(), list.end());
      return Value::MakeList(std::move(list));
    }
    if (args[0].is_string()) {
      std::string s = args[0].AsString();
      std::reverse(s.begin(), s.end());
      return Value::String(std::move(s));
    }
    return TypeError(name, args[0], "LIST or STRING");
  }
  if (name == "range") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::EvaluationError("range() expects 2 or 3 arguments");
    }
    for (const Value& a : args) {
      if (!a.is_int()) return TypeError(name, a, "INTEGER");
    }
    int64_t lo = args[0].AsInt();
    int64_t hi = args[1].AsInt();
    int64_t step = args.size() == 3 ? args[2].AsInt() : 1;
    if (step == 0) return Status::EvaluationError("range() step must be != 0");
    Value::List out;
    if (step > 0) {
      for (int64_t v = lo; v <= hi; v += step) out.push_back(Value::Int(v));
    } else {
      for (int64_t v = lo; v >= hi; v += step) out.push_back(Value::Int(v));
    }
    return Value::MakeList(std::move(out));
  }
  // --- Numeric functions ---
  if (name == "abs" || name == "ceil" || name == "floor" || name == "round" ||
      name == "sign" || name == "sqrt" || name == "exp" || name == "log" ||
      name == "log10") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_number()) return TypeError(name, args[0], "NUMBER");
    double x = args[0].AsNumber();
    if (name == "abs") {
      if (args[0].is_int()) return Value::Int(std::llabs(args[0].AsInt()));
      return Value::Float(std::fabs(x));
    }
    if (name == "ceil") return Value::Float(std::ceil(x));
    if (name == "floor") return Value::Float(std::floor(x));
    if (name == "round") return Value::Float(std::round(x));
    if (name == "sign") return Value::Int(x > 0 ? 1 : (x < 0 ? -1 : 0));
    if (name == "sqrt") return Value::Float(std::sqrt(x));
    if (name == "exp") return Value::Float(std::exp(x));
    if (name == "log") return Value::Float(std::log(x));
    return Value::Float(std::log10(x));
  }
  // --- Conversions ---
  if (name == "tointeger") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) return args[0];
    if (args[0].is_float()) {
      return Value::Int(static_cast<int64_t>(args[0].AsFloat()));
    }
    if (args[0].is_string()) {
      errno = 0;
      char* end = nullptr;
      const std::string& s = args[0].AsString();
      long long v = std::strtoll(s.c_str(), &end, 10);
      if (end == s.c_str()) return Value::Null();
      return Value::Int(v);
    }
    return Value::Null();
  }
  if (name == "tofloat") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_number()) return Value::Float(args[0].AsNumber());
    if (args[0].is_string()) {
      char* end = nullptr;
      const std::string& s = args[0].AsString();
      double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str()) return Value::Null();
      return Value::Float(v);
    }
    return Value::Null();
  }
  if (name == "tostring") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::String(args[0].ToString());
  }
  if (name == "toboolean") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_bool()) return args[0];
    if (args[0].is_string()) {
      if (args[0].AsString() == "true") return Value::Bool(true);
      if (args[0].AsString() == "false") return Value::Bool(false);
      return Value::Null();
    }
    return Value::Null();
  }
  if (name == "coalesce") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  // --- Temporal functions ---
  if (name == "datetime") {
    if (args.empty()) return Value::DateTime(ctx.now());
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_datetime()) return args[0];
    if (!args[0].is_string()) return TypeError(name, args[0], "STRING");
    SERAPH_ASSIGN_OR_RETURN(Timestamp t, Timestamp::Parse(args[0].AsString()));
    return Value::DateTime(t);
  }
  if (name == "duration") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_duration()) return args[0];
    if (!args[0].is_string()) return TypeError(name, args[0], "STRING");
    SERAPH_ASSIGN_OR_RETURN(Duration d, Duration::Parse(args[0].AsString()));
    return Value::Dur(d);
  }
  if (name == "timestamp") {
    if (!args.empty()) return Status::EvaluationError("timestamp() takes 0 args");
    return Value::Int(ctx.now().millis());
  }
  // --- String functions ---
  if (name == "tolower" || name == "toupper" || name == "trim" ||
      name == "ltrim" || name == "rtrim") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) return TypeError(name, args[0], "STRING");
    std::string s = args[0].AsString();
    if (name == "tolower") {
      for (char& c : s) c = std::tolower(static_cast<unsigned char>(c));
    } else if (name == "toupper") {
      for (char& c : s) c = std::toupper(static_cast<unsigned char>(c));
    } else {
      size_t begin = 0, end = s.size();
      if (name != "rtrim") {
        while (begin < end &&
               std::isspace(static_cast<unsigned char>(s[begin]))) {
          ++begin;
        }
      }
      if (name != "ltrim") {
        while (end > begin &&
               std::isspace(static_cast<unsigned char>(s[end - 1]))) {
          --end;
        }
      }
      s = s.substr(begin, end - begin);
    }
    return Value::String(std::move(s));
  }
  if (name == "replace") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 3));
    for (const Value& a : args) {
      if (a.is_null()) return Value::Null();
      if (!a.is_string()) return TypeError(name, a, "STRING");
    }
    std::string s = args[0].AsString();
    const std::string& from = args[1].AsString();
    const std::string& to = args[2].AsString();
    if (from.empty()) return Value::String(std::move(s));
    std::string out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(from, pos);
      if (hit == std::string::npos) {
        out += s.substr(pos);
        break;
      }
      out += s.substr(pos, hit - pos);
      out += to;
      pos = hit + from.size();
    }
    return Value::String(std::move(out));
  }
  if (name == "split") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (!args[0].is_string() || !args[1].is_string()) {
      return TypeError(name, args[0], "STRING");
    }
    const std::string& s = args[0].AsString();
    const std::string& sep = args[1].AsString();
    Value::List out;
    if (sep.empty()) {
      out.push_back(Value::String(s));
      return Value::MakeList(std::move(out));
    }
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(sep, pos);
      if (hit == std::string::npos) {
        out.push_back(Value::String(s.substr(pos)));
        break;
      }
      out.push_back(Value::String(s.substr(pos, hit - pos)));
      pos = hit + sep.size();
    }
    return Value::MakeList(std::move(out));
  }
  if (name == "substring") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::EvaluationError("substring() expects 2 or 3 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) return TypeError(name, args[0], "STRING");
    if (!args[1].is_int()) return TypeError(name, args[1], "INTEGER");
    const std::string& s = args[0].AsString();
    int64_t start = std::max<int64_t>(0, args[1].AsInt());
    if (start >= static_cast<int64_t>(s.size())) return Value::String("");
    size_t len = std::string::npos;
    if (args.size() == 3) {
      if (!args[2].is_int()) return TypeError(name, args[2], "INTEGER");
      len = static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()));
    }
    return Value::String(s.substr(static_cast<size_t>(start), len));
  }
  if (name == "left" || name == "right") {
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 2));
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_string()) return TypeError(name, args[0], "STRING");
    if (!args[1].is_int()) return TypeError(name, args[1], "INTEGER");
    const std::string& s = args[0].AsString();
    size_t n = static_cast<size_t>(std::max<int64_t>(0, args[1].AsInt()));
    n = std::min(n, s.size());
    return Value::String(name == "left" ? s.substr(0, n)
                                        : s.substr(s.size() - n));
  }
  if (name == "exists") {
    // exists(n.prop) — property existence.
    SERAPH_RETURN_IF_ERROR(Arity(name, args, 1));
    return Value::Bool(!args[0].is_null());
  }
  return Status::EvaluationError("unknown function '" + name + "'");
}

Result<Value> ComputeAggregate(const std::string& name, bool distinct,
                               const std::vector<Value>& inputs,
                               const std::optional<Value>& param) {
  // Drop nulls (Cypher aggregates ignore null inputs).
  std::vector<Value> values;
  values.reserve(inputs.size());
  for (const Value& v : inputs) {
    if (!v.is_null()) values.push_back(v);
  }
  if (distinct) {
    std::vector<Value> unique;
    for (const Value& v : values) {
      bool seen = false;
      for (const Value& u : unique) {
        if (u == v) {
          seen = true;
          break;
        }
      }
      if (!seen) unique.push_back(v);
    }
    values = std::move(unique);
  }
  if (name == "count") {
    return Value::Int(static_cast<int64_t>(values.size()));
  }
  if (name == "collect") {
    return Value::MakeList(std::move(values));
  }
  if (name == "min" || name == "max") {
    if (values.empty()) return Value::Null();
    Value best = values[0];
    for (const Value& v : values) {
      int c = Value::Compare(v, best);
      if ((name == "min" && c < 0) || (name == "max" && c > 0)) best = v;
    }
    return best;
  }
  if (name == "sum") {
    if (values.empty()) return Value::Int(0);
    bool all_int = true;
    double total = 0;
    int64_t itotal = 0;
    for (const Value& v : values) {
      if (!v.is_number()) {
        return Status::EvaluationError("sum() over non-numeric values");
      }
      if (!v.is_int()) all_int = false;
      total += v.AsNumber();
      if (v.is_int()) itotal += v.AsInt();
    }
    return all_int ? Value::Int(itotal) : Value::Float(total);
  }
  if (name == "avg" || name == "stdev" || name == "stdevp" ||
      name == "percentilecont" || name == "percentiledisc") {
    if (values.empty()) return Value::Null();
    std::vector<double> xs;
    xs.reserve(values.size());
    for (const Value& v : values) {
      if (!v.is_number()) {
        return Status::EvaluationError(name + "() over non-numeric values");
      }
      xs.push_back(v.AsNumber());
    }
    if (name == "avg") {
      double sum = 0;
      for (double x : xs) sum += x;
      return Value::Float(sum / xs.size());
    }
    if (name == "stdev" || name == "stdevp") {
      if (xs.size() == 1) return Value::Float(0.0);
      double mean = 0;
      for (double x : xs) mean += x;
      mean /= xs.size();
      double ss = 0;
      for (double x : xs) ss += (x - mean) * (x - mean);
      double denom = name == "stdev" ? xs.size() - 1 : xs.size();
      return Value::Float(std::sqrt(ss / denom));
    }
    // percentileCont / percentileDisc.
    if (!param.has_value() || !param->is_number()) {
      return Status::EvaluationError(
          name + "() requires a numeric percentile argument");
    }
    double p = param->AsNumber();
    if (p < 0.0 || p > 1.0) {
      return Status::EvaluationError("percentile must be in [0, 1]");
    }
    std::sort(xs.begin(), xs.end());
    if (name == "percentiledisc") {
      size_t idx = static_cast<size_t>(std::ceil(p * xs.size()));
      if (idx > 0) --idx;
      return Value::Float(xs[idx]);
    }
    double rank = p * (xs.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = static_cast<size_t>(std::ceil(rank));
    double frac = rank - lo;
    return Value::Float(xs[lo] + (xs[hi] - xs[lo]) * frac);
  }
  return Status::EvaluationError("unknown aggregate '" + name + "'");
}

}  // namespace seraph
