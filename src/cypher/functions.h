// Built-in function registry: scalar functions evaluated per row, and the
// set of aggregating functions computed per group by the executor.
#ifndef SERAPH_CYPHER_FUNCTIONS_H_
#define SERAPH_CYPHER_FUNCTIONS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "value/value.h"

namespace seraph {

class EvalContext;

// True for aggregating functions: count, sum, avg, min, max, collect,
// stDev, stDevP, percentileCont, percentileDisc. `name` must be
// lower-cased.
bool IsAggregateFunction(const std::string& name);

// True if `name` (lower-cased) denotes a known scalar function.
bool IsScalarFunction(const std::string& name);

// Invokes scalar function `name` (lower-cased) on already-evaluated
// `args`. Most functions return null on null input; arity or type misuse
// yields kEvaluationError.
Result<Value> CallScalarFunction(const std::string& name,
                                 const std::vector<Value>& args,
                                 EvalContext& ctx);

// Folds the per-row input values of one aggregate call into its result.
// `distinct` applies duplicate elimination first. Null inputs are skipped
// (except count(*), which the executor handles directly). `param` carries
// the second argument of two-argument aggregates (the percentile of
// percentileCont / percentileDisc), evaluated once per group.
Result<Value> ComputeAggregate(const std::string& name, bool distinct,
                               const std::vector<Value>& inputs,
                               const std::optional<Value>& param = {});

}  // namespace seraph

#endif  // SERAPH_CYPHER_FUNCTIONS_H_
