#include "cypher/parser.h"

#include <utility>

#include "common/strings.h"
#include "cypher/functions.h"
#include "cypher/lexer.h"

namespace seraph {

namespace {

// Keywords that terminate a clause chain or projection item list.
bool IsStructuralKeyword(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  static const char* kStops[] = {"MATCH",  "OPTIONAL", "UNWIND", "WITH",
                                 "RETURN", "EMIT",     "UNION",  "WHERE",
                                 "ORDER",  "SKIP",     "LIMIT",  "ON",
                                 "EVERY",  "SNAPSHOT", "WITHIN"};
  for (const char* k : kStops) {
    if (EqualsIgnoreCase(t.text, k)) return true;
  }
  return false;
}

}  // namespace

const Token& Parser::TokenAt(size_t index) const {
  if (index >= tokens_.size()) return tokens_.back();  // kEnd sentinel.
  return tokens_[index];
}

const Token& Parser::Peek(size_t ahead) const { return TokenAt(pos_ + ahead); }

bool Parser::PeekIsKeyword(std::string_view keyword, size_t ahead) const {
  const Token& t = Peek(ahead);
  return t.kind == TokenKind::kIdentifier && EqualsIgnoreCase(t.text, keyword);
}

bool Parser::ConsumeKeyword(std::string_view keyword) {
  if (PeekIsKeyword(keyword)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(std::string_view keyword) {
  if (ConsumeKeyword(keyword)) return Status::OK();
  return ErrorHere("expected " + std::string(keyword));
}

bool Parser::Consume(TokenKind kind) {
  if (Peek().kind == kind) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind) {
  if (Consume(kind)) return Status::OK();
  return ErrorHere(std::string("expected ") + TokenKindToString(kind));
}

Status Parser::ExpectEnd() {
  if (AtEnd()) return Status::OK();
  return ErrorHere("unexpected trailing input");
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kIdentifier
                        ? "'" + t.text + "'"
                        : TokenKindToString(t.kind);
  return Status::ParseError(message + ", got " + got + " at line " +
                            std::to_string(t.line) + ", column " +
                            std::to_string(t.column));
}

Result<std::string> Parser::ParseIdentifier(const char* what) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere(std::string("expected ") + what);
  }
  std::string name = Peek().text;
  Advance();
  return name;
}

// ---------------------------------------------------------------------------
// Queries and clauses
// ---------------------------------------------------------------------------

Result<Query> Parser::ParseQuery() {
  Query query;
  SERAPH_ASSIGN_OR_RETURN(SingleQuery first, ParseSingleQuery());
  query.parts.push_back(std::move(first));
  while (ConsumeKeyword("UNION")) {
    bool all = ConsumeKeyword("ALL");
    SERAPH_ASSIGN_OR_RETURN(SingleQuery next, ParseSingleQuery());
    query.parts.push_back(std::move(next));
    query.union_all.push_back(all);
  }
  Consume(TokenKind::kSemicolon);
  SERAPH_RETURN_IF_ERROR(ExpectEnd());
  return query;
}

Result<SingleQuery> Parser::ParseSingleQuery() {
  SingleQuery out;
  SERAPH_ASSIGN_OR_RETURN(out.clauses, ParseClauseChain());
  SERAPH_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
  SERAPH_ASSIGN_OR_RETURN(out.ret.body, ParseProjectionBody());
  return out;
}

Result<std::vector<Clause>> Parser::ParseClauseChain() {
  std::vector<Clause> clauses;
  while (true) {
    if (PeekIsKeyword("OPTIONAL")) {
      Advance();
      SERAPH_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
      SERAPH_ASSIGN_OR_RETURN(MatchClause m, ParseMatchClause(true));
      clauses.emplace_back(std::move(m));
    } else if (ConsumeKeyword("MATCH")) {
      SERAPH_ASSIGN_OR_RETURN(MatchClause m, ParseMatchClause(false));
      clauses.emplace_back(std::move(m));
    } else if (ConsumeKeyword("UNWIND")) {
      SERAPH_ASSIGN_OR_RETURN(UnwindClause u, ParseUnwindClause());
      clauses.emplace_back(std::move(u));
    } else if (PeekIsKeyword("WITH")) {
      Advance();
      SERAPH_ASSIGN_OR_RETURN(WithClause w, ParseWithClause());
      clauses.emplace_back(std::move(w));
    } else {
      return clauses;
    }
  }
}

Result<MatchClause> Parser::ParseMatchClause(bool optional) {
  MatchClause clause;
  clause.optional = optional;
  SERAPH_ASSIGN_OR_RETURN(clause.patterns, ParsePatternList());
  if (ConsumeKeyword("WITHIN")) {
    SERAPH_ASSIGN_OR_RETURN(Duration width, ParseDurationLiteral());
    if (width <= Duration::FromMillis(0)) {
      return ErrorHere("WITHIN window width must be positive");
    }
    clause.within = width;
    if (ConsumeKeyword("FROM")) {
      SERAPH_ASSIGN_OR_RETURN(clause.from_stream,
                              ParseIdentifier("stream name"));
    }
  }
  if (ConsumeKeyword("WHERE")) {
    SERAPH_ASSIGN_OR_RETURN(clause.where, ParseExpression());
  }
  return clause;
}

Result<UnwindClause> Parser::ParseUnwindClause() {
  UnwindClause clause;
  SERAPH_ASSIGN_OR_RETURN(clause.list, ParseExpression());
  SERAPH_RETURN_IF_ERROR(ExpectKeyword("AS"));
  SERAPH_ASSIGN_OR_RETURN(clause.alias, ParseIdentifier("alias"));
  return clause;
}

Result<WithClause> Parser::ParseWithClause() {
  WithClause clause;
  SERAPH_ASSIGN_OR_RETURN(clause.body, ParseProjectionBody());
  if (ConsumeKeyword("WHERE")) {
    SERAPH_ASSIGN_OR_RETURN(clause.where, ParseExpression());
  }
  return clause;
}

Result<ProjectionBody> Parser::ParseProjectionBody(
    const std::vector<std::string>& stop_keywords) {
  ProjectionBody body;
  body.distinct = ConsumeKeyword("DISTINCT");
  auto at_stop = [this, &stop_keywords]() {
    if (AtEnd() || Peek().kind == TokenKind::kRBrace ||
        Peek().kind == TokenKind::kSemicolon) {
      return true;
    }
    for (const std::string& k : stop_keywords) {
      if (PeekIsKeyword(k)) return true;
    }
    return IsStructuralKeyword(Peek());
  };
  if (Peek().kind == TokenKind::kStar) {
    Advance();
    body.include_all = true;
    if (Consume(TokenKind::kComma)) {
      // '*, extra' is allowed.
    }
  }
  if (!body.include_all || Peek(0).kind != TokenKind::kEnd) {
    while (!at_stop()) {
      ProjectionItem item;
      SERAPH_ASSIGN_OR_RETURN(item.expr, ParseExpression());
      if (ConsumeKeyword("AS")) {
        SERAPH_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
      } else {
        item.alias = item.expr->ToString();
      }
      body.items.push_back(std::move(item));
      if (!Consume(TokenKind::kComma)) break;
    }
  }
  if (!body.include_all && body.items.empty()) {
    return ErrorHere("expected projection items");
  }
  if (ConsumeKeyword("ORDER")) {
    SERAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderByItem item;
      SERAPH_ASSIGN_OR_RETURN(item.expr, ParseExpression());
      if (ConsumeKeyword("DESC") || ConsumeKeyword("DESCENDING")) {
        item.ascending = false;
      } else if (ConsumeKeyword("ASC") || ConsumeKeyword("ASCENDING")) {
        item.ascending = true;
      }
      body.order_by.push_back(std::move(item));
      if (!Consume(TokenKind::kComma)) break;
    }
  }
  if (ConsumeKeyword("SKIP")) {
    SERAPH_ASSIGN_OR_RETURN(body.skip, ParseExpression());
  }
  if (ConsumeKeyword("LIMIT")) {
    SERAPH_ASSIGN_OR_RETURN(body.limit, ParseExpression());
  }
  return body;
}

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

Result<std::vector<PathPattern>> Parser::ParsePatternList() {
  std::vector<PathPattern> patterns;
  while (true) {
    SERAPH_ASSIGN_OR_RETURN(PathPattern p, ParsePathPattern());
    patterns.push_back(std::move(p));
    if (!Consume(TokenKind::kComma)) break;
  }
  return patterns;
}

Result<PathPattern> Parser::ParsePathPattern() {
  PathPattern path;
  // Optional `q = ` path naming.
  if (Peek().kind == TokenKind::kIdentifier &&
      Peek(1).kind == TokenKind::kEq &&
      !PeekIsKeyword("shortestPath") && !PeekIsKeyword("allShortestPaths")) {
    path.path_variable = Peek().text;
    Advance();
    Advance();
  }
  bool wrapped = false;
  if (PeekIsKeyword("shortestPath")) {
    Advance();
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    path.mode = PathMode::kShortest;
    wrapped = true;
  } else if (PeekIsKeyword("allShortestPaths")) {
    Advance();
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    path.mode = PathMode::kAllShortest;
    wrapped = true;
  }
  SERAPH_ASSIGN_OR_RETURN(NodePattern first, ParseNodePattern());
  path.nodes.push_back(std::move(first));
  while (Peek().kind == TokenKind::kMinus || Peek().kind == TokenKind::kLt) {
    SERAPH_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
    SERAPH_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
    path.rels.push_back(std::move(rel));
    path.nodes.push_back(std::move(node));
  }
  if (wrapped) SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  if (path.mode != PathMode::kNormal &&
      (path.rels.size() != 1 || !path.rels[0].variable_length)) {
    return ErrorHere(
        "shortestPath() requires exactly one variable-length relationship");
  }
  return path;
}

Result<NodePattern> Parser::ParseNodePattern() {
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  NodePattern node;
  if (Peek().kind == TokenKind::kIdentifier &&
      Peek(1).kind != TokenKind::kLParen) {
    node.variable = Peek().text;
    Advance();
  }
  while (Consume(TokenKind::kColon)) {
    SERAPH_ASSIGN_OR_RETURN(std::string label, ParseIdentifier("label"));
    node.labels.push_back(std::move(label));
  }
  if (Peek().kind == TokenKind::kLBrace) {
    SERAPH_ASSIGN_OR_RETURN(node.properties, ParsePropertyMap());
  }
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  return node;
}

Result<RelPattern> Parser::ParseRelPattern() {
  RelPattern rel;
  bool left_arrow = false;
  if (Consume(TokenKind::kLt)) {
    left_arrow = true;
  }
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
  if (Consume(TokenKind::kLBracket)) {
    if (Peek().kind == TokenKind::kIdentifier) {
      rel.variable = Peek().text;
      Advance();
    }
    if (Consume(TokenKind::kColon)) {
      while (true) {
        SERAPH_ASSIGN_OR_RETURN(std::string type, ParseIdentifier("type"));
        rel.types.push_back(std::move(type));
        if (Consume(TokenKind::kPipe)) {
          Consume(TokenKind::kColon);  // Tolerate `|:TYPE`.
          continue;
        }
        break;
      }
    }
    if (Consume(TokenKind::kStar)) {
      rel.variable_length = true;
      if (Peek().kind == TokenKind::kInteger) {
        rel.min_hops = Peek().int_value;
        Advance();
        if (Consume(TokenKind::kDotDot)) {
          if (Peek().kind == TokenKind::kInteger) {
            rel.max_hops = Peek().int_value;
            Advance();
          }
        } else {
          rel.max_hops = rel.min_hops;  // *n means exactly n.
        }
      } else if (Consume(TokenKind::kDotDot)) {
        if (Peek().kind == TokenKind::kInteger) {
          rel.max_hops = Peek().int_value;
          Advance();
        }
      }
    }
    if (Peek().kind == TokenKind::kLBrace) {
      SERAPH_ASSIGN_OR_RETURN(rel.properties, ParsePropertyMap());
    }
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
  } else {
    // Bracket-less form: the second dash of '--' / '-->' / '<--'.
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
  }
  bool right_arrow = false;
  if (!left_arrow && Consume(TokenKind::kGt)) {
    right_arrow = true;
  }
  if (left_arrow) {
    rel.direction = RelDirection::kIncoming;
  } else if (right_arrow) {
    rel.direction = RelDirection::kOutgoing;
  } else {
    rel.direction = RelDirection::kUndirected;
  }
  return rel;
}

Result<std::vector<std::pair<std::string, ExprPtr>>>
Parser::ParsePropertyMap() {
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
  std::vector<std::pair<std::string, ExprPtr>> entries;
  if (!Consume(TokenKind::kRBrace)) {
    while (true) {
      std::string key;
      if (Peek().kind == TokenKind::kString) {
        key = Peek().text;
        Advance();
      } else {
        SERAPH_ASSIGN_OR_RETURN(key, ParseIdentifier("property key"));
      }
      SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kColon));
      SERAPH_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
      entries.emplace_back(std::move(key), std::move(value));
      if (!Consume(TokenKind::kComma)) break;
    }
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Literals used by the Seraph front-end
// ---------------------------------------------------------------------------

Result<Duration> Parser::ParseDurationLiteral() {
  if (Peek().kind == TokenKind::kString ||
      Peek().kind == TokenKind::kIdentifier) {
    std::string text = Peek().text;
    auto parsed = Duration::Parse(text);
    if (!parsed.ok()) return ErrorHere(parsed.status().message());
    Advance();
    return parsed.value();
  }
  return ErrorHere("expected ISO-8601 duration (e.g. PT5M)");
}

Result<Timestamp> Parser::ParseDateTimeLiteral() {
  if (Peek().kind == TokenKind::kString) {
    auto parsed = Timestamp::Parse(Peek().text);
    if (!parsed.ok()) return ErrorHere(parsed.status().message());
    Advance();
    return parsed.value();
  }
  // Unquoted form: reassemble "YYYY-MM-DD[Thh:mm[:ss]]" from tokens.
  if (Peek().kind != TokenKind::kInteger) {
    return ErrorHere("expected ISO-8601 datetime");
  }
  std::string text = Peek().text;
  Advance();
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
  if (Peek().kind != TokenKind::kInteger) return ErrorHere("expected month");
  text += "-" + Peek().text;
  Advance();
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
  if (Peek().kind != TokenKind::kInteger) return ErrorHere("expected day");
  text += "-" + Peek().text;
  Advance();
  // Optional time part: an identifier like "T14" then ":mm[:ss]".
  if (Peek().kind == TokenKind::kIdentifier && !Peek().text.empty() &&
      (Peek().text[0] == 'T' || Peek().text[0] == 't')) {
    text += Peek().text;
    Advance();
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    if (Peek().kind != TokenKind::kInteger) return ErrorHere("expected minute");
    text += ":" + Peek().text;
    Advance();
    if (Peek().kind == TokenKind::kColon &&
        Peek(1).kind == TokenKind::kInteger) {
      Advance();
      text += ":" + Peek().text;
      Advance();
    }
    // The paper's informal trailing "h" lexes as a separate identifier.
    if (PeekIsKeyword("h")) Advance();
  }
  auto parsed = Timestamp::Parse(text);
  if (!parsed.ok()) return ErrorHere(parsed.status().message());
  return parsed.value();
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpression() {
  if (expr_depth_ >= kMaxExpressionDepth) {
    return Status::ParseError("expression nesting exceeds the maximum depth of " +
                              std::to_string(kMaxExpressionDepth));
  }
  ++expr_depth_;
  auto result = ParseOr();
  --expr_depth_;
  return result;
}

Result<ExprPtr> Parser::ParseStandaloneExpression() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
  SERAPH_RETURN_IF_ERROR(ExpectEnd());
  return e;
}

Result<ExprPtr> Parser::ParseOr() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseXor());
  while (ConsumeKeyword("OR")) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseXor());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseXor() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (ConsumeKeyword("XOR")) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kXor, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (ConsumeKeyword("AND")) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (ConsumeKeyword("NOT")) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

namespace {
bool TokenToCmpOp(TokenKind kind, CmpOp* op) {
  switch (kind) {
    case TokenKind::kEq:
      *op = CmpOp::kEq;
      return true;
    case TokenKind::kNeq:
      *op = CmpOp::kNeq;
      return true;
    case TokenKind::kLt:
      *op = CmpOp::kLt;
      return true;
    case TokenKind::kLe:
      *op = CmpOp::kLe;
      return true;
    case TokenKind::kGt:
      *op = CmpOp::kGt;
      return true;
    case TokenKind::kGe:
      *op = CmpOp::kGe;
      return true;
    default:
      return false;
  }
}
}  // namespace

Result<ExprPtr> Parser::ParseComparison() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr first, ParsePredicate());
  CmpOp op;
  if (!TokenToCmpOp(Peek().kind, &op)) return first;
  std::vector<ExprPtr> operands;
  std::vector<CmpOp> ops;
  operands.push_back(std::move(first));
  while (TokenToCmpOp(Peek().kind, &op)) {
    Advance();
    SERAPH_ASSIGN_OR_RETURN(ExprPtr next, ParsePredicate());
    operands.push_back(std::move(next));
    ops.push_back(op);
  }
  return std::make_unique<ComparisonExpr>(std::move(operands), std::move(ops));
}

Result<ExprPtr> Parser::ParsePredicate() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAddSub());
  while (true) {
    if (ConsumeKeyword("IN")) {
      SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddSub());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kIn, std::move(lhs),
                                         std::move(rhs));
      continue;
    }
    if (PeekIsKeyword("STARTS") && PeekIsKeyword("WITH", 1)) {
      Advance();
      Advance();
      SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddSub());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kStartsWith, std::move(lhs),
                                         std::move(rhs));
      continue;
    }
    if (PeekIsKeyword("ENDS") && PeekIsKeyword("WITH", 1)) {
      Advance();
      Advance();
      SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddSub());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kEndsWith, std::move(lhs),
                                         std::move(rhs));
      continue;
    }
    if (PeekIsKeyword("CONTAINS")) {
      Advance();
      SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAddSub());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kContains, std::move(lhs),
                                         std::move(rhs));
      continue;
    }
    if (PeekIsKeyword("IS")) {
      if (PeekIsKeyword("NULL", 1)) {
        Advance();
        Advance();
        lhs = std::make_unique<IsNullExpr>(std::move(lhs), false);
        continue;
      }
      if (PeekIsKeyword("NOT", 1) && PeekIsKeyword("NULL", 2)) {
        Advance();
        Advance();
        Advance();
        lhs = std::make_unique<IsNullExpr>(std::move(lhs), true);
        continue;
      }
    }
    return lhs;
  }
}

Result<ExprPtr> Parser::ParseAddSub() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMulDiv());
  while (true) {
    if (Consume(TokenKind::kPlus)) {
      SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulDiv());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAdd, std::move(lhs),
                                         std::move(rhs));
    } else if (Consume(TokenKind::kMinus)) {
      SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMulDiv());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kSubtract, std::move(lhs),
                                         std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<ExprPtr> Parser::ParseMulDiv() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePower());
  while (true) {
    BinaryOp op;
    if (Consume(TokenKind::kStar)) {
      op = BinaryOp::kMultiply;
    } else if (Consume(TokenKind::kSlash)) {
      op = BinaryOp::kDivide;
    } else if (Consume(TokenKind::kPercent)) {
      op = BinaryOp::kModulo;
    } else {
      return lhs;
    }
    SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePower());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParsePower() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  if (Consume(TokenKind::kCaret)) {
    // Right-associative.
    SERAPH_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePower());
    return std::make_unique<BinaryExpr>(BinaryOp::kPower, std::move(lhs),
                                        std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Consume(TokenKind::kMinus)) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(operand));
  }
  if (Consume(TokenKind::kPlus)) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return std::make_unique<UnaryExpr>(UnaryOp::kPlus, std::move(operand));
  }
  return ParsePostfix();
}

Result<ExprPtr> Parser::ParsePostfix() {
  SERAPH_ASSIGN_OR_RETURN(ExprPtr expr, ParseAtom());
  while (true) {
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      SERAPH_ASSIGN_OR_RETURN(std::string key,
                              ParseIdentifier("property name"));
      expr = std::make_unique<PropertyExpr>(std::move(expr), std::move(key));
      continue;
    }
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      SERAPH_ASSIGN_OR_RETURN(ExprPtr index, ParseExpression());
      SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      expr = std::make_unique<IndexExpr>(std::move(expr), std::move(index));
      continue;
    }
    return expr;
  }
}

Result<ExprPtr> Parser::ParseAtom() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      int64_t v = t.int_value;
      Advance();
      return std::make_unique<LiteralExpr>(Value::Int(v));
    }
    case TokenKind::kFloat: {
      double v = t.float_value;
      Advance();
      return std::make_unique<LiteralExpr>(Value::Float(v));
    }
    case TokenKind::kString: {
      std::string v = t.text;
      Advance();
      return std::make_unique<LiteralExpr>(Value::String(std::move(v)));
    }
    case TokenKind::kParameter: {
      std::string name = t.text;
      Advance();
      return std::make_unique<ParameterExpr>(std::move(name));
    }
    case TokenKind::kLParen: {
      Advance();
      SERAPH_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
      SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    case TokenKind::kLBracket:
      return ParseListAtom();
    case TokenKind::kLBrace: {
      SERAPH_ASSIGN_OR_RETURN(auto entries, ParsePropertyMap());
      return std::make_unique<MapExpr>(std::move(entries));
    }
    case TokenKind::kIdentifier:
      break;
    default:
      return ErrorHere("expected expression");
  }
  // Identifier-led atoms.
  if (PeekIsKeyword("true")) {
    Advance();
    return std::make_unique<LiteralExpr>(Value::Bool(true));
  }
  if (PeekIsKeyword("false")) {
    Advance();
    return std::make_unique<LiteralExpr>(Value::Bool(false));
  }
  if (PeekIsKeyword("null")) {
    Advance();
    return std::make_unique<LiteralExpr>(Value::Null());
  }
  if (PeekIsKeyword("CASE")) {
    Advance();
    return ParseCase();
  }
  // Quantified predicates: ALL/ANY/NONE/SINGLE '(' var IN list WHERE pred ')'.
  for (const auto& [kw, quant] :
       {std::pair<const char*, Quantifier>{"ALL", Quantifier::kAll},
        {"ANY", Quantifier::kAny},
        {"NONE", Quantifier::kNone},
        {"SINGLE", Quantifier::kSingle}}) {
    if (PeekIsKeyword(kw) && Peek(1).kind == TokenKind::kLParen) {
      Advance();
      Advance();
      SERAPH_ASSIGN_OR_RETURN(std::string var, ParseIdentifier("variable"));
      SERAPH_RETURN_IF_ERROR(ExpectKeyword("IN"));
      SERAPH_ASSIGN_OR_RETURN(ExprPtr list, ParseExpression());
      SERAPH_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
      SERAPH_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpression());
      SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return std::make_unique<QuantifierExpr>(quant, std::move(var),
                                              std::move(list),
                                              std::move(pred));
    }
  }
  // exists((a)-[:R]->(b)) — a '(' right after exists( signals a pattern
  // predicate rather than a value argument.
  if (PeekIsKeyword("exists") && Peek(1).kind == TokenKind::kLParen &&
      Peek(2).kind == TokenKind::kLParen) {
    Advance();
    Advance();
    SERAPH_ASSIGN_OR_RETURN(PathPattern pattern, ParsePathPattern());
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (!pattern.path_variable.empty()) {
      return ErrorHere("exists() patterns cannot bind a path variable");
    }
    return std::make_unique<ExistsPatternExpr>(std::move(pattern));
  }
  // reduce(acc = init, x IN list | body).
  if (PeekIsKeyword("reduce") && Peek(1).kind == TokenKind::kLParen) {
    Advance();
    Advance();
    SERAPH_ASSIGN_OR_RETURN(std::string acc, ParseIdentifier("accumulator"));
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kEq));
    SERAPH_ASSIGN_OR_RETURN(ExprPtr init, ParseExpression());
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    SERAPH_ASSIGN_OR_RETURN(std::string var, ParseIdentifier("variable"));
    SERAPH_RETURN_IF_ERROR(ExpectKeyword("IN"));
    SERAPH_ASSIGN_OR_RETURN(ExprPtr list, ParseExpression());
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kPipe));
    SERAPH_ASSIGN_OR_RETURN(ExprPtr body, ParseExpression());
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return std::make_unique<ReduceExpr>(std::move(acc), std::move(init),
                                        std::move(var), std::move(list),
                                        std::move(body));
  }
  // Function call or plain variable.
  std::string name = t.text;
  if (Peek(1).kind == TokenKind::kLParen) {
    Advance();
    Advance();
    return ParseFunctionCall(std::move(name));
  }
  Advance();
  return std::make_unique<VariableExpr>(std::move(name));
}

Result<ExprPtr> Parser::ParseFunctionCall(std::string name) {
  // '(' already consumed.
  bool count_star = false;
  bool distinct = false;
  std::vector<ExprPtr> args;
  if (Peek().kind == TokenKind::kStar &&
      EqualsIgnoreCase(name, "count")) {
    Advance();
    count_star = true;
  } else {
    distinct = ConsumeKeyword("DISTINCT");
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        SERAPH_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression());
        args.push_back(std::move(arg));
        if (!Consume(TokenKind::kComma)) break;
      }
    }
  }
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (!IsAggregateFunction(lower) && !IsScalarFunction(lower)) {
    return Status::ParseError("unknown function '" + name + "'");
  }
  return std::make_unique<FunctionCallExpr>(std::move(name), std::move(args),
                                            distinct, count_star);
}

Result<ExprPtr> Parser::ParseCase() {
  ExprPtr subject;
  if (!PeekIsKeyword("WHEN")) {
    SERAPH_ASSIGN_OR_RETURN(subject, ParseExpression());
  }
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  while (ConsumeKeyword("WHEN")) {
    SERAPH_ASSIGN_OR_RETURN(ExprPtr when, ParseExpression());
    SERAPH_RETURN_IF_ERROR(ExpectKeyword("THEN"));
    SERAPH_ASSIGN_OR_RETURN(ExprPtr then, ParseExpression());
    branches.emplace_back(std::move(when), std::move(then));
  }
  if (branches.empty()) {
    return ErrorHere("CASE requires at least one WHEN branch");
  }
  ExprPtr else_value;
  if (ConsumeKeyword("ELSE")) {
    SERAPH_ASSIGN_OR_RETURN(else_value, ParseExpression());
  }
  SERAPH_RETURN_IF_ERROR(ExpectKeyword("END"));
  return std::make_unique<CaseExpr>(std::move(subject), std::move(branches),
                                    std::move(else_value));
}

Result<ExprPtr> Parser::ParseListAtom() {
  // '[' — either a list literal or a list comprehension
  // [x IN list WHERE p | proj].
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
  if (Peek().kind == TokenKind::kIdentifier && PeekIsKeyword("IN", 1)) {
    std::string var = Peek().text;
    Advance();
    Advance();
    SERAPH_ASSIGN_OR_RETURN(ExprPtr list, ParseExpression());
    ExprPtr where;
    if (ConsumeKeyword("WHERE")) {
      SERAPH_ASSIGN_OR_RETURN(where, ParseExpression());
    }
    ExprPtr projection;
    if (Consume(TokenKind::kPipe)) {
      SERAPH_ASSIGN_OR_RETURN(projection, ParseExpression());
    }
    SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    return std::make_unique<ListComprehensionExpr>(
        std::move(var), std::move(list), std::move(where),
        std::move(projection));
  }
  std::vector<ExprPtr> items;
  if (Peek().kind != TokenKind::kRBracket) {
    while (true) {
      SERAPH_ASSIGN_OR_RETURN(ExprPtr item, ParseExpression());
      items.push_back(std::move(item));
      if (!Consume(TokenKind::kComma)) break;
    }
  }
  SERAPH_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
  return std::make_unique<ListExpr>(std::move(items));
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

Result<Query> ParseCypherQuery(std::string_view text) {
  SERAPH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> ParseCypherExpression(std::string_view text) {
  SERAPH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace seraph
