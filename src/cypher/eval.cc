#include "cypher/eval.h"

#include <cmath>

#include "cypher/functions.h"
#include "cypher/matcher.h"
#include "table/time_table.h"

namespace seraph {

Result<Value> EvalContext::Lookup(const std::string& name) const {
  for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
    if (it->first == name) return it->second;
  }
  if (record_ != nullptr) {
    const Value* v = record_->Find(name);
    if (v != nullptr) return *v;
  }
  if (window_.has_value()) {
    if (name == kWinStartField) return Value::DateTime(window_->start);
    if (name == kWinEndField) return Value::DateTime(window_->end);
  }
  return Status::EvaluationError("unbound variable '" + name + "'");
}

// ---------------------------------------------------------------------------
// Ternary-logic helpers
// ---------------------------------------------------------------------------

Value CypherEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_number() && b.is_number()) {
    return Value::Bool(a.AsNumber() == b.AsNumber());
  }
  if (a.kind() != b.kind()) return Value::Bool(false);
  if (a.is_list()) {
    const auto& la = a.AsList();
    const auto& lb = b.AsList();
    if (la.size() != lb.size()) return Value::Bool(false);
    bool saw_null = false;
    for (size_t i = 0; i < la.size(); ++i) {
      Value e = CypherEquals(la[i], lb[i]);
      if (e.is_null()) {
        saw_null = true;
      } else if (!e.AsBool()) {
        return Value::Bool(false);
      }
    }
    return saw_null ? Value::Null() : Value::Bool(true);
  }
  return Value::Bool(a == b);
}

namespace {

// Comparable pairs for ordering operators; incomparable → null.
bool Orderable(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kString:
    case ValueKind::kBool:
    case ValueKind::kDateTime:
    case ValueKind::kDuration:
      return true;
    default:
      return false;
  }
}

}  // namespace

Value CypherCompare(CmpOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (op == CmpOp::kEq) return CypherEquals(a, b);
  if (op == CmpOp::kNeq) return TernaryNot(CypherEquals(a, b));
  if (!Orderable(a, b)) return Value::Null();
  int c = Value::Compare(a, b);
  switch (op) {
    case CmpOp::kLt:
      return Value::Bool(c < 0);
    case CmpOp::kLe:
      return Value::Bool(c <= 0);
    case CmpOp::kGt:
      return Value::Bool(c > 0);
    case CmpOp::kGe:
      return Value::Bool(c >= 0);
    case CmpOp::kEq:
    case CmpOp::kNeq:
      break;
  }
  return Value::Null();
}

Value TernaryAnd(const Value& a, const Value& b) {
  bool a_false = a.is_bool() && !a.AsBool();
  bool b_false = b.is_bool() && !b.AsBool();
  if (a_false || b_false) return Value::Bool(false);
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(a.AsBool() && b.AsBool());
}

Value TernaryOr(const Value& a, const Value& b) {
  bool a_true = a.is_bool() && a.AsBool();
  bool b_true = b.is_bool() && b.AsBool();
  if (a_true || b_true) return Value::Bool(true);
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(a.AsBool() || b.AsBool());
}

Value TernaryXor(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(a.AsBool() != b.AsBool());
}

Value TernaryNot(const Value& a) {
  if (a.is_null()) return Value::Null();
  return Value::Bool(!a.AsBool());
}

bool IsTruthy(const Value& v) { return v.is_bool() && v.AsBool(); }

Value CypherIn(const Value& element, const Value& list) {
  if (list.is_null()) return Value::Null();
  if (!list.is_list()) return Value::Null();
  bool saw_null = false;
  for (const Value& item : list.AsList()) {
    Value eq = CypherEquals(element, item);
    if (eq.is_null()) {
      saw_null = true;
    } else if (eq.AsBool()) {
      return Value::Bool(true);
    }
  }
  if (element.is_null() && !list.AsList().empty()) return Value::Null();
  return saw_null ? Value::Null() : Value::Bool(false);
}

Result<Value> CypherArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  // String concatenation (string + anything printable, as in Cypher).
  if (op == BinaryOp::kAdd && (a.is_string() || b.is_string())) {
    if (a.is_list() || b.is_list()) {
      return Status::EvaluationError("cannot add STRING and LIST");
    }
    return Value::String(a.ToString() + b.ToString());
  }
  // List concatenation / append.
  if (op == BinaryOp::kAdd && (a.is_list() || b.is_list())) {
    Value::List out;
    if (a.is_list()) {
      out = a.AsList();
    } else {
      out.push_back(a);
    }
    if (b.is_list()) {
      const auto& lb = b.AsList();
      out.insert(out.end(), lb.begin(), lb.end());
    } else {
      out.push_back(b);
    }
    return Value::MakeList(std::move(out));
  }
  // Temporal arithmetic.
  if (a.is_datetime() && b.is_duration()) {
    if (op == BinaryOp::kAdd) {
      return Value::DateTime(a.AsDateTime() + b.AsDuration());
    }
    if (op == BinaryOp::kSubtract) {
      return Value::DateTime(a.AsDateTime() - b.AsDuration());
    }
  }
  if (a.is_duration() && b.is_datetime() && op == BinaryOp::kAdd) {
    return Value::DateTime(b.AsDateTime() + a.AsDuration());
  }
  if (a.is_datetime() && b.is_datetime() && op == BinaryOp::kSubtract) {
    return Value::Dur(a.AsDateTime() - b.AsDateTime());
  }
  if (a.is_duration() && b.is_duration()) {
    if (op == BinaryOp::kAdd) return Value::Dur(a.AsDuration() + b.AsDuration());
    if (op == BinaryOp::kSubtract) {
      return Value::Dur(a.AsDuration() - b.AsDuration());
    }
  }
  if (a.is_duration() && b.is_int() && op == BinaryOp::kMultiply) {
    return Value::Dur(a.AsDuration() * b.AsInt());
  }
  if (a.is_int() && b.is_duration() && op == BinaryOp::kMultiply) {
    return Value::Dur(b.AsDuration() * a.AsInt());
  }
  if (!a.is_number() || !b.is_number()) {
    return Status::EvaluationError(
        std::string("type error: cannot apply arithmetic to ") +
        ValueKindToString(a.kind()) + " and " + ValueKindToString(b.kind()));
  }
  bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(a.AsInt() + b.AsInt());
      return Value::Float(a.AsNumber() + b.AsNumber());
    case BinaryOp::kSubtract:
      if (both_int) return Value::Int(a.AsInt() - b.AsInt());
      return Value::Float(a.AsNumber() - b.AsNumber());
    case BinaryOp::kMultiply:
      if (both_int) return Value::Int(a.AsInt() * b.AsInt());
      return Value::Float(a.AsNumber() * b.AsNumber());
    case BinaryOp::kDivide:
      if (both_int) {
        if (b.AsInt() == 0) {
          return Status::EvaluationError("integer division by zero");
        }
        return Value::Int(a.AsInt() / b.AsInt());
      }
      return Value::Float(a.AsNumber() / b.AsNumber());
    case BinaryOp::kModulo:
      if (both_int) {
        if (b.AsInt() == 0) {
          return Status::EvaluationError("integer modulo by zero");
        }
        return Value::Int(a.AsInt() % b.AsInt());
      }
      return Value::Float(std::fmod(a.AsNumber(), b.AsNumber()));
    case BinaryOp::kPower:
      return Value::Float(std::pow(a.AsNumber(), b.AsNumber()));
    default:
      return Status::Internal("non-arithmetic op in CypherArithmetic");
  }
}

// ---------------------------------------------------------------------------
// Expr::Eval implementations
// ---------------------------------------------------------------------------

void Expr::CollectAggregates(std::vector<const Expr*>* out) const {
  if (IsAggregateCall()) {
    out->push_back(this);
    return;  // Nested aggregates are rejected at parse time.
  }
  VisitChildren([out](const Expr& child) { child.CollectAggregates(out); });
}

bool Expr::ContainsAggregate() const {
  std::vector<const Expr*> aggs;
  CollectAggregates(&aggs);
  return !aggs.empty();
}

bool Expr::ContainsVolatile() const {
  if (IsVolatile()) return true;
  bool found = false;
  VisitChildren([&found](const Expr& child) {
    if (!found && child.ContainsVolatile()) found = true;
  });
  return found;
}

Result<Value> LiteralExpr::Eval(EvalContext& ctx) const {
  (void)ctx;
  return value_;
}

Result<Value> ParameterExpr::Eval(EvalContext& ctx) const {
  if (ctx.parameters() != nullptr) {
    auto it = ctx.parameters()->find(name_);
    if (it != ctx.parameters()->end()) return it->second;
  }
  return Status::EvaluationError("missing parameter '$" + name_ + "'");
}

Result<Value> VariableExpr::Eval(EvalContext& ctx) const {
  return ctx.Lookup(name_);
}

namespace {

// Component accessors on temporal values (datetime.year, duration.minutes,
// ...), mirroring Cypher's temporal instant/duration fields.
Result<Value> TemporalComponent(const Value& object, const std::string& key) {
  if (object.is_datetime()) {
    Timestamp t = object.AsDateTime();
    // Re-derive civil fields from the canonical rendering (authoritative
    // with the same civil conversion used everywhere else).
    std::string iso = t.ToString();  // YYYY-MM-DDTHH:MM[:SS[.mmm]]
    auto piece = [&iso](size_t pos, size_t len) {
      return std::stoll(iso.substr(pos, len));
    };
    if (key == "year") return Value::Int(piece(0, 4));
    if (key == "month") return Value::Int(piece(5, 2));
    if (key == "day") return Value::Int(piece(8, 2));
    if (key == "hour") return Value::Int(piece(11, 2));
    if (key == "minute") return Value::Int(piece(14, 2));
    if (key == "second") {
      return Value::Int(iso.size() >= 19 ? piece(17, 2) : 0);
    }
    if (key == "epochMillis") return Value::Int(t.millis());
    return Status::EvaluationError("unknown DATETIME component '" + key +
                                   "'");
  }
  Duration d = object.AsDuration();
  if (key == "milliseconds") return Value::Int(d.millis());
  if (key == "seconds") return Value::Int(d.millis() / 1000);
  if (key == "minutes") return Value::Int(d.millis() / 60'000);
  if (key == "hours") return Value::Int(d.millis() / 3'600'000);
  if (key == "days") return Value::Int(d.millis() / 86'400'000);
  return Status::EvaluationError("unknown DURATION component '" + key + "'");
}

}  // namespace

Result<Value> PropertyExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value object, object_->Eval(ctx));
  if (object.is_null()) return Value::Null();
  if (object.is_map()) {
    const auto& map = object.AsMap();
    auto it = map.find(key_);
    return it == map.end() ? Value::Null() : it->second;
  }
  if (object.is_node()) {
    return ctx.graph()->NodeProperty(object.AsNode(), key_);
  }
  if (object.is_relationship()) {
    return ctx.graph()->RelationshipProperty(object.AsRelationship(), key_);
  }
  if (object.is_datetime() || object.is_duration()) {
    return TemporalComponent(object, key_);
  }
  return Status::EvaluationError(
      std::string("property access on ") + ValueKindToString(object.kind()));
}

Result<Value> IndexExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value object, object_->Eval(ctx));
  SERAPH_ASSIGN_OR_RETURN(Value index, index_->Eval(ctx));
  if (object.is_null() || index.is_null()) return Value::Null();
  if (object.is_list()) {
    if (!index.is_int()) {
      return Status::EvaluationError("list index must be an integer");
    }
    const auto& list = object.AsList();
    int64_t i = index.AsInt();
    if (i < 0) i += static_cast<int64_t>(list.size());
    if (i < 0 || i >= static_cast<int64_t>(list.size())) return Value::Null();
    return list[static_cast<size_t>(i)];
  }
  if (object.is_map()) {
    if (!index.is_string()) {
      return Status::EvaluationError("map key must be a string");
    }
    const auto& map = object.AsMap();
    auto it = map.find(index.AsString());
    return it == map.end() ? Value::Null() : it->second;
  }
  return Status::EvaluationError(std::string("cannot index ") +
                                 ValueKindToString(object.kind()));
}

Result<Value> ListExpr::Eval(EvalContext& ctx) const {
  Value::List out;
  out.reserve(items_.size());
  for (const ExprPtr& item : items_) {
    SERAPH_ASSIGN_OR_RETURN(Value v, item->Eval(ctx));
    out.push_back(std::move(v));
  }
  return Value::MakeList(std::move(out));
}

Result<Value> MapExpr::Eval(EvalContext& ctx) const {
  Value::Map out;
  for (const auto& [key, expr] : entries_) {
    SERAPH_ASSIGN_OR_RETURN(Value v, expr->Eval(ctx));
    out[key] = std::move(v);
  }
  return Value::MakeMap(std::move(out));
}

Result<Value> UnaryExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx));
  switch (op_) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      if (!v.is_bool()) {
        return Status::EvaluationError("NOT requires a boolean");
      }
      return Value::Bool(!v.AsBool());
    case UnaryOp::kNegate:
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_float()) return Value::Float(-v.AsFloat());
      if (v.is_duration()) return Value::Dur(-v.AsDuration());
      return Status::EvaluationError("unary minus requires a number");
    case UnaryOp::kPlus:
      if (v.is_null() || v.is_number()) return v;
      return Status::EvaluationError("unary plus requires a number");
  }
  return Status::Internal("bad unary op");
}

Result<Value> BinaryExpr::Eval(EvalContext& ctx) const {
  // Short-circuiting ternary connectives.
  if (op_ == BinaryOp::kAnd) {
    SERAPH_ASSIGN_OR_RETURN(Value a, lhs_->Eval(ctx));
    if (a.is_bool() && !a.AsBool()) return Value::Bool(false);
    SERAPH_ASSIGN_OR_RETURN(Value b, rhs_->Eval(ctx));
    return TernaryAnd(a, b);
  }
  if (op_ == BinaryOp::kOr) {
    SERAPH_ASSIGN_OR_RETURN(Value a, lhs_->Eval(ctx));
    if (a.is_bool() && a.AsBool()) return Value::Bool(true);
    SERAPH_ASSIGN_OR_RETURN(Value b, rhs_->Eval(ctx));
    return TernaryOr(a, b);
  }
  SERAPH_ASSIGN_OR_RETURN(Value a, lhs_->Eval(ctx));
  SERAPH_ASSIGN_OR_RETURN(Value b, rhs_->Eval(ctx));
  switch (op_) {
    case BinaryOp::kXor:
      return TernaryXor(a, b);
    case BinaryOp::kIn:
      return CypherIn(a, b);
    case BinaryOp::kStartsWith:
    case BinaryOp::kEndsWith:
    case BinaryOp::kContains: {
      if (a.is_null() || b.is_null()) return Value::Null();
      if (!a.is_string() || !b.is_string()) {
        return Status::EvaluationError(
            "string predicate requires string operands");
      }
      const std::string& s = a.AsString();
      const std::string& t = b.AsString();
      if (op_ == BinaryOp::kStartsWith) {
        return Value::Bool(s.size() >= t.size() &&
                           s.compare(0, t.size(), t) == 0);
      }
      if (op_ == BinaryOp::kEndsWith) {
        return Value::Bool(s.size() >= t.size() &&
                           s.compare(s.size() - t.size(), t.size(), t) == 0);
      }
      return Value::Bool(s.find(t) != std::string::npos);
    }
    default:
      return CypherArithmetic(op_, a, b);
  }
}

Result<Value> ComparisonExpr::Eval(EvalContext& ctx) const {
  // e1 op1 e2 op2 e3 ≡ (e1 op1 e2) AND (e2 op2 e3), each ternary.
  Value acc = Value::Bool(true);
  SERAPH_ASSIGN_OR_RETURN(Value prev, operands_[0]->Eval(ctx));
  for (size_t i = 0; i < ops_.size(); ++i) {
    SERAPH_ASSIGN_OR_RETURN(Value next, operands_[i + 1]->Eval(ctx));
    Value cmp = CypherCompare(ops_[i], prev, next);
    acc = TernaryAnd(acc, cmp);
    if (acc.is_bool() && !acc.AsBool()) return acc;  // Definitively false.
    prev = std::move(next);
  }
  return acc;
}

Result<Value> IsNullExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx));
  return Value::Bool(negated_ ? !v.is_null() : v.is_null());
}

FunctionCallExpr::FunctionCallExpr(std::string name, std::vector<ExprPtr> args,
                                   bool distinct, bool count_star)
    : args_(std::move(args)), distinct_(distinct), count_star_(count_star) {
  name_.reserve(name.size());
  for (char c : name) {
    name_ += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  is_aggregate_ = IsAggregateFunction(name_);
}

Result<Value> FunctionCallExpr::Eval(EvalContext& ctx) const {
  if (is_aggregate_) {
    const auto* results = ctx.aggregate_results();
    if (results == nullptr) {
      return Status::SemanticError("aggregate function '" + name_ +
                                   "' used outside a projection");
    }
    auto it = results->find(this);
    if (it == results->end()) {
      return Status::Internal("aggregate result not computed for '" + name_ +
                              "'");
    }
    return it->second;
  }
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    SERAPH_ASSIGN_OR_RETURN(Value v, arg->Eval(ctx));
    args.push_back(std::move(v));
  }
  return CallScalarFunction(name_, args, ctx);
}

Result<Value> ListComprehensionExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value list, list_->Eval(ctx));
  if (list.is_null()) return Value::Null();
  if (!list.is_list()) {
    return Status::EvaluationError("list comprehension requires a list");
  }
  Value::List out;
  for (const Value& item : list.AsList()) {
    ctx.PushLocal(var_, item);
    bool keep = true;
    if (where_ != nullptr) {
      auto cond = where_->Eval(ctx);
      if (!cond.ok()) {
        ctx.PopLocal();
        return cond.status();
      }
      keep = IsTruthy(cond.value());
    }
    if (keep) {
      if (projection_ != nullptr) {
        auto projected = projection_->Eval(ctx);
        if (!projected.ok()) {
          ctx.PopLocal();
          return projected.status();
        }
        out.push_back(std::move(projected).value());
      } else {
        out.push_back(item);
      }
    }
    ctx.PopLocal();
  }
  return Value::MakeList(std::move(out));
}

Result<Value> ReduceExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value acc, init_->Eval(ctx));
  SERAPH_ASSIGN_OR_RETURN(Value list, list_->Eval(ctx));
  if (list.is_null()) return Value::Null();
  if (!list.is_list()) {
    return Status::EvaluationError("reduce() requires a list");
  }
  for (const Value& item : list.AsList()) {
    ctx.PushLocal(acc_var_, std::move(acc));
    ctx.PushLocal(var_, item);
    auto next = body_->Eval(ctx);
    ctx.PopLocal();
    ctx.PopLocal();
    if (!next.ok()) return next.status();
    acc = std::move(next).value();
  }
  return acc;
}

Result<Value> QuantifierExpr::Eval(EvalContext& ctx) const {
  SERAPH_ASSIGN_OR_RETURN(Value list, list_->Eval(ctx));
  if (list.is_null()) return Value::Null();
  if (!list.is_list()) {
    return Status::EvaluationError("quantified predicate requires a list");
  }
  int64_t true_count = 0;
  bool saw_null = false;
  for (const Value& item : list.AsList()) {
    ctx.PushLocal(var_, item);
    auto pred = predicate_->Eval(ctx);
    ctx.PopLocal();
    if (!pred.ok()) return pred.status();
    const Value& p = pred.value();
    if (p.is_null()) {
      saw_null = true;
    } else if (p.AsBool()) {
      ++true_count;
    } else {
      // Definitive false: ALL fails immediately.
      if (quantifier_ == Quantifier::kAll) return Value::Bool(false);
    }
  }
  int64_t n = static_cast<int64_t>(list.AsList().size());
  switch (quantifier_) {
    case Quantifier::kAll:
      if (true_count == n) return Value::Bool(true);
      return saw_null ? Value::Null() : Value::Bool(true_count == n);
    case Quantifier::kAny:
      if (true_count > 0) return Value::Bool(true);
      return saw_null ? Value::Null() : Value::Bool(false);
    case Quantifier::kNone:
      if (true_count > 0) return Value::Bool(false);
      return saw_null ? Value::Null() : Value::Bool(true);
    case Quantifier::kSingle:
      if (saw_null) return Value::Null();
      return Value::Bool(true_count == 1);
  }
  return Status::Internal("bad quantifier");
}

Result<Value> ExistsPatternExpr::Eval(EvalContext& ctx) const {
  if (ctx.graph() == nullptr) {
    return Status::EvaluationError("exists() pattern requires a graph");
  }
  Record empty;
  const Record* input = ctx.record() != nullptr ? ctx.record() : &empty;
  std::vector<Record> out;
  SERAPH_RETURN_IF_ERROR(
      MatchSinglePattern(pattern_, *ctx.graph(), *input, ctx, &out));
  return Value::Bool(!out.empty());
}

Result<Value> CaseExpr::Eval(EvalContext& ctx) const {
  if (subject_ != nullptr) {
    SERAPH_ASSIGN_OR_RETURN(Value subject, subject_->Eval(ctx));
    for (const auto& [when, then] : branches_) {
      SERAPH_ASSIGN_OR_RETURN(Value candidate, when->Eval(ctx));
      Value eq = CypherEquals(subject, candidate);
      if (IsTruthy(eq)) return then->Eval(ctx);
    }
  } else {
    for (const auto& [when, then] : branches_) {
      SERAPH_ASSIGN_OR_RETURN(Value cond, when->Eval(ctx));
      if (IsTruthy(cond)) return then->Eval(ctx);
    }
  }
  if (else_ != nullptr) return else_->Eval(ctx);
  return Value::Null();
}

}  // namespace seraph
