// The RideAnywhere micro-mobility workload (Section 2).
//
// `BuildRunningExampleStream` replicates Figure 1 event-by-event; the
// companion query strings are our (OCR-repaired) Listing 1 and Listing 5,
// whose outputs are pinned to the paper's Tables 2/4/5/6 in
// tests/running_example_test.cc.
//
// `GenerateBikeSharingStream` scales the same schema: stations, bikes,
// users, 5-minute batched rental/return events, and a configurable
// fraction of "free-period trick" users who chain sub-20-minute rentals
// (the fraud pattern Listing 5 detects).
//
// Modelling notes (documented deviations):
//  * E-bikes carry both labels {Bike, E-Bike} — the paper's Listing 1
//    matches (b:Bike) yet its Table 2 includes a rental of E-Bike 5, which
//    is consistent only under the label-hierarchy convention the paper
//    itself describes in Section 3.1 (":superclass:subclass").
#ifndef SERAPH_WORKLOADS_BIKE_SHARING_H_
#define SERAPH_WORKLOADS_BIKE_SHARING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "stream/graph_stream.h"
#include "temporal/timestamp.h"

namespace seraph {
namespace workloads {

// One stream event: a property graph of the rentals/returns of the last
// batch period plus its arrival timestamp.
struct Event {
  PropertyGraph graph;
  Timestamp timestamp;
};

// The five events of Figure 1 (2022-08-14, 14:45h–15:40h).
std::vector<Event> BuildRunningExampleStream();

// The merged graph of Figure 2 (for union/snapshot golden tests).
PropertyGraph BuildRunningExampleMergedGraph();

// Our repaired Listing 1: the one-time Cypher workaround over a merged
// store, windowing by val_time predicates against datetime().
std::string RunningExampleCypherQuery();

// Our Listing 5: the Seraph continuous query (REGISTER QUERY
// student_trick ... EMIT ... ON ENTERING EVERY PT5M).
std::string RunningExampleSeraphQuery();

// Scaled synthetic generator.
struct BikeSharingConfig {
  int num_stations = 20;
  int num_bikes = 100;
  int num_users = 200;
  // Fraction of users applying the subsequent-rental trick.
  double fraud_fraction = 0.1;
  // Batch period between events (the paper's 5 minutes).
  Duration event_period = Duration::FromMinutes(5);
  int num_events = 48;  // 4 hours at 5-minute batches.
  // Probability that an idle user starts a rental in a batch period.
  double rental_probability = 0.3;
  Timestamp start = Timestamp::FromMillis(0);
  uint64_t seed = 42;
};

std::vector<Event> GenerateBikeSharingStream(const BikeSharingConfig& config);

// Appends `events` to `stream`; events must be in timestamp order.
Status AppendEvents(const std::vector<Event>& events,
                    PropertyGraphStream* stream);

}  // namespace workloads
}  // namespace seraph

#endif  // SERAPH_WORKLOADS_BIKE_SHARING_H_
