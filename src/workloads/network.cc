#include "workloads/network.h"

#include <random>

#include "graph/graph_builder.h"

namespace seraph {
namespace workloads {

namespace {

// Node-id layout within one tick's topology copy (each tick is a disjoint
// copy so that per-tick route lengths remain observable inside the
// window's union — see DESIGN.md §5).
constexpr int64_t kTickStride = 1'000'000;
constexpr int64_t kEgressId = 1;
constexpr int64_t kRackBase = 100;
constexpr int64_t kSwitchBase = 1'000;

}  // namespace

std::vector<Event> GenerateNetworkStream(const NetworkConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<Event> events;
  for (int tick = 0; tick < config.num_ticks; ++tick) {
    const int64_t offset = static_cast<int64_t>(tick) * kTickStride;
    GraphBuilder b;
    int64_t rel = offset;  // Relationship ids share the tick's id space.
    auto switch_id = [&](int layer, int j) {
      return offset + kSwitchBase * (layer + 1) + j;
    };
    // Egress router.
    b.Node(offset + kEgressId, {"Router"},
           {{"role", Value::String("egress")}, {"tick", Value::Int(tick)}});
    // Switch fabric.
    for (int layer = 0; layer < config.layers; ++layer) {
      for (int j = 0; j < config.switches_per_layer; ++j) {
        b.Node(switch_id(layer, j), {"Switch"},
               {{"tick", Value::Int(tick)}});
      }
    }
    // Inter-layer redundancy: each switch uplinks to two switches of the
    // next layer; the last layer connects to the egress router.
    for (int layer = 0; layer + 1 < config.layers; ++layer) {
      for (int j = 0; j < config.switches_per_layer; ++j) {
        b.Rel(++rel, switch_id(layer, j), switch_id(layer + 1, j),
              "CONNECTS");
        b.Rel(++rel, switch_id(layer, j),
              switch_id(layer + 1, (j + 1) % config.switches_per_layer),
              "CONNECTS");
      }
    }
    for (int j = 0; j < config.switches_per_layer; ++j) {
      b.Rel(++rel, switch_id(config.layers - 1, j), offset + kEgressId,
            "CONNECTS");
    }
    // Racks: a primary uplink into layer 1 (absent when failed this tick)
    // and an always-on backup link to the neighbouring rack.
    for (int i = 0; i < config.num_racks; ++i) {
      b.Node(offset + kRackBase + i, {"Rack"},
             {{"rack_id", Value::Int(i)}, {"tick", Value::Int(tick)}});
    }
    for (int i = 0; i < config.num_racks; ++i) {
      bool failed = unit(rng) < config.failure_probability;
      if (!failed) {
        b.Rel(++rel, offset + kRackBase + i,
              switch_id(0, i % config.switches_per_layer), "CONNECTS");
      }
      b.Rel(++rel, offset + kRackBase + i,
            offset + kRackBase + (i + 1) % config.num_racks, "CONNECTS");
    }
    Timestamp at = config.start +
                   Duration::FromMillis(config.tick_period.millis() *
                                        static_cast<int64_t>(tick + 1));
    events.push_back(Event{std::move(b).Build(), at});
  }
  return events;
}

std::string NetworkMonitoringSeraphQuery(Timestamp starting_at) {
  // μ = 5 hops, σ = 0.3 are the configuration-derived baseline the paper
  // quotes; routes with z-score > 3 are anomalous.
  return "REGISTER QUERY network_monitor STARTING AT '" +
         starting_at.ToString() + "'\n" + R"(
    {
      MATCH p = shortestPath(
          (r:Rack)-[:CONNECTS*..15]-(e:Router {role: 'egress',
                                               tick: r.tick}))
      WITHIN PT10M
      WITH r, p, length(p) AS len
      WHERE (len - 5.0) / 0.3 > 3.0
      EMIT r.rack_id, r.tick, len
      SNAPSHOT EVERY PT1M
    }
  )";
}

}  // namespace workloads
}  // namespace seraph
