// The crime-investigation use case (Section 4.2): a POLE
// (Person-Object-Location-Event) graph streamed as sighting and crime
// events; the continuous query surfaces persons seen at a crime scene
// within the last 30 minutes.
#ifndef SERAPH_WORKLOADS_POLE_H_
#define SERAPH_WORKLOADS_POLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/bike_sharing.h"  // Event

namespace seraph {
namespace workloads {

struct PoleConfig {
  int num_persons = 50;
  int num_locations = 10;
  // Sightings per batch period (persons passing by locations).
  int sightings_per_event = 20;
  // Probability a batch period contains a crime event.
  double crime_probability = 0.2;
  int num_events = 24;
  Duration event_period = Duration::FromMinutes(5);
  Timestamp start = Timestamp::FromMillis(0);
  uint64_t seed = 11;
};

std::vector<Event> GeneratePoleStream(const PoleConfig& config);

// Our reconstruction of the Table-1 surveillance query: persons present at
// a location where a crime occurred, within a 30-minute window, reported
// incrementally (ON ENTERING) every 5 minutes.
std::string CrimeInvestigationSeraphQuery(Timestamp starting_at);

}  // namespace workloads
}  // namespace seraph

#endif  // SERAPH_WORKLOADS_POLE_H_
