// The network-monitoring use case (Section 4.1): data-center topology
// snapshots streamed once per tick, with transient link failures that
// lengthen rack→egress routes. The Seraph query flags routes whose length
// has a z-score above 3 relative to the configured baseline (μ = 5 hops,
// σ = 0.3 — the numbers the paper quotes).
#ifndef SERAPH_WORKLOADS_NETWORK_H_
#define SERAPH_WORKLOADS_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/bike_sharing.h"  // Event

namespace seraph {
namespace workloads {

struct NetworkConfig {
  int num_racks = 8;
  // Switch layers between racks and the egress router; the fault-free
  // rack→egress route is `layers + 1` hops.
  int layers = 4;
  int switches_per_layer = 4;
  // Probability that a primary uplink is down in a given tick, forcing a
  // detour over a (longer) backup path.
  double failure_probability = 0.05;
  int num_ticks = 30;
  Duration tick_period = Duration::FromMinutes(1);
  Timestamp start = Timestamp::FromMillis(0);
  uint64_t seed = 7;
};

// Generates one full-topology property graph per tick (the paper:
// "an arriving property graph represents the configuration of the entire
// network"). Failed links are simply absent from that tick's graph;
// detour links add extra hops.
std::vector<Event> GenerateNetworkStream(const NetworkConfig& config);

// Our reconstruction of Listing 2: continuously find rack→egress shortest
// paths in the last 10 minutes and emit, with SNAPSHOT reporting, every
// path whose z-score against the configured baseline exceeds 3.
std::string NetworkMonitoringSeraphQuery(Timestamp starting_at);

}  // namespace workloads
}  // namespace seraph

#endif  // SERAPH_WORKLOADS_NETWORK_H_
