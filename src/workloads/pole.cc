#include "workloads/pole.h"

#include <random>

#include "graph/graph_builder.h"

namespace seraph {
namespace workloads {

namespace {
constexpr int64_t kLocationBase = 10'000;
constexpr int64_t kCrimeBase = 20'000;
}  // namespace

std::vector<Event> GeneratePoleStream(const PoleConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<int> person_dist(1, config.num_persons);
  std::uniform_int_distribution<int> location_dist(1, config.num_locations);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int64_t> within_batch(
      0, config.event_period.millis() - 1);

  std::vector<Event> events;
  int64_t rel_id = 0;
  int64_t crime_id = 0;
  for (int i = 1; i <= config.num_events; ++i) {
    Timestamp batch_end =
        config.start +
        Duration::FromMillis(config.event_period.millis() * i);
    Timestamp batch_start = batch_end - config.event_period;
    GraphBuilder b;
    for (int s = 0; s < config.sightings_per_event; ++s) {
      int64_t person = person_dist(rng);
      int64_t location = kLocationBase + location_dist(rng);
      Timestamp seen = batch_start + Duration::FromMillis(within_batch(rng));
      b.Node(person, {"Person"}, {{"person_id", Value::Int(person)}});
      b.Node(location, {"Location"},
             {{"location_id", Value::Int(location - kLocationBase)}});
      b.Rel(++rel_id, person, location, "PRESENT_AT",
            {{"time", Value::DateTime(seen)}});
    }
    if (unit(rng) < config.crime_probability) {
      int64_t crime = kCrimeBase + (++crime_id);
      int64_t location = kLocationBase + location_dist(rng);
      Timestamp occurred =
          batch_start + Duration::FromMillis(within_batch(rng));
      b.Node(crime, {"Crime"}, {{"crime_id", Value::Int(crime_id)}});
      b.Node(location, {"Location"},
             {{"location_id", Value::Int(location - kLocationBase)}});
      b.Rel(++rel_id, crime, location, "OCCURRED_AT",
            {{"time", Value::DateTime(occurred)}});
    }
    events.push_back(Event{std::move(b).Build(), batch_end});
  }
  return events;
}

std::string CrimeInvestigationSeraphQuery(Timestamp starting_at) {
  return "REGISTER QUERY crime_watch STARTING AT '" +
         starting_at.ToString() + "'\n" + R"(
    {
      MATCH (p:Person)-[s:PRESENT_AT]->(l:Location)
            <-[o:OCCURRED_AT]-(c:Crime)
      WITHIN PT30M
      EMIT p.person_id, c.crime_id, l.location_id, s.time
      ON ENTERING EVERY PT5M
    }
  )";
}

}  // namespace workloads
}  // namespace seraph
