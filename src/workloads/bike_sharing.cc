#include "workloads/bike_sharing.h"

#include <algorithm>
#include <random>

#include "common/logging.h"
#include "graph/graph_builder.h"
#include "graph/graph_union.h"

namespace seraph {
namespace workloads {

namespace {

Timestamp At(int hour, int minute) {
  auto t = Timestamp::FromCivil(2022, 10, 14, hour, minute);
  SERAPH_CHECK(t.ok());
  return t.value();
}

// Station node payload.
void AddStation(GraphBuilder* b, int64_t id) {
  b->Node(id, {"Station"}, {{"id", Value::Int(id)}});
}

// Bike node payload; e-bikes carry both labels (see header).
void AddBike(GraphBuilder* b, int64_t id, bool electric) {
  if (electric) {
    b->Node(id, {"Bike", "E-Bike"}, {{"id", Value::Int(id)}});
  } else {
    b->Node(id, {"Bike"}, {{"id", Value::Int(id)}});
  }
}

Value::Map RentalProps(int64_t user_id, Timestamp val_time) {
  return Value::Map{{"user_id", Value::Int(user_id)},
                    {"val_time", Value::DateTime(val_time)}};
}

Value::Map ReturnProps(int64_t user_id, Timestamp val_time,
                       int64_t duration_minutes) {
  return Value::Map{{"user_id", Value::Int(user_id)},
                    {"val_time", Value::DateTime(val_time)},
                    {"duration", Value::Int(duration_minutes)}};
}

}  // namespace

std::vector<Event> BuildRunningExampleStream() {
  std::vector<Event> events;

  // 14:45h — E-Bike 5 rented at station 1 by user 1234 at 14:40.
  {
    GraphBuilder b;
    AddStation(&b, 1);
    AddBike(&b, 5, /*electric=*/true);
    b.Rel(1, 5, 1, "rentedAt", RentalProps(1234, At(14, 40)));
    events.push_back(Event{std::move(b).Build(), At(14, 45)});
  }
  // 15:00h — E-Bike 5 returned at station 2 at 14:55 (15 min); bikes 6 and
  // 8 rented at station 2 (users 1234 and 5678) at 14:58.
  {
    GraphBuilder b;
    AddStation(&b, 2);
    AddBike(&b, 5, true);
    AddBike(&b, 6, false);
    AddBike(&b, 8, false);
    b.Rel(2, 5, 2, "returnedAt", ReturnProps(1234, At(14, 55), 15));
    b.Rel(3, 6, 2, "rentedAt", RentalProps(1234, At(14, 58)));
    b.Rel(4, 8, 2, "rentedAt", RentalProps(5678, At(14, 58)));
    events.push_back(Event{std::move(b).Build(), At(15, 0)});
  }
  // 15:15h — bike 6 returned at station 3 at 15:13 (15 min).
  {
    GraphBuilder b;
    AddStation(&b, 3);
    AddBike(&b, 6, false);
    b.Rel(5, 6, 3, "returnedAt", ReturnProps(1234, At(15, 13), 15));
    events.push_back(Event{std::move(b).Build(), At(15, 15)});
  }
  // 15:20h — bike 8 returned at station 3 at 15:15 (17 min); E-Bike 7
  // rented at station 3 by user 5678 at 15:18.
  {
    GraphBuilder b;
    AddStation(&b, 3);
    AddBike(&b, 8, false);
    AddBike(&b, 7, true);
    b.Rel(6, 8, 3, "returnedAt", ReturnProps(5678, At(15, 15), 17));
    b.Rel(7, 7, 3, "rentedAt", RentalProps(5678, At(15, 18)));
    events.push_back(Event{std::move(b).Build(), At(15, 20)});
  }
  // 15:40h — E-Bike 7 returned at station 4 at 15:35 (17 min).
  {
    GraphBuilder b;
    AddStation(&b, 4);
    AddBike(&b, 7, true);
    b.Rel(8, 7, 4, "returnedAt", ReturnProps(5678, At(15, 35), 17));
    events.push_back(Event{std::move(b).Build(), At(15, 40)});
  }
  return events;
}

PropertyGraph BuildRunningExampleMergedGraph() {
  PropertyGraph merged;
  for (const Event& event : BuildRunningExampleStream()) {
    Status s = MergeInto(&merged, event.graph);
    SERAPH_CHECK(s.ok()) << s.ToString();
  }
  return merged;
}

std::string RunningExampleCypherQuery() {
  return R"(
    WITH datetime() AS win_end, datetime() - duration('PT1H') AS win_start
    MATCH (b:Bike)-[r:rentedAt]->(s:Station),
          q = (b)-[:returnedAt|rentedAt*3..]-(o:Station)
    WITH r, s, q, relationships(q) AS rels,
         [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops,
         win_start, win_end
    WHERE win_start <= r.val_time AND r.val_time <= win_end
      AND ALL(e IN rels WHERE
            win_start <= e.val_time AND e.val_time <= win_end
            AND e.user_id = r.user_id
            AND e.val_time > r.val_time
            AND (e.duration IS NULL OR e.duration < 20))
    RETURN r.user_id, s.id, r.val_time, hops
  )";
}

std::string RunningExampleSeraphQuery() {
  return R"(
    REGISTER QUERY student_trick STARTING AT 2022-10-14T14:45h
    {
      MATCH (b:Bike)-[r:rentedAt]->(s:Station),
            q = (b)-[:returnedAt|rentedAt*3..]-(o:Station)
      WITHIN PT1H
      WITH r, s, q, relationships(q) AS rels,
           [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops
      WHERE ALL(e IN rels WHERE
            e.user_id = r.user_id AND e.val_time > r.val_time AND
            (e.duration IS NULL OR e.duration < 20))
      EMIT r.user_id, s.id, r.val_time, hops
      ON ENTERING EVERY PT5M
    }
  )";
}

std::vector<Event> GenerateBikeSharingStream(const BikeSharingConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<int> station_dist(1, config.num_stations);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Station node ids 1..S; bike ids S+1..S+B (every third bike electric).
  const int64_t bike_base = config.num_stations;

  // One rental/return action.
  struct Action {
    Timestamp time;
    bool is_return;
    int64_t user_id;
    int64_t bike_id;
    int64_t station_id;
    Timestamp rental_time;   // For returns: the matching rental's start.
    int64_t duration_min;    // For returns.
  };
  std::vector<Action> actions;

  const int64_t period_ms = config.event_period.millis();
  const Timestamp horizon =
      config.start + Duration::FromMillis(period_ms * config.num_events);

  std::uniform_int_distribution<int> honest_duration(10, 60);
  std::uniform_int_distribution<int> trick_duration(12, 19);
  std::uniform_int_distribution<int> trick_gap(1, 4);
  std::uniform_int_distribution<int> trick_segments(2, 4);
  std::uniform_int_distribution<int> idle_minutes(5, 90);
  std::uniform_int_distribution<int> bike_pick(1, config.num_bikes);

  for (int64_t user = 1; user <= config.num_users; ++user) {
    bool fraud = unit(rng) < config.fraud_fraction;
    Timestamp t = config.start +
                  Duration::FromMinutes(idle_minutes(rng) % 30);
    while (t < horizon) {
      int64_t station = station_dist(rng);
      int segments = fraud ? trick_segments(rng) : 1;
      for (int s = 0; s < segments && t < horizon; ++s) {
        int64_t bike = bike_base + bike_pick(rng);
        int duration =
            fraud ? trick_duration(rng) : honest_duration(rng);
        Timestamp rental_time = t;
        Timestamp return_time = t + Duration::FromMinutes(duration);
        int64_t end_station = station_dist(rng);
        actions.push_back(Action{rental_time, false, user, bike, station,
                                 rental_time, 0});
        if (return_time < horizon) {
          actions.push_back(Action{return_time, true, user, bike,
                                   end_station, rental_time, duration});
        }
        station = end_station;
        t = return_time + Duration::FromMinutes(fraud ? trick_gap(rng) : 0);
      }
      t = t + Duration::FromMinutes(idle_minutes(rng));
    }
  }
  std::stable_sort(actions.begin(), actions.end(),
                   [](const Action& a, const Action& b) {
                     return a.time < b.time;
                   });

  // Bucket actions into batch events; each event graph contains the
  // touched stations/bikes and the batch's rental/return relationships.
  std::vector<Event> events;
  int64_t rel_id = 0;
  size_t next_action = 0;
  for (int i = 1; i <= config.num_events; ++i) {
    Timestamp batch_end =
        config.start + Duration::FromMillis(period_ms * i);
    GraphBuilder builder;
    bool any = false;
    while (next_action < actions.size() &&
           actions[next_action].time <= batch_end) {
      const Action& a = actions[next_action++];
      AddStation(&builder, a.station_id);
      AddBike(&builder, a.bike_id, a.bike_id % 3 == 0);
      if (a.is_return) {
        builder.Rel(++rel_id, a.bike_id, a.station_id, "returnedAt",
                    ReturnProps(a.user_id, a.time, a.duration_min));
      } else {
        builder.Rel(++rel_id, a.bike_id, a.station_id, "rentedAt",
                    RentalProps(a.user_id, a.time));
      }
      any = true;
    }
    if (any) {
      events.push_back(Event{std::move(builder).Build(), batch_end});
    }
  }
  return events;
}

Status AppendEvents(const std::vector<Event>& events,
                    PropertyGraphStream* stream) {
  for (const Event& event : events) {
    SERAPH_RETURN_IF_ERROR(stream->Append(event.graph, event.timestamp));
  }
  return Status::OK();
}

}  // namespace workloads
}  // namespace seraph
