#include "seraph/continuous_engine.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "cypher/executor.h"
#include "graph/graph_union.h"
#include "seraph/seraph_parser.h"

namespace seraph {

// ---------------------------------------------------------------------------
// CollectingSink
// ---------------------------------------------------------------------------

void CollectingSink::OnResult(const std::string& query_name,
                              Timestamp evaluation_time,
                              const TimeAnnotatedTable& table) {
  results_[query_name].Insert(table);
  by_time_[query_name].emplace(evaluation_time, table);
}

const TimeVaryingTable& CollectingSink::ResultsFor(
    const std::string& query_name) const {
  static const TimeVaryingTable* kEmpty = new TimeVaryingTable();
  auto it = results_.find(query_name);
  return it == results_.end() ? *kEmpty : it->second;
}

std::optional<TimeAnnotatedTable> CollectingSink::ResultAt(
    const std::string& query_name, Timestamp t) const {
  auto qit = by_time_.find(query_name);
  if (qit == by_time_.end()) return std::nullopt;
  auto tit = qit->second.find(t);
  if (tit == qit->second.end()) return std::nullopt;
  return tit->second;
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

struct ContinuousEngine::QueryState {
  RegisteredQuery query;
  bool content_deterministic = false;

  // One window per distinct (stream, WITHIN width) pair a MATCH uses.
  struct WindowState {
    std::string stream;
    Duration width;
    WindowConfig config;
    std::unique_ptr<IncrementalSnapshotter> snapshotter;
    PropertyGraph rebuilt;  // Used when incremental maintenance is off.
    // Element index range covered at the previous evaluation (for the
    // unchanged-window reuse check).
    size_t last_lo = 0;
    size_t last_hi = 0;
    bool has_last_range = false;
  };
  // Keyed by "<stream>\n<width_ms>".
  std::map<std::string, WindowState> windows;
  std::string widest_key;  // Window whose bounds annotate emissions.

  Timestamp next_eval;
  // Previous evaluation's (un-annotated) result, for delta policies and
  // for unchanged-window reuse.
  Table previous_result;
  bool has_previous = false;
  bool done = false;  // RETURN-once queries stop after one evaluation.
  QueryStats stats;
  Histogram eval_latency_micros;
};

namespace {

std::string WindowKey(const std::string& stream, Duration width) {
  return stream + "\n" + std::to_string(width.millis());
}

// Resolves each MATCH clause to the snapshot of its (stream, WITHIN)
// window.
class WindowGraphResolver final : public GraphResolver {
 public:
  WindowGraphResolver(
      const std::map<std::string, const PropertyGraph*>& by_key,
      const PropertyGraph* base)
      : by_key_(by_key), base_(base) {}

  const PropertyGraph& GraphFor(const MatchClause& clause,
                                size_t) const override {
    SERAPH_CHECK(clause.within.has_value())
        << "Seraph MATCH without WITHIN reached the resolver";
    auto it = by_key_.find(WindowKey(clause.from_stream, *clause.within));
    SERAPH_CHECK(it != by_key_.end()) << "no snapshot for WITHIN window";
    return *it->second;
  }

  const PropertyGraph& BaseGraph() const override { return *base_; }

 private:
  const std::map<std::string, const PropertyGraph*>& by_key_;
  const PropertyGraph* base_;
};

}  // namespace

ContinuousEngine::ContinuousEngine(EngineOptions options)
    : options_(std::move(options)) {}

ContinuousEngine::~ContinuousEngine() = default;

PropertyGraphStream* ContinuousEngine::MutableStream(
    const std::string& name) {
  return &streams_[name];
}

Status ContinuousEngine::SetStaticGraph(PropertyGraph graph) {
  if (!queries_.empty()) {
    return Status::InvalidArgument(
        "SetStaticGraph must be called before registering queries");
  }
  static_graph_ =
      std::make_shared<const PropertyGraph>(std::move(graph));
  return Status::OK();
}

Status ContinuousEngine::Register(RegisteredQuery query) {
  SERAPH_RETURN_IF_ERROR(query.Validate());
  if (queries_.contains(query.name)) {
    return Status::AlreadyExists("query '" + query.name +
                                 "' is already registered");
  }
  auto state = std::make_unique<QueryState>();
  state->next_eval = query.starting_at;
  state->content_deterministic = query.IsWindowContentDeterministic();
  // One window state per distinct (stream, WITHIN width) pair.
  Duration slide = query.mode == OutputMode::kEmitStream
                       ? query.every
                       : Duration::FromMillis(1);
  Duration max_width = Duration::FromMillis(0);
  for (const Clause& clause : query.clauses) {
    const auto* match = std::get_if<MatchClause>(&clause);
    if (match == nullptr) continue;
    std::string key = WindowKey(match->from_stream, *match->within);
    if (state->widest_key.empty() || *match->within > max_width) {
      max_width = *match->within;
      state->widest_key = key;
    }
    if (state->windows.contains(key)) continue;
    QueryState::WindowState ws;
    ws.stream = match->from_stream;
    ws.width = *match->within;
    ws.config = WindowConfig{query.starting_at, *match->within, slide,
                             options_.semantics};
    SERAPH_RETURN_IF_ERROR(ws.config.Validate());
    if (options_.incremental_snapshots) {
      ws.snapshotter = std::make_unique<IncrementalSnapshotter>(
          MutableStream(match->from_stream), ws.config.bounds());
      if (static_graph_ != nullptr) {
        SERAPH_RETURN_IF_ERROR(ws.snapshotter->SetBase(static_graph_));
      }
    }
    state->windows.emplace(std::move(key), std::move(ws));
  }
  state->query = std::move(query);
  std::string name = state->query.name;
  queries_.emplace(std::move(name), std::move(state));
  return Status::OK();
}

Status ContinuousEngine::RegisterText(std::string_view seraph_text) {
  SERAPH_ASSIGN_OR_RETURN(RegisteredQuery query,
                          ParseSeraphQuery(seraph_text));
  return Register(std::move(query));
}

Status ContinuousEngine::Unregister(const std::string& name) {
  if (queries_.erase(name) == 0) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  return Status::OK();
}

std::vector<std::string> ContinuousEngine::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, state] : queries_) names.push_back(name);
  return names;
}

Result<QueryStats> ContinuousEngine::StatsFor(const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  return it->second->stats;
}

Result<HistogramSnapshot> ContinuousEngine::LatencyFor(
    const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  return it->second->eval_latency_micros.Snapshot();
}

Status ContinuousEngine::Ingest(PropertyGraph graph, Timestamp timestamp) {
  return IngestTo("", std::make_shared<const PropertyGraph>(std::move(graph)),
                  timestamp);
}

Status ContinuousEngine::Ingest(std::shared_ptr<const PropertyGraph> graph,
                                Timestamp timestamp) {
  return IngestTo("", std::move(graph), timestamp);
}

Status ContinuousEngine::IngestTo(const std::string& stream,
                                  PropertyGraph graph, Timestamp timestamp) {
  return IngestTo(stream,
                  std::make_shared<const PropertyGraph>(std::move(graph)),
                  timestamp);
}

Status ContinuousEngine::IngestTo(
    const std::string& stream, std::shared_ptr<const PropertyGraph> graph,
    Timestamp timestamp) {
  if (clock_started_ && timestamp < clock_) {
    return Status::OutOfRange(
        "cannot ingest an element older than the engine clock (" +
        timestamp.ToString() + " < " + clock_.ToString() + ")");
  }
  return MutableStream(stream)->Append(std::move(graph), timestamp);
}

const PropertyGraphStream& ContinuousEngine::stream() const {
  static const PropertyGraphStream* kEmpty = new PropertyGraphStream();
  auto it = streams_.find("");
  return it == streams_.end() ? *kEmpty : it->second;
}

const PropertyGraphStream& ContinuousEngine::stream(const std::string& name) {
  return *MutableStream(name);
}

Status ContinuousEngine::AdvanceTo(Timestamp now) {
  if (clock_started_ && now < clock_) {
    return Status::OutOfRange("engine clock cannot move backwards");
  }
  // Run all due evaluations across queries in global chronological order
  // so multi-query sinks observe a single timeline.
  while (true) {
    QueryState* next = nullptr;
    for (auto& [name, state] : queries_) {
      if (state->done) continue;
      if (state->next_eval > now) continue;
      if (next == nullptr || state->next_eval < next->next_eval) {
        next = state.get();
      }
    }
    if (next == nullptr) break;
    Timestamp t = next->next_eval;
    SERAPH_RETURN_IF_ERROR(EvaluateAt(next, t));
    if (next->query.mode == OutputMode::kReturnOnce) {
      next->done = true;
    } else {
      next->next_eval = t + next->query.every;
    }
  }
  clock_ = now;
  clock_started_ = true;
  return Status::OK();
}

Status ContinuousEngine::Drain() {
  Timestamp horizon;
  bool any = false;
  for (const auto& [name, stream] : streams_) {
    if (stream.empty()) continue;
    if (!any || stream.MaxTimestamp() > horizon) {
      horizon = stream.MaxTimestamp();
    }
    any = true;
  }
  if (!any) return Status::OK();
  return AdvanceTo(horizon);
}

Status ContinuousEngine::EvaluateAt(QueryState* state, Timestamp t) {
  auto started = std::chrono::steady_clock::now();
  ++evaluations_run_;
  ++state->stats.evaluations;

  // 1. Identify each window's active interval and element range; advance /
  //    rebuild its snapshot.
  std::map<std::string, const PropertyGraph*> snapshots;
  std::optional<TimeInterval> widest_window;
  bool all_ranges_unchanged = true;
  for (auto& [key, ws] : state->windows) {
    std::optional<TimeInterval> window = ws.config.ActiveWindow(t);
    if (!window.has_value()) {
      // Before the first window of this width: match against the empty
      // window ending at t.
      window = TimeInterval{t, t};
    }
    if (key == state->widest_key) widest_window = window;
    // Under kPaperFormal the active window may extend past the evaluation
    // instant; elements there have not causally arrived yet, so the
    // *effective* selection interval is clamped at t (the annotation
    // keeps the full window).
    TimeInterval effective = *window;
    if (t < effective.end) {
      // Clamp to "arrived by t", inclusive of t itself (the +1ms keeps an
      // element arriving exactly at the instant inside the left-closed
      // right-open selection).
      effective.end = Timestamp::FromMillis(t.millis() + 1);
    }
    const PropertyGraphStream* stream = MutableStream(ws.stream);
    // Covered element range, for the reuse check.
    size_t lo, hi;
    {
      Timestamp start = effective.start;
      Timestamp end = effective.end;
      if (ws.config.bounds() == IntervalBounds::kLeftOpenRightClosed) {
        lo = stream->LowerBound(Timestamp::FromMillis(start.millis() + 1));
        hi = stream->LowerBound(Timestamp::FromMillis(end.millis() + 1));
      } else {
        lo = stream->LowerBound(start);
        hi = stream->LowerBound(end);
      }
      hi = std::min(hi, stream->size());
      lo = std::min(lo, hi);
    }
    if (!ws.has_last_range || ws.last_lo != lo || ws.last_hi != hi) {
      all_ranges_unchanged = false;
    }
    ws.last_lo = lo;
    ws.last_hi = hi;
    ws.has_last_range = true;

    if (ws.snapshotter != nullptr) {
      SERAPH_RETURN_IF_ERROR(ws.snapshotter->Advance(effective));
      snapshots[key] = &ws.snapshotter->graph();
    } else {
      SERAPH_ASSIGN_OR_RETURN(
          PropertyGraph snapshot,
          BuildSnapshot(*stream, effective, ws.config.bounds()));
      if (static_graph_ != nullptr) {
        PropertyGraph with_base = *static_graph_;
        SERAPH_RETURN_IF_ERROR(MergeInto(&with_base, snapshot));
        snapshot = std::move(with_base);
      }
      ws.rebuilt = std::move(snapshot);
      snapshots[key] = &ws.rebuilt;
    }
  }
  SERAPH_CHECK(widest_window.has_value());
  const PropertyGraph* base = snapshots.at(state->widest_key);

  // 2. Evaluate the body at instant t (snapshot reducibility) — or reuse
  //    the previous result when nothing in any window changed and the
  //    query cannot observe the evaluation instant.
  Table current;
  if (options_.reuse_unchanged_windows && state->content_deterministic &&
      state->has_previous && all_ranges_unchanged) {
    current = state->previous_result;
    ++state->stats.reused_results;
  } else {
    WindowGraphResolver resolver(snapshots, base);
    ExecutionOptions exec;
    exec.parameters = options_.parameters;
    exec.now = t;
    exec.window = widest_window;
    exec.optimize_match_order = options_.optimize_match_order;
    // Share the clause/projection structures without copying expression
    // trees: move them into a temporary SingleQuery and back (the
    // executor only reads).
    SingleQuery single;
    single.clauses = std::move(state->query.clauses);
    single.ret.body = std::move(state->query.projection);
    auto result = ExecuteSingleQuery(single, resolver, Table::Unit(), exec);
    state->query.clauses = std::move(single.clauses);
    state->query.projection = std::move(single.ret.body);
    if (!result.ok()) return result.status();
    current = std::move(result).value();
  }
  state->stats.result_rows += static_cast<int64_t>(current.size());

  // 3. Apply the report policy.
  Table reported;
  switch (state->query.policy) {
    case ReportPolicy::kSnapshot:
      reported = current;
      break;
    case ReportPolicy::kOnEntering:
      reported = state->has_previous
                     ? Table::BagDifference(current, state->previous_result)
                     : current;
      break;
    case ReportPolicy::kOnExiting:
      reported = state->has_previous
                     ? Table::BagDifference(state->previous_result, current)
                     : Table(current.fields());
      break;
  }
  state->previous_result = std::move(current);
  state->has_previous = true;
  state->stats.rows_emitted += static_cast<int64_t>(reported.size());

  // 4. Emit the time-annotated table.
  TimeAnnotatedTable annotated{std::move(reported), *widest_window};
  for (EmitSink* sink : sinks_) {
    sink->OnResult(state->query.name, t, annotated);
  }
  state->eval_latency_micros.Record(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return Status::OK();
}

}  // namespace seraph
