#include "seraph/continuous_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>

#include "common/cancel.h"
#include "common/logging.h"
#include "cypher/executor.h"
#include "cypher/matcher.h"
#include "graph/graph_union.h"
#include "seraph/delta/delta_index.h"
#include "seraph/seraph_parser.h"

namespace seraph {

// ---------------------------------------------------------------------------
// CollectingSink
// ---------------------------------------------------------------------------

Status CollectingSink::OnResult(const std::string& query_name,
                                Timestamp evaluation_time,
                                const TimeAnnotatedTable& table) {
  results_[query_name].Insert(table);
  // Last write wins: a second result for the same (query, timestamp) —
  // e.g. after Unregister/Register of the same name — replaces the first,
  // matching time-varying-table semantics (ResultsFor keeps the full
  // delivery sequence).
  by_time_[query_name].insert_or_assign(evaluation_time, table);
  return Status::OK();
}

const TimeVaryingTable& CollectingSink::ResultsFor(
    const std::string& query_name) const {
  static const TimeVaryingTable* kEmpty = new TimeVaryingTable();
  auto it = results_.find(query_name);
  return it == results_.end() ? *kEmpty : it->second;
}

std::optional<TimeAnnotatedTable> CollectingSink::ResultAt(
    const std::string& query_name, Timestamp t) const {
  auto qit = by_time_.find(query_name);
  if (qit == by_time_.end()) return std::nullopt;
  auto tit = qit->second.find(t);
  if (tit == qit->second.end()) return std::nullopt;
  return tit->second;
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

// Cached registry handles for one query's observability series, resolved
// once at Register so the evaluation hot path never does a name lookup.
struct QueryMetricHandles {
  Counter* evaluations = nullptr;
  Counter* reuse_hits = nullptr;
  Counter* reuse_misses = nullptr;
  Counter* match_rows = nullptr;
  Counter* rows_emitted = nullptr;
  Counter* snapshots_incremental = nullptr;
  Counter* snapshots_rebuilt = nullptr;
  Counter* elements_added = nullptr;
  Counter* elements_evicted = nullptr;
  Counter* entities_recomputed = nullptr;
  Counter* eval_failures = nullptr;
  Gauge* disabled = nullptr;
  Histogram* stage_window = nullptr;
  Histogram* stage_snapshot = nullptr;
  Histogram* stage_match = nullptr;
  Histogram* stage_policy = nullptr;
  Histogram* stage_sink = nullptr;
  Histogram* eval_total = nullptr;
  // Intra-query parallel matching (written by the query's evaluating
  // worker via MatchParallelism — see cypher/matcher.h).
  Counter* match_partitions = nullptr;
  Histogram* match_seeds = nullptr;
  // Emit-latency accounting (docs/INTERNALS.md, "Latency accounting &
  // lag"): ingest→emit latency of each covered element, plus the
  // per-stage breakdown. Written only by the coordinator in
  // FinishDelivery (single-writer histogram contract).
  Histogram* emit_latency = nullptr;
  Histogram* lat_queue = nullptr;    // arrival → evaluation start.
  Histogram* lat_window = nullptr;   // Window + snapshot maintenance.
  Histogram* lat_match = nullptr;    // Clause evaluation + report policy.
  Histogram* lat_deliver = nullptr;  // Sink delivery.
  // Delta matching (seraph/delta): evaluations served from the
  // partial-match index, full executions taken while delta matching was
  // enabled (ineligible query or invalidated index), index rebuilds, and
  // the current index population.
  Counter* delta_hits = nullptr;
  Counter* delta_fallbacks = nullptr;
  Counter* delta_rebuilds = nullptr;
  Gauge* delta_entries = nullptr;
};

struct ContinuousEngine::QueryState {
  RegisteredQuery query;
  bool content_deterministic = false;

  // One window per distinct (stream, WITHIN width) pair a MATCH uses.
  struct WindowState {
    std::string stream;
    Duration width;
    WindowConfig config;
    std::unique_ptr<IncrementalSnapshotter> snapshotter;
    PropertyGraph rebuilt;  // Used when incremental maintenance is off.
    // Element index range covered at the previous evaluation (for the
    // unchanged-window reuse check).
    size_t last_lo = 0;
    size_t last_hi = 0;
    bool has_last_range = false;
    // Snapshotter counters as of the previous evaluation, for deltas.
    SnapshotterStats last_maint;
  };
  // Keyed by "<stream>\n<width_ms>".
  std::map<std::string, WindowState> windows;
  std::string widest_key;  // Window whose bounds annotate emissions.

  Timestamp next_eval;
  // Previous evaluation's (un-annotated) result, for delta policies and
  // for unchanged-window reuse.
  Table previous_result;
  bool has_previous = false;
  bool done = false;  // RETURN-once queries stop after one evaluation.
  // Query isolation (the query-side mirror of sink quarantine).
  int consecutive_failures = 0;
  bool disabled = false;
  QueryStats stats;
  Histogram eval_latency_micros;
  QueryMetricHandles metrics;
  // Emit-latency cursors, one per distinct stream among the query's
  // windows: the index of the first element whose latency has not been
  // charged yet. Advanced only by the coordinator (FinishDelivery) over
  // elements with timestamp <= the delivered instant.
  std::map<std::string, size_t> latency_cursors;
  // Intra-query parallel matching spec handed to the executor. `pool` is
  // set by the scheduler per batch (non-null only when the batch leaves
  // spare workers) and read by this query's single evaluating worker.
  MatchParallelism match_par;
  // Delta-matching index (seraph/delta); null when the query is not
  // eligible or delta matching is disabled. Rebuilt lazily — never
  // serialized into checkpoints — and invalidated on evaluation failure,
  // restore, and revive.
  std::unique_ptr<DeltaIndex> delta;
};

namespace {

std::string WindowKey(const std::string& stream, Duration width) {
  return stream + "\n" + std::to_string(width.millis());
}

// Human-readable window identifier for trace spans ("<stream>/PT..ms").
std::string WindowLabel(const std::string& stream, Duration width) {
  return (stream.empty() ? std::string("<default>") : stream) + "/" +
         std::to_string(width.millis()) + "ms";
}

QueryMetricHandles MakeQueryMetrics(MetricsRegistry* registry,
                                    const std::string& query) {
  const MetricLabels q{{"query", query}};
  QueryMetricHandles m;
  m.evaluations = registry->CounterFor("seraph_query_evaluations_total", q);
  m.reuse_hits = registry->CounterFor("seraph_query_reuse_hits_total", q);
  m.reuse_misses =
      registry->CounterFor("seraph_query_reuse_misses_total", q);
  m.match_rows = registry->CounterFor("seraph_query_match_rows_total", q);
  m.rows_emitted =
      registry->CounterFor("seraph_query_rows_emitted_total", q);
  m.snapshots_incremental =
      registry->CounterFor("seraph_query_snapshots_incremental_total", q);
  m.snapshots_rebuilt =
      registry->CounterFor("seraph_query_snapshots_rebuilt_total", q);
  m.elements_added =
      registry->CounterFor("seraph_window_elements_added_total", q);
  m.elements_evicted =
      registry->CounterFor("seraph_window_elements_evicted_total", q);
  m.entities_recomputed =
      registry->CounterFor("seraph_window_entities_recomputed_total", q);
  m.eval_failures =
      registry->CounterFor("seraph_query_eval_failures_total", q);
  m.disabled = registry->GaugeFor("seraph_query_disabled", q);
  auto stage = [&](const char* name) {
    return registry->HistogramFor(
        "seraph_stage_micros",
        {{"query", query}, {"stage", name}});
  };
  m.stage_window = stage("window");
  m.stage_snapshot = stage("snapshot");
  m.stage_match = stage("match");
  m.stage_policy = stage("policy");
  m.stage_sink = stage("sink");
  m.eval_total = registry->HistogramFor("seraph_query_eval_micros", q);
  m.match_partitions =
      registry->CounterFor("seraph_match_partitions_total", q);
  m.match_seeds =
      registry->HistogramFor("seraph_match_seed_candidates", q);
  m.emit_latency = registry->HistogramFor("seraph_emit_latency_micros", q);
  auto lat_stage = [&](const char* name) {
    return registry->HistogramFor("seraph_emit_stage_micros",
                                  {{"query", query}, {"stage", name}});
  };
  m.lat_queue = lat_stage("queue");
  m.lat_window = lat_stage("window");
  m.lat_match = lat_stage("match");
  m.lat_deliver = lat_stage("deliver");
  m.delta_hits = registry->CounterFor("seraph_delta_hits_total", q);
  m.delta_fallbacks =
      registry->CounterFor("seraph_delta_fallbacks_total", q);
  m.delta_rebuilds = registry->CounterFor("seraph_delta_rebuilds_total", q);
  m.delta_entries = registry->GaugeFor("seraph_delta_index_entries", q);
  return m;
}

// Resolves each MATCH clause to the snapshot of its (stream, WITHIN)
// window.
class WindowGraphResolver final : public GraphResolver {
 public:
  WindowGraphResolver(
      const std::map<std::string, const PropertyGraph*>& by_key,
      const PropertyGraph* base)
      : by_key_(by_key), base_(base) {}

  const PropertyGraph& GraphFor(const MatchClause& clause,
                                size_t) const override {
    SERAPH_CHECK(clause.within.has_value())
        << "Seraph MATCH without WITHIN reached the resolver";
    auto it = by_key_.find(WindowKey(clause.from_stream, *clause.within));
    SERAPH_CHECK(it != by_key_.end()) << "no snapshot for WITHIN window";
    return *it->second;
  }

  const PropertyGraph& BaseGraph() const override { return *base_; }

 private:
  const std::map<std::string, const PropertyGraph*>& by_key_;
  const PropertyGraph* base_;
};

}  // namespace

ContinuousEngine::ContinuousEngine(EngineOptions options)
    : options_(std::move(options)) {
  batch_size_ = metrics_.HistogramFor("seraph_engine_eval_batch_size");
  parallel_evals_ =
      metrics_.CounterFor("seraph_engine_parallel_evals_total");
  stuck_evals_ = metrics_.GaugeFor("seraph_engine_stuck_evals");
  fleet_emit_latency_ =
      metrics_.HistogramFor("seraph_engine_emit_latency_micros");
  engine_clock_millis_ = metrics_.GaugeFor("seraph_engine_clock_millis");
}

const Clock* ContinuousEngine::LatencyClock() const {
  return options_.clock != nullptr ? options_.clock : Clock::Steady();
}

ContinuousEngine::StreamObs* ContinuousEngine::ObsFor(
    const std::string& stream) {
  auto it = stream_obs_.find(stream);
  if (it == stream_obs_.end()) {
    const std::string label = stream.empty() ? "<default>" : stream;
    const MetricLabels labels{{"stream", label}};
    StreamObs obs;
    obs.ingested =
        metrics_.CounterFor("seraph_stream_elements_ingested_total", labels);
    obs.watermark_millis =
        metrics_.GaugeFor("seraph_stream_watermark_millis", labels);
    obs.lag_millis = metrics_.GaugeFor("seraph_stream_lag_millis", labels);
    obs.lag_max_millis =
        metrics_.GaugeFor("seraph_stream_lag_max_millis", labels);
    it = stream_obs_.emplace(stream, obs).first;
  }
  return &it->second;
}

void ContinuousEngine::UpdateLagGauges() {
  const int64_t clock_ms = clock_started_ ? clock_.millis() : 0;
  engine_clock_millis_->Set(clock_ms);
  for (auto& [name, obs] : stream_obs_) {
    if (!obs.any_ingested) continue;
    int64_t lag = obs.watermark_value - clock_ms;
    if (lag < 0) lag = 0;
    obs.lag_millis->Set(lag);
    if (lag > obs.lag_max_value) {
      obs.lag_max_value = lag;
      obs.lag_max_millis->Set(lag);
    }
  }
}

ContinuousEngine::~ContinuousEngine() = default;

void ContinuousEngine::AddSink(EmitSink* sink) {
  AddSink(sink, "sink" + std::to_string(sinks_.size()), SinkPolicy{});
}

void ContinuousEngine::AddSink(EmitSink* sink, std::string name,
                               SinkPolicy policy) {
  SinkState state;
  state.sink = sink;
  state.name = std::move(name);
  state.policy = policy;
  const MetricLabels labels{{"sink", state.name}};
  state.deliveries =
      metrics_.CounterFor("seraph_sink_deliveries_total", labels);
  state.failures = metrics_.CounterFor("seraph_sink_failures_total", labels);
  state.retries = metrics_.CounterFor("seraph_sink_retries_total", labels);
  state.dead_lettered =
      metrics_.CounterFor("seraph_sink_dead_lettered_total", labels);
  state.quarantined_gauge =
      metrics_.GaugeFor("seraph_sink_quarantined", labels);
  sinks_.push_back(std::move(state));
}

bool ContinuousEngine::SinkQuarantined(const std::string& name) const {
  for (const SinkState& state : sinks_) {
    if (state.name == name) return state.quarantined;
  }
  return false;
}

Status ContinuousEngine::ReviveSink(const std::string& name) {
  for (SinkState& state : sinks_) {
    if (state.name != name) continue;
    state.quarantined = false;
    state.consecutive_failures = 0;
    state.quarantined_gauge->Set(0);
    return Status::OK();
  }
  return Status::NotFound("sink '" + name + "' is not registered");
}

bool ContinuousEngine::QueryDisabled(const std::string& name) const {
  auto it = queries_.find(name);
  return it != queries_.end() && it->second->disabled;
}

Status ContinuousEngine::ReviveQuery(const std::string& name) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  QueryState* state = it->second.get();
  state->disabled = false;
  state->consecutive_failures = 0;
  state->metrics.disabled->Set(0);
  // The index missed every advance while the query was disabled.
  if (state->delta != nullptr) state->delta->Invalidate();
  return Status::OK();
}

void ContinuousEngine::DeliverToSinks(const std::string& query_name,
                                      Timestamp t,
                                      const TimeAnnotatedTable& annotated) {
  for (SinkState& state : sinks_) {
    if (state.quarantined) continue;
    Status status;
    int attempts = 0;
    for (;;) {
      ++attempts;
      status = state.sink->OnResult(query_name, t, annotated);
      if (status.ok()) break;
      if (!state.policy.retry.ShouldRetry(status, attempts)) break;
      state.retries->Increment();
      // The backoff delay is deterministic and accounted, not slept: the
      // engine runs in simulated time (see common/fault.h).
      metrics_.CounterFor("seraph_sink_backoff_millis_total",
                          {{"sink", state.name}})
          ->Increment(state.policy.retry.DelayMillisFor(attempts));
    }
    if (status.ok()) {
      state.consecutive_failures = 0;
      state.deliveries->Increment();
      continue;
    }
    // Retries exhausted or the error was permanent: this delivery is
    // lost to the sink — capture it, count it, and keep everything else
    // running (sink isolation).
    state.failures->Increment();
    ++state.consecutive_failures;
    if (options_.dead_letter != nullptr) {
      options_.dead_letter->AddSinkResult(state.name, query_name, t,
                                          annotated, status, attempts);
      state.dead_lettered->Increment();
    }
    SERAPH_LOG(WARNING) << "sink '" << state.name << "' rejected result of '"
                        << query_name << "' at " << t.ToString() << " after "
                        << attempts << " attempt(s): " << status;
    if (state.consecutive_failures >= state.policy.quarantine_after) {
      state.quarantined = true;
      state.quarantined_gauge->Set(1);
      SERAPH_LOG(ERROR) << "sink '" << state.name << "' quarantined after "
                        << state.consecutive_failures
                        << " consecutive failures";
    }
  }
}

PropertyGraphStream* ContinuousEngine::MutableStream(
    const std::string& name) {
  return &streams_[name];
}

const PropertyGraphStream* ContinuousEngine::FindStreamOrEmpty(
    const std::string& name) const {
  static const PropertyGraphStream* kEmpty = new PropertyGraphStream();
  auto it = streams_.find(name);
  return it == streams_.end() ? kEmpty : &it->second;
}

Status ContinuousEngine::SetStaticGraph(PropertyGraph graph) {
  if (!queries_.empty()) {
    return Status::InvalidArgument(
        "SetStaticGraph must be called before registering queries");
  }
  static_graph_ =
      std::make_shared<const PropertyGraph>(std::move(graph));
  return Status::OK();
}

Status ContinuousEngine::Register(RegisteredQuery query) {
  SERAPH_RETURN_IF_ERROR(query.Validate());
  if (queries_.contains(query.name)) {
    return Status::AlreadyExists("query '" + query.name +
                                 "' is already registered");
  }
  auto state = std::make_unique<QueryState>();
  state->next_eval = query.starting_at;
  state->content_deterministic = query.IsWindowContentDeterministic();
  // One window state per distinct (stream, WITHIN width) pair.
  Duration slide = query.mode == OutputMode::kEmitStream
                       ? query.every
                       : Duration::FromMillis(1);
  Duration max_width = Duration::FromMillis(0);
  for (const Clause& clause : query.clauses) {
    const auto* match = std::get_if<MatchClause>(&clause);
    if (match == nullptr) continue;
    std::string key = WindowKey(match->from_stream, *match->within);
    if (state->widest_key.empty() || *match->within > max_width) {
      max_width = *match->within;
      state->widest_key = key;
    }
    if (state->windows.contains(key)) continue;
    QueryState::WindowState ws;
    ws.stream = match->from_stream;
    ws.width = *match->within;
    ws.config = WindowConfig{query.starting_at, *match->within, slide,
                             options_.semantics};
    SERAPH_RETURN_IF_ERROR(ws.config.Validate());
    // Create the stream eagerly so streams_ never mutates during
    // evaluation: worker threads only ever read the map.
    MutableStream(match->from_stream);
    if (options_.incremental_snapshots) {
      ws.snapshotter = std::make_unique<IncrementalSnapshotter>(
          MutableStream(match->from_stream), ws.config.bounds());
      if (static_graph_ != nullptr) {
        SERAPH_RETURN_IF_ERROR(ws.snapshotter->SetBase(static_graph_));
      }
    }
    state->windows.emplace(std::move(key), std::move(ws));
  }
  state->query = std::move(query);
  state->metrics = MakeQueryMetrics(&metrics_, state->query.name);
  // Delta matching needs the snapshotter dirty sets as its repair input,
  // so it only engages alongside incremental snapshots. The MatchClause
  // pointer stays valid: EvaluateAt's clause-vector move transfers the
  // heap buffer without relocating elements.
  if (options_.delta_matching && options_.incremental_snapshots &&
      DeltaIndex::Eligible(state->query)) {
    state->delta = std::make_unique<DeltaIndex>(
        std::get_if<MatchClause>(&state->query.clauses[0]));
  }
  // Emit-latency cursors start at the streams' current sizes: elements
  // ingested before the query existed are not part of its latency SLO.
  for (const auto& [key, ws] : state->windows) {
    state->latency_cursors.emplace(ws.stream,
                                   FindStreamOrEmpty(ws.stream)->size());
  }
  // Static parts of the intra-query parallelism spec; the scheduler fills
  // in `pool` per batch when it grants parallel matching.
  state->match_par.min_seeds =
      static_cast<size_t>(std::max(options_.match_min_seeds, 1));
  state->match_par.morsel_size =
      static_cast<size_t>(std::max(options_.match_morsel_size, 1));
  state->match_par.partitions = state->metrics.match_partitions;
  state->match_par.seed_candidates = state->metrics.match_seeds;
  state->match_par.tracer = options_.tracer;
  state->match_par.query_label = state->query.name;
  std::string name = state->query.name;
  queries_.emplace(std::move(name), std::move(state));
  metrics_.GaugeFor("seraph_queries_registered")
      ->Set(static_cast<int64_t>(queries_.size()));
  return Status::OK();
}

Status ContinuousEngine::RegisterText(std::string_view seraph_text) {
  SERAPH_ASSIGN_OR_RETURN(RegisteredQuery query,
                          ParseSeraphQuery(seraph_text));
  return Register(std::move(query));
}

Status ContinuousEngine::Unregister(const std::string& name) {
  if (queries_.erase(name) == 0) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  metrics_.GaugeFor("seraph_queries_registered")
      ->Set(static_cast<int64_t>(queries_.size()));
  return Status::OK();
}

std::vector<std::string> ContinuousEngine::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, state] : queries_) names.push_back(name);
  return names;
}

Result<QueryStats> ContinuousEngine::StatsFor(const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  return it->second->stats;
}

Result<HistogramSnapshot> ContinuousEngine::LatencyFor(
    const std::string& name) const {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  return it->second->eval_latency_micros.Snapshot();
}

Status ContinuousEngine::Ingest(PropertyGraph graph, Timestamp timestamp) {
  return IngestTo("", std::make_shared<const PropertyGraph>(std::move(graph)),
                  timestamp);
}

Status ContinuousEngine::Ingest(std::shared_ptr<const PropertyGraph> graph,
                                Timestamp timestamp) {
  return IngestTo("", std::move(graph), timestamp);
}

Status ContinuousEngine::IngestTo(const std::string& stream,
                                  PropertyGraph graph, Timestamp timestamp) {
  return IngestTo(stream,
                  std::make_shared<const PropertyGraph>(std::move(graph)),
                  timestamp);
}

Status ContinuousEngine::IngestTo(
    const std::string& stream, std::shared_ptr<const PropertyGraph> graph,
    Timestamp timestamp) {
  return IngestTo(stream, std::move(graph), timestamp, 0);
}

Status ContinuousEngine::IngestTo(
    const std::string& stream, std::shared_ptr<const PropertyGraph> graph,
    Timestamp timestamp, int64_t arrival_micros) {
  if (clock_started_ && timestamp < clock_) {
    return Status::OutOfRange(
        "cannot ingest an element older than the engine clock (" +
        timestamp.ToString() + " < " + clock_.ToString() + ")");
  }
  // Elements that arrive unstamped (direct Ingest, no queue in front) get
  // their t0 here, so emit latency degrades gracefully to ingest→emit.
  // With stamping off, no clock is read and FinishDelivery records
  // nothing — the overhead ablation arm.
  if (options_.latency_stamping && arrival_micros == 0) {
    arrival_micros = LatencyClock()->NowMicros();
  }
  Status appended =
      MutableStream(stream)->Append(std::move(graph), timestamp,
                                    arrival_micros);
  if (appended.ok()) {
    StreamObs* obs = ObsFor(stream);
    obs->ingested->Increment();
    const int64_t ts_ms = timestamp.millis();
    if (!obs->any_ingested || ts_ms > obs->watermark_value) {
      obs->any_ingested = true;
      obs->watermark_value = ts_ms;
      obs->watermark_millis->Set(ts_ms);
      // The watermark moved ahead of the engine clock: refresh this
      // stream's lag (event-time millis, so deterministic).
      int64_t lag = ts_ms - (clock_started_ ? clock_.millis() : 0);
      if (lag < 0) lag = 0;
      obs->lag_millis->Set(lag);
      if (lag > obs->lag_max_value) {
        obs->lag_max_value = lag;
        obs->lag_max_millis->Set(lag);
      }
    }
    if (options_.tracer != nullptr && options_.tracer->enabled()) {
      options_.tracer->AddInstant(
          "ingest", "stream", TraceRecorder::NowMicros(),
          {{"stream", stream.empty() ? "<default>" : stream},
           {"t", timestamp.ToString()}});
    }
  }
  return appended;
}

const PropertyGraphStream& ContinuousEngine::stream() const {
  return *FindStreamOrEmpty("");
}

const PropertyGraphStream& ContinuousEngine::stream(
    const std::string& name) const {
  // Pure read: a never-ingested name must not insert an empty stream
  // into streams_ (a surprise mutation, and a data race under parallel
  // evaluation).
  return *FindStreamOrEmpty(name);
}

std::vector<std::string> ContinuousEngine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) names.push_back(name);
  return names;
}

Status ContinuousEngine::AdvanceTo(Timestamp now) {
  if (clock_started_ && now < clock_) {
    return Status::OutOfRange("engine clock cannot move backwards");
  }
  // Run all due evaluations across queries in global chronological order
  // so multi-query sinks observe a single timeline. Every query due at
  // the same instant forms one batch: the batch's stage-1..3 work may run
  // concurrently (eval_threads > 1), but delivery always happens here on
  // the coordinator, sequentially, in query-name order — which is exactly
  // the order the serial min-scan produced, so output is identical at any
  // thread count.
  const int threads = ThreadPool::ResolveThreads(options_.eval_threads);
  // One pool serves both parallelism levels; it is sized for whichever is
  // wider. Intra-query (morsel) parallelism is granted per batch, only
  // when the batch leaves spare workers — a full batch already keeps the
  // pool busy with whole queries.
  const int match_threads = ThreadPool::ResolveThreads(options_.match_threads);
  const int pool_threads = std::max(threads, match_threads);
  std::vector<QueryState*> batch;
  std::vector<PendingDelivery> outputs;
  std::vector<Status> statuses;
  std::vector<std::future<void>> futures;
  while (true) {
    bool have_t = false;
    Timestamp t;
    for (auto& [name, state] : queries_) {
      if (state->done || state->disabled) continue;
      if (state->next_eval > now) continue;
      if (!have_t || state->next_eval < t) {
        t = state->next_eval;
        have_t = true;
      }
    }
    if (!have_t) break;

    // queries_ is a std::map, so the batch comes out in ascending name
    // order.
    batch.clear();
    for (auto& [name, state] : queries_) {
      if (state->done || state->disabled) continue;
      if (state->next_eval == t) batch.push_back(state.get());
    }
    batch_size_->Record(static_cast<int64_t>(batch.size()));

    outputs.assign(batch.size(), PendingDelivery{});
    statuses.assign(batch.size(), Status::OK());
    const bool parallel_queries = threads > 1 && batch.size() > 1;
    const bool parallel_match =
        match_threads > 1 && static_cast<int>(batch.size()) < pool_threads;
    if ((parallel_queries || parallel_match) &&
        (pool_ == nullptr || pool_->size() != pool_threads)) {
      pool_ = std::make_unique<ThreadPool>(pool_threads);
    }
    for (QueryState* state : batch) {
      state->match_par.pool = parallel_match ? pool_.get() : nullptr;
    }
    if (parallel_queries) {
      futures.clear();
      futures.reserve(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        QueryState* state = batch[i];
        PendingDelivery* out = &outputs[i];
        Status* status = &statuses[i];
        futures.push_back(pool_->Submit([this, state, t, out, status] {
          // Each worker traces into its own lane (tid 0 is the
          // coordinator).
          TraceRecorder::SetCurrentThreadTid(ThreadPool::CurrentWorkerId() +
                                             1);
          *status = EvaluateAtNoThrow(state, t, out);
        }));
      }
      // Batch barrier: nothing is delivered (and the next instant is not
      // scheduled) until every evaluation of this instant finished. The
      // joins also establish the happens-before edge that lets the
      // coordinator read worker-written per-query state without locks.
      // The barrier is watched: an evaluation still running past the
      // watchdog period is logged with the offending query's name and
      // gauged — PR 3's isolation catches failures, this catches hangs.
      // The coordinator still waits (delivery order must hold); the
      // watchdog makes the hang diagnosable, a cooperative deadline
      // (eval_deadline_millis) is what unwedges it.
      const int64_t watchdog_ms =
          options_.watchdog_millis > 0 ? options_.watchdog_millis
          : options_.eval_deadline_millis > 0
              ? std::max<int64_t>(4 * options_.eval_deadline_millis, 100)
              : 10'000;
      bool any_stuck = false;
      for (size_t i = 0; i < futures.size(); ++i) {
        int64_t overdue_rounds = 0;
        while (futures[i].wait_for(std::chrono::milliseconds(watchdog_ms)) !=
               std::future_status::ready) {
          ++overdue_rounds;
          any_stuck = true;
          // Unjoined evaluations of this batch (at least this one).
          stuck_evals_->Set(static_cast<int64_t>(futures.size() - i));
          SERAPH_LOG(ERROR)
              << "batch watchdog: evaluation of query '"
              << batch[i]->query.name << "' at " << t.ToString()
              << " still running after " << watchdog_ms * overdue_rounds
              << " ms; batch barrier is stuck";
        }
      }
      if (any_stuck) stuck_evals_->Set(0);
      parallel_evals_->Increment(static_cast<int64_t>(batch.size()));
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        statuses[i] = EvaluateAtNoThrow(batch[i], t, &outputs[i]);
      }
    }

    // Coordinator half: sink delivery and failure bookkeeping, in batch
    // (= name) order. A failed evaluation is isolated — recorded,
    // dead-lettered, possibly disabling the query — and never aborts the
    // fleet. The grid advances on failure too; otherwise a poisoned
    // query would re-fail at the same instant forever.
    for (size_t i = 0; i < batch.size(); ++i) {
      QueryState* state = batch[i];
      ++evaluations_run_;
      const bool ok = statuses[i].ok();
      if (ok) {
        state->consecutive_failures = 0;
        FinishDelivery(state, t, std::move(outputs[i]));
      } else {
        HandleEvalFailure(state, t, std::move(statuses[i]));
      }
      if (state->query.mode == OutputMode::kReturnOnce) {
        if (ok) {
          state->done = true;
        } else if (!state->disabled) {
          // A RETURN query has no later instant to retry at, so one
          // failure is terminal regardless of the error budget: disable
          // it (making the failure observable via QueryDisabled) rather
          // than marking it done. ReviveQuery re-arms the single
          // evaluation at the same instant.
          state->disabled = true;
          state->metrics.disabled->Set(1);
          SERAPH_LOG(ERROR)
              << "RETURN query '" << state->query.name
              << "' disabled after its single evaluation failed; "
                 "ReviveQuery() re-arms it";
        }
      } else {
        state->next_eval = t + state->query.every;
      }
    }

    // Batch barrier: every query due at t has evaluated, delivered, and
    // advanced its grid, and no instant < next batch's t is pending.
    // Advancing the clock here (not only at the end) makes this a
    // consistent cut — exactly what a checkpoint needs. Catch-up batches
    // (a revived or late-registered query evaluating instants the clock
    // already passed) must not move it backwards.
    if (!clock_started_ || t > clock_) clock_ = t;
    clock_started_ = true;
    // The clock moved: the per-stream lag (watermark − clock) shrank.
    UpdateLagGauges();
    ++batches_completed_;
    if (checkpoint_callback_ && options_.checkpoint_every > 0 &&
        batches_completed_ % options_.checkpoint_every == 0) {
      Status written = checkpoint_callback_();
      if (!written.ok()) {
        // A failed checkpoint widens the replay window back to the last
        // good one; it must not take the pipeline down with it.
        SERAPH_LOG(ERROR) << "checkpoint at " << t.ToString()
                          << " failed: " << written.ToString();
      }
    }
  }
  clock_ = now;
  clock_started_ = true;
  UpdateLagGauges();
  return Status::OK();
}

EngineCheckpoint ContinuousEngine::CaptureCheckpoint() const {
  EngineCheckpoint image;
  image.clock = clock_;
  image.clock_started = clock_started_;
  image.evaluations_run = evaluations_run_;
  for (const auto& [name, stream] : streams_) {
    image.streams.emplace(name, stream.elements());
  }
  for (const auto& [name, state] : queries_) {
    QueryCheckpoint q;
    q.name = name;
    q.next_eval = state->next_eval;
    q.done = state->done;
    q.disabled = state->disabled;
    q.consecutive_failures = state->consecutive_failures;
    q.has_previous = state->has_previous;
    q.previous_result = state->previous_result;
    q.stats = state->stats;
    image.queries.push_back(std::move(q));
  }
  return image;
}

Status ContinuousEngine::RestoreFrom(const EngineCheckpoint& checkpoint) {
  if (clock_started_ || evaluations_run_ != 0) {
    return Status::InvalidArgument(
        "RestoreFrom requires a freshly constructed engine (clock already "
        "started)");
  }
  for (const auto& [name, stream] : streams_) {
    if (!stream.empty()) {
      return Status::InvalidArgument(
          "RestoreFrom requires a freshly constructed engine (stream '" +
          name + "' already has elements)");
    }
  }
  // Definitions first, state second: every checkpointed query must already
  // be re-registered so its windows/metrics exist to overlay.
  for (const QueryCheckpoint& q : checkpoint.queries) {
    if (!queries_.contains(q.name)) {
      return Status::InvalidArgument(
          "checkpoint names query '" + q.name +
          "', which is not registered; re-register all queries before "
          "RestoreFrom");
    }
  }
  // Rebuild the streams via direct appends: the checkpointed elements
  // predate the restored clock, so IngestTo's clock guard (and its
  // ingestion counters — restored elements were already counted in their
  // first life) must not apply.
  for (const auto& [name, elements] : checkpoint.streams) {
    PropertyGraphStream* stream = MutableStream(name);
    for (const StreamElement& element : elements) {
      SERAPH_RETURN_IF_ERROR(stream->Append(element.graph,
                                            element.timestamp));
    }
  }
  for (const QueryCheckpoint& q : checkpoint.queries) {
    QueryState* state = queries_.at(q.name).get();
    state->next_eval = q.next_eval;
    state->done = q.done;
    state->disabled = q.disabled;
    state->metrics.disabled->Set(q.disabled ? 1 : 0);
    state->consecutive_failures = q.consecutive_failures;
    state->has_previous = q.has_previous;
    state->previous_result = q.previous_result;
    state->stats = q.stats;
    // Window state stays fresh: the next evaluation re-derives every
    // window from the restored stream (has_last_range is false, so the
    // unchanged-window reuse fast path cannot fire on stale bounds).
    // Latency cursors jump past the restored prefix: those elements'
    // emits happened in the first life (and their arrival stamps are not
    // persisted anyway — latency is a processing-time concern).
    for (auto& [stream_name, cursor] : state->latency_cursors) {
      cursor = FindStreamOrEmpty(stream_name)->size();
    }
    // Delta state is never serialized; the first post-restore evaluation
    // rebuilds the index against the re-derived snapshot.
    if (state->delta != nullptr) state->delta->Invalidate();
  }
  clock_ = checkpoint.clock;
  clock_started_ = checkpoint.clock_started;
  evaluations_run_ = checkpoint.evaluations_run;
  return Status::OK();
}

void ContinuousEngine::SetCheckpointCallback(
    std::function<Status()> callback) {
  checkpoint_callback_ = std::move(callback);
}

Status ContinuousEngine::Drain() {
  Timestamp horizon;
  bool any = false;
  for (const auto& [name, stream] : streams_) {
    if (stream.empty()) continue;
    if (!any || stream.MaxTimestamp() > horizon) {
      horizon = stream.MaxTimestamp();
    }
    any = true;
  }
  if (!any) return Status::OK();
  return AdvanceTo(horizon);
}

namespace {

const char* PolicyName(ReportPolicy policy) {
  switch (policy) {
    case ReportPolicy::kSnapshot:
      return "SNAPSHOT";
    case ReportPolicy::kOnEntering:
      return "ON ENTERING";
    case ReportPolicy::kOnExiting:
      return "ON EXITING";
  }
  return "?";
}

}  // namespace

Status ContinuousEngine::EvaluateAtNoThrow(QueryState* state, Timestamp t,
                                           PendingDelivery* out) {
  // On a worker thread the coordinator only wait()s on the task's future,
  // so an exception escaping EvaluateAt (e.g. std::bad_alloc) would be
  // stored there and silently discarded — leaving statuses[i] OK and a
  // default-constructed (empty) PendingDelivery delivered as a genuine
  // result. Translate exceptions to Status so both the serial and the
  // parallel path treat them as ordinary evaluation failures.
  try {
    return EvaluateAt(state, t, out);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("evaluation threw: ") + e.what());
  } catch (...) {
    return Status::Internal("evaluation threw a non-standard exception");
  }
}

Status ContinuousEngine::EvaluateAt(QueryState* state, Timestamp t,
                                    PendingDelivery* out) {
  // Stages 1-3 of the pipeline. May run on a worker thread: everything
  // written here is per-query state (disjoint across a batch), and the
  // shared state it reads (options_, streams_, static_graph_) is frozen
  // during AdvanceTo. All stage timing shares one clock
  // (TraceRecorder::NowMicros) so the histogram breakdown and the trace
  // spans agree. The tracer pointer is resolved once; when tracing is off
  // the only extra work per stage is the clock read feeding the stage
  // histograms.
  TraceRecorder* tracer =
      (options_.tracer != nullptr && options_.tracer->enabled())
          ? options_.tracer
          : nullptr;
  const int64_t eval_start = TraceRecorder::NowMicros();
  // Queue-wait's right endpoint, on the *latency* clock (which tests may
  // pin to a ManualClock on a different timebase than the trace clock —
  // both ends of a latency interval must come from the same clock).
  if (options_.latency_stamping) {
    out->latency_eval_start_micros = LatencyClock()->NowMicros();
  }
  ++state->stats.evaluations;
  state->metrics.evaluations->Increment();

  // 1. Identify each window's active interval and element range; advance /
  //    rebuild its snapshot.
  std::map<std::string, const PropertyGraph*> snapshots;
  std::optional<TimeInterval> widest_window;
  bool all_ranges_unchanged = true;
  int64_t snapshot_micros = 0;
  for (auto& [key, ws] : state->windows) {
    std::optional<TimeInterval> window = ws.config.ActiveWindow(t);
    if (!window.has_value()) {
      // Before the first window of this width: match against the empty
      // window ending at t.
      window = TimeInterval{t, t};
    }
    if (key == state->widest_key) widest_window = window;
    // Under kPaperFormal the active window may extend past the evaluation
    // instant; elements there have not causally arrived yet, so the
    // *effective* selection interval is clamped at t (the annotation
    // keeps the full window).
    TimeInterval effective = *window;
    if (t < effective.end) {
      // Clamp to "arrived by t", inclusive of t itself (the +1ms keeps an
      // element arriving exactly at the instant inside the left-closed
      // right-open selection).
      effective.end = Timestamp::FromMillis(t.millis() + 1);
    }
    const PropertyGraphStream* stream = FindStreamOrEmpty(ws.stream);
    // Covered element range, for the reuse check.
    size_t lo, hi;
    {
      Timestamp start = effective.start;
      Timestamp end = effective.end;
      if (ws.config.bounds() == IntervalBounds::kLeftOpenRightClosed) {
        lo = stream->LowerBound(Timestamp::FromMillis(start.millis() + 1));
        hi = stream->LowerBound(Timestamp::FromMillis(end.millis() + 1));
      } else {
        lo = stream->LowerBound(start);
        hi = stream->LowerBound(end);
      }
      hi = std::min(hi, stream->size());
      lo = std::min(lo, hi);
    }
    if (!ws.has_last_range || ws.last_lo != lo || ws.last_hi != hi) {
      all_ranges_unchanged = false;
    }
    ws.last_lo = lo;
    ws.last_hi = hi;
    ws.has_last_range = true;

    const int64_t snap_start = TraceRecorder::NowMicros();
    if (ws.snapshotter != nullptr) {
      SERAPH_RETURN_IF_ERROR(ws.snapshotter->Advance(effective));
      // Churn-proportional repair of the partial-match index from this
      // advance's dirty sets (eligible queries have exactly one window).
      if (state->delta != nullptr) {
        state->delta->ObserveAdvance(*ws.snapshotter);
      }
      snapshots[key] = &ws.snapshotter->graph();
      ++state->stats.snapshots_incremental;
      state->metrics.snapshots_incremental->Increment();
      // Export this advance's maintenance delta (the snapshotter keeps
      // cumulative counts).
      const SnapshotterStats& maint = ws.snapshotter->stats();
      int64_t added = maint.elements_added - ws.last_maint.elements_added;
      int64_t evicted =
          maint.elements_evicted - ws.last_maint.elements_evicted;
      state->stats.window_elements_added += added;
      state->stats.window_elements_evicted += evicted;
      state->metrics.elements_added->Increment(added);
      state->metrics.elements_evicted->Increment(evicted);
      state->metrics.entities_recomputed->Increment(
          maint.entities_recomputed - ws.last_maint.entities_recomputed);
      ws.last_maint = maint;
    } else {
      SERAPH_ASSIGN_OR_RETURN(
          PropertyGraph snapshot,
          BuildSnapshot(*stream, effective, ws.config.bounds()));
      if (static_graph_ != nullptr) {
        PropertyGraph with_base = *static_graph_;
        SERAPH_RETURN_IF_ERROR(MergeInto(&with_base, snapshot));
        snapshot = std::move(with_base);
      }
      ws.rebuilt = std::move(snapshot);
      snapshots[key] = &ws.rebuilt;
      ++state->stats.snapshots_rebuilt;
      state->metrics.snapshots_rebuilt->Increment();
    }
    const int64_t snap_dur = TraceRecorder::NowMicros() - snap_start;
    snapshot_micros += snap_dur;
    if (tracer != nullptr) {
      tracer->AddComplete(
          "snapshot", "engine", snap_start, snap_dur,
          {{"query", state->query.name},
           {"window", WindowLabel(ws.stream, ws.width)},
           {"mode", ws.snapshotter != nullptr ? "incremental" : "rebuild"}});
    }
  }
  SERAPH_CHECK(widest_window.has_value());
  const PropertyGraph* base = snapshots.at(state->widest_key);

  const int64_t windows_end = TraceRecorder::NowMicros();
  // "window" is the interval/range bookkeeping around the snapshot work.
  const int64_t window_micros =
      (windows_end - eval_start) - snapshot_micros;
  state->stats.window_micros += window_micros;
  state->stats.snapshot_micros += snapshot_micros;
  state->metrics.stage_window->Record(window_micros);
  state->metrics.stage_snapshot->Record(snapshot_micros);
  if (tracer != nullptr) {
    tracer->AddComplete("window_maintenance", "engine", eval_start,
                        windows_end - eval_start,
                        {{"query", state->query.name},
                         {"t", t.ToString()}});
  }

  // 2. Evaluate the body at instant t (snapshot reducibility) — or reuse
  //    the previous result when nothing in any window changed and the
  //    query cannot observe the evaluation instant.
  Table current;
  bool reused = false;
  if (options_.reuse_unchanged_windows && state->content_deterministic &&
      state->has_previous && all_ranges_unchanged) {
    current = state->previous_result;
    ++state->stats.reused_results;
    state->metrics.reuse_hits->Increment();
    reused = true;
  } else {
    WindowGraphResolver resolver(snapshots, base);
    ExecutionOptions exec;
    exec.parameters = options_.parameters;
    exec.now = t;
    exec.window = widest_window;
    exec.optimize_match_order = options_.optimize_match_order;
    // Intra-query morsel parallelism, when the scheduler granted it for
    // this batch (match_par.pool set by AdvanceTo).
    exec.match_parallelism =
        state->match_par.pool != nullptr ? &state->match_par : nullptr;
    // Evaluation deadline: a stack token on the latency clock, checked by
    // the matcher at seed/expansion boundaries. On expiry the evaluation
    // fails with kDeadlineExceeded, which flows through the isolation
    // path below exactly like any other evaluation failure. The
    // "eval.deadline" fault point deterministically simulates an expiry
    // for chaos tests (its kUnavailable is re-coded: a deadline is not
    // transient — retrying a too-slow query at the same instant would
    // just time out again, so it must hit the error budget instead).
    std::optional<CancellationToken> deadline;
    if (options_.eval_deadline_millis > 0) {
      if (FaultInjector::Global().armed()) {
        Status injected = FaultInjector::Global().Fire("eval.deadline");
        if (!injected.ok()) {
          return Status::DeadlineExceeded(
              "evaluation deadline exceeded (injected): " +
              injected.message());
        }
      }
      deadline.emplace(LatencyClock(),
                       LatencyClock()->NowMicros() +
                           options_.eval_deadline_millis * 1000);
      exec.cancellation = &*deadline;
    }
    bool delta_served = false;
    if (state->delta != nullptr) {
      // Delta path: the MATCH-stage output comes from the partial-match
      // index (already repaired in stage 1), so only the projection runs
      // here. Any failure on this path is a normal evaluation failure —
      // no silent fallback within the instant — and additionally
      // invalidates the index (it may be mid-repair).
      IncrementalSnapshotter* snap =
          state->windows.begin()->second.snapshotter.get();
      const int64_t delta_start = TraceRecorder::NowMicros();
      const bool rebuilt = !state->delta->valid();
      Status delta_status =
          rebuilt ? state->delta->Build(*base, snap->stats().advances, exec)
                  : Status::OK();
      if (delta_status.ok() && rebuilt) {
        state->metrics.delta_rebuilds->Increment();
      }
      if (delta_status.ok()) {
        auto matched = state->delta->Emit(*base, exec);
        if (matched.ok()) {
          SingleQuery single;  // Empty clauses: projection only.
          single.ret.body = std::move(state->query.projection);
          auto result = ExecuteSingleQuery(single, resolver,
                                           std::move(matched).value(), exec);
          state->query.projection = std::move(single.ret.body);
          if (!result.ok()) {
            state->delta->Invalidate();
            return result.status();
          }
          current = std::move(result).value();
          delta_served = true;
          state->metrics.delta_hits->Increment();
          state->metrics.delta_entries->Set(
              static_cast<int64_t>(state->delta->size()));
          if (tracer != nullptr) {
            tracer->AddComplete(
                "delta", "engine", delta_start,
                TraceRecorder::NowMicros() - delta_start,
                {{"query", state->query.name},
                 {"mode", rebuilt ? "rebuild" : "incremental"},
                 {"entries", std::to_string(state->delta->size())}});
          }
        } else {
          delta_status = matched.status();
        }
      }
      if (!delta_status.ok()) {
        state->delta->Invalidate();
        return delta_status;
      }
    }
    if (!delta_served) {
      // Full execution. Counted as a delta fallback when delta matching
      // is on but could not serve this query (ineligible shape).
      if (options_.delta_matching) {
        state->metrics.delta_fallbacks->Increment();
      }
      // Share the clause/projection structures without copying expression
      // trees: move them into a temporary SingleQuery and back (the
      // executor only reads).
      SingleQuery single;
      single.clauses = std::move(state->query.clauses);
      single.ret.body = std::move(state->query.projection);
      auto result = ExecuteSingleQuery(single, resolver, Table::Unit(), exec);
      state->query.clauses = std::move(single.clauses);
      state->query.projection = std::move(single.ret.body);
      if (!result.ok()) return result.status();
      current = std::move(result).value();
    }
    // Delta and full executions keep identical persisted stats, so a
    // checkpoint replay is byte-exact regardless of which path ran.
    ++state->stats.fresh_executions;
    state->metrics.reuse_misses->Increment();
    state->metrics.match_rows->Increment(
        static_cast<int64_t>(current.size()));
  }
  state->stats.result_rows += static_cast<int64_t>(current.size());

  const int64_t match_end = TraceRecorder::NowMicros();
  const int64_t match_micros = match_end - windows_end;
  state->stats.match_micros += match_micros;
  state->metrics.stage_match->Record(match_micros);
  if (tracer != nullptr) {
    tracer->AddComplete(reused ? "reuse" : "match", "engine", windows_end,
                        match_micros,
                        {{"query", state->query.name},
                         {"rows", std::to_string(current.size())}});
  }

  // 3. Apply the report policy.
  Table reported;
  switch (state->query.policy) {
    case ReportPolicy::kSnapshot:
      reported = current;
      break;
    case ReportPolicy::kOnEntering:
      reported = state->has_previous
                     ? Table::BagDifference(current, state->previous_result)
                     : current;
      break;
    case ReportPolicy::kOnExiting:
      reported = state->has_previous
                     ? Table::BagDifference(state->previous_result, current)
                     : Table(current.fields());
      break;
  }
  state->previous_result = std::move(current);
  state->has_previous = true;
  state->stats.rows_emitted += static_cast<int64_t>(reported.size());
  state->metrics.rows_emitted->Increment(
      static_cast<int64_t>(reported.size()));

  const int64_t policy_end = TraceRecorder::NowMicros();
  const int64_t policy_micros = policy_end - match_end;
  state->stats.policy_micros += policy_micros;
  state->metrics.stage_policy->Record(policy_micros);
  if (tracer != nullptr) {
    tracer->AddComplete("policy", "engine", match_end, policy_micros,
                        {{"query", state->query.name},
                         {"policy", PolicyName(state->query.policy)}});
  }

  // Stage 4 (sink delivery) happens on the coordinator: hand the
  // time-annotated table back for FinishDelivery.
  out->annotated = TimeAnnotatedTable{std::move(reported), *widest_window};
  out->eval_start_micros = eval_start;
  out->eval_end_micros = policy_end;
  // Emit-latency stage durations (durations are timebase-independent, so
  // the trace clock's readings above serve directly).
  out->stage_window_micros = window_micros + snapshot_micros;
  out->stage_match_micros = match_micros + policy_micros;
  return Status::OK();
}

void ContinuousEngine::FinishDelivery(QueryState* state, Timestamp t,
                                      PendingDelivery&& out) {
  TraceRecorder* tracer =
      (options_.tracer != nullptr && options_.tracer->enabled())
          ? options_.tracer
          : nullptr;
  // The sink stage is timed as its own interval rather than "since the
  // policy stage ended": under parallel evaluation there is a scheduling
  // gap between a worker finishing stage 3 and the coordinator getting
  // here, and that gap is not sink time.
  const int64_t sink_start = TraceRecorder::NowMicros();
  // Sink failures are isolated inside DeliverToSinks (retry →
  // dead-letter → quarantine) and never fail the evaluation.
  DeliverToSinks(state->query.name, t, out.annotated);
  const int64_t sink_end = TraceRecorder::NowMicros();
  const int64_t sink_micros = sink_end - sink_start;
  state->stats.sink_micros += sink_micros;
  state->metrics.stage_sink->Record(sink_micros);

  const int64_t eval_micros = out.eval_end_micros - out.eval_start_micros;
  const int64_t total_micros = eval_micros + sink_micros;
  if (tracer != nullptr) {
    tracer->AddComplete("sink", "engine", sink_start, sink_micros,
                        {{"query", state->query.name},
                         {"sinks", std::to_string(sinks_.size())}});
    // The 'evaluate' span must enclose its 'sink' child, so it runs to
    // sink_end: the worker-to-coordinator scheduling gap sits *inside*
    // the span (visible as the space between the policy and sink
    // children), while the latency metrics below deliberately exclude it.
    tracer->AddComplete("evaluate", "pipeline", out.eval_start_micros,
                        sink_end - out.eval_start_micros,
                        {{"query", state->query.name},
                         {"t", t.ToString()}});
  }
  state->eval_latency_micros.Record(total_micros);
  state->metrics.eval_total->Record(total_micros);
  if (options_.latency_stamping) {
    RecordEmitLatency(state, t, out, sink_micros);
  }
}

void ContinuousEngine::RecordEmitLatency(QueryState* state, Timestamp t,
                                         const PendingDelivery& out,
                                         int64_t sink_micros) {
  // Coordinator-only (single-writer histogram contract). Every element
  // with timestamp <= t is now covered by this query's delivered result;
  // charge arrival→now once per element, per query. Elements covered by
  // instants whose evaluation *failed* were not advanced past (failures
  // skip FinishDelivery), so their latency lands on the next successful
  // emit — truthfully including the failed attempts' delay.
  const int64_t now = LatencyClock()->NowMicros();
  for (auto& [stream_name, cursor] : state->latency_cursors) {
    const std::vector<StreamElement>& elements =
        FindStreamOrEmpty(stream_name)->elements();
    while (cursor < elements.size() && elements[cursor].timestamp <= t) {
      const StreamElement& element = elements[cursor];
      ++cursor;
      if (element.arrival_micros <= 0) continue;  // Unstamped (restored).
      int64_t latency = now - element.arrival_micros;
      if (latency < 0) latency = 0;
      state->metrics.emit_latency->Record(latency);
      fleet_emit_latency_->Record(latency);
      int64_t queue_wait =
          out.latency_eval_start_micros - element.arrival_micros;
      if (queue_wait < 0) queue_wait = 0;
      state->metrics.lat_queue->Record(queue_wait);
    }
  }
  // The evaluation-side stages are per-emit, not per-element.
  state->metrics.lat_window->Record(out.stage_window_micros);
  state->metrics.lat_match->Record(out.stage_match_micros);
  state->metrics.lat_deliver->Record(sink_micros);
}

void ContinuousEngine::HandleEvalFailure(QueryState* state, Timestamp t,
                                         Status error) {
  // The failed evaluation already recorded its windows' element ranges
  // (EvaluateAt updates last_lo/last_hi before the match stage) but never
  // produced a result. If the ranges stayed frozen, the next instant's
  // unchanged-window check would pass and the reuse path would emit
  // previous_result — a table from the last *successful* evaluation over
  // different window content — and, since reuse skips execution, a
  // content-deterministic error would never re-fire (so the error budget
  // could never trip). Invalidate the precondition: the next instant must
  // re-execute.
  for (auto& [key, ws] : state->windows) ws.has_last_range = false;
  // Same reasoning for the partial-match index: the failed evaluation may
  // have left it mid-repair, and stage 1 already consumed this advance's
  // dirty sets — rebuild from scratch next time.
  if (state->delta != nullptr) state->delta->Invalidate();
  ++state->stats.eval_failures;
  state->metrics.eval_failures->Increment();
  SERAPH_LOG(WARNING) << "evaluation of query '" << state->query.name
                      << "' at " << t.ToString()
                      << " failed: " << error.ToString();
  if (options_.dead_letter != nullptr) {
    options_.dead_letter->AddEvaluationFailure(state->query.name, t, error);
  }
  state->stats.last_error = std::move(error);
  ++state->consecutive_failures;
  if (options_.query_error_budget > 0 && !state->disabled &&
      state->consecutive_failures >= options_.query_error_budget) {
    state->disabled = true;
    state->metrics.disabled->Set(1);
    SERAPH_LOG(ERROR) << "query '" << state->query.name
                      << "' disabled after " << state->consecutive_failures
                      << " consecutive evaluation failures; ReviveQuery() "
                         "re-enables it";
  }
}

namespace {

int ThreadsFromEnvVar(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 0 || value > 4096) {
    return fallback;
  }
  return static_cast<int>(value);
}

}  // namespace

int EvalThreadsFromEnv(int fallback) {
  return ThreadsFromEnvVar("SERAPH_EVAL_THREADS", fallback);
}

int MatchThreadsFromEnv(int fallback) {
  return ThreadsFromEnvVar("SERAPH_MATCH_THREADS", fallback);
}

int64_t EvalDeadlineMillisFromEnv(int64_t fallback) {
  const char* raw = std::getenv("SERAPH_EVAL_DEADLINE_MS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 0) return fallback;
  return static_cast<int64_t>(value);
}

}  // namespace seraph
