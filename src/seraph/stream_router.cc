#include "seraph/stream_router.h"

namespace seraph {

void StreamRouter::BindMetrics(MetricsRegistry* registry) {
  registry_ = registry;
  dropped_counter_ = registry_ != nullptr
                         ? registry_->CounterFor("seraph_router_dropped_total")
                         : nullptr;
  for (RouteEntry& route : routes_) {
    route.routed = ResolveRoutedCounter(route.stream);
  }
}

Counter* StreamRouter::ResolveRoutedCounter(const std::string& stream) const {
  if (registry_ == nullptr) return nullptr;
  return registry_->CounterFor(
      "seraph_router_routed_total",
      {{"stream", stream.empty() ? "<default>" : stream}});
}

Result<int> StreamRouter::Route(ContinuousEngine* engine,
                                std::shared_ptr<const PropertyGraph> graph,
                                Timestamp timestamp) const {
  int delivered = 0;
  for (const RouteEntry& route : routes_) {
    if (!route.predicate(*graph, timestamp)) continue;
    SERAPH_RETURN_IF_ERROR(engine->IngestTo(route.stream, graph, timestamp));
    if (route.routed != nullptr) route.routed->Increment();
    ++delivered;
  }
  if (delivered == 0) {
    ++dropped_total_;
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
  }
  return delivered;
}

StreamRouter::Predicate AcceptAll() {
  return [](const PropertyGraph&, Timestamp) { return true; };
}

StreamRouter::Predicate HasLabel(std::string label) {
  return [label = std::move(label)](const PropertyGraph& graph, Timestamp) {
    return graph.CountNodesWithLabel(label) > 0;
  };
}

StreamRouter::Predicate HasRelationshipType(std::string type) {
  return [type = std::move(type)](const PropertyGraph& graph, Timestamp) {
    return !graph.RelationshipsWithType(type).empty();
  };
}

StreamRouter::Predicate NodePropertyEquals(std::string key, Value value) {
  return [key = std::move(key), value = std::move(value)](
             const PropertyGraph& graph, Timestamp) {
    for (NodeId id : graph.NodeIds()) {
      if (graph.NodeProperty(id, key) == value) return true;
    }
    return false;
  };
}

}  // namespace seraph
