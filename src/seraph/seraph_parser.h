// Front-end for the Seraph grammar (Fig. 6), composed from the Cypher
// parser's building blocks.
#ifndef SERAPH_SERAPH_SERAPH_PARSER_H_
#define SERAPH_SERAPH_SERAPH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "seraph/seraph_query.h"

namespace seraph {

// Parses a full `REGISTER QUERY name STARTING AT <datetime> { ... }`
// statement and validates it (every MATCH has WITHIN, EMIT has EVERY).
Result<RegisteredQuery> ParseSeraphQuery(std::string_view text);

}  // namespace seraph

#endif  // SERAPH_SERAPH_SERAPH_PARSER_H_
