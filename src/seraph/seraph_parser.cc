#include "seraph/seraph_parser.h"

#include "cypher/lexer.h"
#include "cypher/parser.h"
#include "cypher/token.h"

namespace seraph {

Result<RegisteredQuery> ParseSeraphQuery(std::string_view text) {
  SERAPH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  RegisteredQuery query;

  SERAPH_RETURN_IF_ERROR(parser.ExpectKeyword("REGISTER"));
  SERAPH_RETURN_IF_ERROR(parser.ExpectKeyword("QUERY"));
  if (parser.Peek().kind != TokenKind::kIdentifier) {
    return parser.ErrorHere("expected query name");
  }
  query.name = parser.Peek().text;
  parser.Consume(TokenKind::kIdentifier);

  SERAPH_RETURN_IF_ERROR(parser.ExpectKeyword("STARTING"));
  SERAPH_RETURN_IF_ERROR(parser.ExpectKeyword("AT"));
  SERAPH_ASSIGN_OR_RETURN(query.starting_at, parser.ParseDateTimeLiteral());

  SERAPH_RETURN_IF_ERROR(parser.Expect(TokenKind::kLBrace));
  SERAPH_ASSIGN_OR_RETURN(query.clauses, parser.ParseClauseChain());

  if (parser.ConsumeKeyword("EMIT")) {
    query.mode = OutputMode::kEmitStream;
    // Policy may be written prefix (EMIT SNAPSHOT items ...) or postfix
    // (EMIT items ON ENTERING ...). Default: SNAPSHOT.
    bool policy_set = false;
    if (parser.ConsumeKeyword("SNAPSHOT")) {
      query.policy = ReportPolicy::kSnapshot;
      policy_set = true;
    }
    SERAPH_ASSIGN_OR_RETURN(query.projection,
                            parser.ParseProjectionBody({"ON", "EVERY",
                                                        "SNAPSHOT"}));
    if (parser.ConsumeKeyword("ON")) {
      if (policy_set) {
        return parser.ErrorHere("conflicting report policies");
      }
      if (parser.ConsumeKeyword("ENTERING")) {
        query.policy = ReportPolicy::kOnEntering;
      } else if (parser.ConsumeKeyword("EXITING")) {
        query.policy = ReportPolicy::kOnExiting;
      } else {
        return parser.ErrorHere("expected ENTERING or EXITING after ON");
      }
    } else if (parser.ConsumeKeyword("SNAPSHOT")) {
      if (policy_set) {
        return parser.ErrorHere("conflicting report policies");
      }
      query.policy = ReportPolicy::kSnapshot;
    }
    SERAPH_RETURN_IF_ERROR(parser.ExpectKeyword("EVERY"));
    SERAPH_ASSIGN_OR_RETURN(query.every, parser.ParseDurationLiteral());
  } else if (parser.ConsumeKeyword("RETURN")) {
    query.mode = OutputMode::kReturnOnce;
    SERAPH_ASSIGN_OR_RETURN(query.projection,
                            parser.ParseProjectionBody({"EVERY"}));
    // An explicit EVERY is tolerated (it fixes the ET grid) but not
    // required for one-shot queries.
    if (parser.ConsumeKeyword("EVERY")) {
      SERAPH_ASSIGN_OR_RETURN(query.every, parser.ParseDurationLiteral());
    }
  } else {
    return parser.ErrorHere("expected EMIT or RETURN in query body");
  }

  SERAPH_RETURN_IF_ERROR(parser.Expect(TokenKind::kRBrace));
  SERAPH_RETURN_IF_ERROR(parser.ExpectEnd());
  SERAPH_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace seraph
