// The registered continuous query (Fig. 6):
//
//   REGISTER QUERY <name> STARTING AT <datetime>
//   {
//     MATCH <pattern> WITHIN <duration> [WHERE ...]
//     [WITH ... / UNWIND ... / MATCH ... WITHIN ...]*
//     EMIT <items> (SNAPSHOT | ON ENTERING | ON EXITING) EVERY <duration>
//       — or —
//     RETURN <items>
//   }
//
// The EMIT form produces a stream of time-annotated tables, one per
// evaluation time instant; the RETURN form evaluates once at the first
// evaluation instant (Section 5.3 b).
#ifndef SERAPH_SERAPH_SERAPH_QUERY_H_
#define SERAPH_SERAPH_SERAPH_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cypher/ast.h"
#include "temporal/duration.h"
#include "temporal/timestamp.h"

namespace seraph {

// Result-reporting policies (R3). SNAPSHOT re-emits every current result
// tuple at each evaluation; ON ENTERING emits only tuples that are new
// with respect to the previous evaluation (bag difference current ∖
// previous); ON EXITING emits tuples that left (previous ∖ current).
enum class ReportPolicy {
  kSnapshot,
  kOnEntering,
  kOnExiting,
};

const char* ReportPolicyToString(ReportPolicy policy);

enum class OutputMode {
  kEmitStream,  // EMIT ... EVERY ...
  kReturnOnce,  // RETURN ...
};

struct RegisteredQuery {
  std::string name;
  Timestamp starting_at;  // ω0.
  // The clause chain of the body (every MATCH carries its WITHIN width).
  std::vector<Clause> clauses;
  // The EMIT / RETURN projection.
  ProjectionBody projection;
  OutputMode mode = OutputMode::kEmitStream;
  ReportPolicy policy = ReportPolicy::kSnapshot;
  Duration every;  // β; ignored in kReturnOnce mode.

  // Widest WITHIN width across MATCH clauses (defines the window whose
  // bounds annotate emitted tables).
  Duration MaxWidth() const;

  // Structural validation: every MATCH has WITHIN, EMIT mode has a
  // positive EVERY, and the query has at least one clause.
  Status Validate() const;

  // Human-readable execution description: evaluation grid, window
  // configuration per MATCH (width / stream), report policy, output mode,
  // and whether unchanged-window result reuse applies. The seraph_run
  // CLI prints this under --explain.
  std::string Describe() const;

  // True when the query's results depend only on the window *contents*:
  // no zero-argument datetime() / timestamp() calls and no references to
  // the reserved win_start / win_end names anywhere in the body or
  // projection. Such queries may safely reuse the previous result when
  // the active substreams are unchanged (§6 "avoidable re-executions").
  bool IsWindowContentDeterministic() const;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_SERAPH_QUERY_H_
