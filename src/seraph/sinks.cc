#include "seraph/sinks.h"

#include "io/json.h"

namespace seraph {

namespace {

// The stream-writing sinks share one failure contract: a stream that is
// already bad is reported (not silently swallowed), and a write that
// fails is reported after the attempt. Both are kUnavailable — a blocked
// pipe or full disk may clear up, and the engine's retry/quarantine
// logic decides how long to keep trying.
Status CheckStream(const std::ostream& os, const char* sink,
                   const char* when) {
  if (os.good()) return Status::OK();
  return Status::Unavailable(std::string(sink) + ": output stream " + when +
                             " in failed state");
}

}  // namespace

Status PrintingSink::OnResult(const std::string& query_name,
                              Timestamp evaluation_time,
                              const TimeAnnotatedTable& table) {
  SERAPH_FAULT_POINT("sink.emit");
  if (table.table.empty() && !include_empty_) return Status::OK();
  SERAPH_RETURN_IF_ERROR(CheckStream(*os_, "printing sink", "already"));
  *os_ << "[" << query_name << "] evaluation at "
       << evaluation_time.ToString() << " (window " << table.window.ToString()
       << "): " << table.table.size() << " row(s)\n";
  if (!table.table.empty()) {
    std::vector<std::string> columns = columns_;
    columns.push_back(kWinStartField);
    columns.push_back(kWinEndField);
    *os_ << table.WithAnnotations().Canonicalized().ToAsciiTable(columns);
  }
  return CheckStream(*os_, "printing sink", "left");
}

Status JsonLinesSink::OnResult(const std::string& query_name,
                               Timestamp evaluation_time,
                               const TimeAnnotatedTable& table) {
  SERAPH_FAULT_POINT("sink.emit");
  if (table.table.empty() && !include_empty_) return Status::OK();
  SERAPH_RETURN_IF_ERROR(CheckStream(*os_, "json sink", "already"));
  std::string line = "{\"query\":";
  io::AppendJsonValue(Value::String(query_name), &line);
  line += ",\"at\":";
  io::AppendJsonValue(Value::String(evaluation_time.ToString()), &line);
  line += ",\"win_start\":";
  io::AppendJsonValue(Value::String(table.window.start.ToString()), &line);
  line += ",\"win_end\":";
  io::AppendJsonValue(Value::String(table.window.end.ToString()), &line);
  Table canonical = table.table.Canonicalized();
  line += ",\"rows\":" + io::ToJson(canonical) + "}";
  *os_ << line << "\n";
  return CheckStream(*os_, "json sink", "left");
}

namespace {

// RFC 4180 field escaping.
void AppendCsvField(const std::string& field, std::string* out) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

Status CsvSink::OnResult(const std::string& query_name,
                         Timestamp evaluation_time,
                         const TimeAnnotatedTable& table) {
  SERAPH_FAULT_POINT("sink.emit");
  SERAPH_RETURN_IF_ERROR(CheckStream(*os_, "csv sink", "already"));
  if (!header_written_) {
    std::string header = "query,evaluation_time,win_start,win_end";
    for (const std::string& column : columns_) {
      header += ',';
      AppendCsvField(column, &header);
    }
    *os_ << header << "\n";
    // Latch only after a successful write so a retried first delivery
    // still gets its header.
    SERAPH_RETURN_IF_ERROR(CheckStream(*os_, "csv sink", "left"));
    header_written_ = true;
  }
  Table canonical = table.table.Canonicalized();
  for (const Record& row : canonical.rows()) {
    std::string line;
    AppendCsvField(query_name, &line);
    line += ',' + evaluation_time.ToString();
    line += ',' + table.window.start.ToString();
    line += ',' + table.window.end.ToString();
    for (const std::string& column : columns_) {
      line += ',';
      AppendCsvField(row.GetOrNull(column).ToString(), &line);
    }
    *os_ << line << "\n";
  }
  return CheckStream(*os_, "csv sink", "left");
}

}  // namespace seraph
