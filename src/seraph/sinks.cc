#include "seraph/sinks.h"

#include "io/json.h"

namespace seraph {

void PrintingSink::OnResult(const std::string& query_name,
                            Timestamp evaluation_time,
                            const TimeAnnotatedTable& table) {
  if (table.table.empty() && !include_empty_) return;
  *os_ << "[" << query_name << "] evaluation at "
       << evaluation_time.ToString() << " (window " << table.window.ToString()
       << "): " << table.table.size() << " row(s)\n";
  if (!table.table.empty()) {
    std::vector<std::string> columns = columns_;
    columns.push_back(kWinStartField);
    columns.push_back(kWinEndField);
    *os_ << table.WithAnnotations().Canonicalized().ToAsciiTable(columns);
  }
}

void JsonLinesSink::OnResult(const std::string& query_name,
                             Timestamp evaluation_time,
                             const TimeAnnotatedTable& table) {
  if (table.table.empty() && !include_empty_) return;
  std::string line = "{\"query\":";
  io::AppendJsonValue(Value::String(query_name), &line);
  line += ",\"at\":";
  io::AppendJsonValue(Value::String(evaluation_time.ToString()), &line);
  line += ",\"win_start\":";
  io::AppendJsonValue(Value::String(table.window.start.ToString()), &line);
  line += ",\"win_end\":";
  io::AppendJsonValue(Value::String(table.window.end.ToString()), &line);
  Table canonical = table.table.Canonicalized();
  line += ",\"rows\":" + io::ToJson(canonical) + "}";
  *os_ << line << "\n";
}

namespace {

// RFC 4180 field escaping.
void AppendCsvField(const std::string& field, std::string* out) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

void CsvSink::OnResult(const std::string& query_name,
                       Timestamp evaluation_time,
                       const TimeAnnotatedTable& table) {
  if (!header_written_) {
    std::string header = "query,evaluation_time,win_start,win_end";
    for (const std::string& column : columns_) {
      header += ',';
      AppendCsvField(column, &header);
    }
    *os_ << header << "\n";
    header_written_ = true;
  }
  Table canonical = table.table.Canonicalized();
  for (const Record& row : canonical.rows()) {
    std::string line;
    AppendCsvField(query_name, &line);
    line += ',' + evaluation_time.ToString();
    line += ',' + table.window.start.ToString();
    line += ',' + table.window.end.ToString();
    for (const std::string& column : columns_) {
      line += ',';
      AppendCsvField(row.GetOrNull(column).ToString(), &line);
    }
    *os_ << line << "\n";
  }
}

}  // namespace seraph
