// Dead-letter capture for the fault-tolerant pipeline.
//
// Three producers feed the queue (see docs/INTERNALS.md, "Failure
// model"):
//  * the engine, with evaluation results a sink permanently rejected
//    (after per-sink retries were exhausted or the error was permanent);
//  * the engine, with evaluations that themselves failed at runtime
//    (query isolation: the failed instant is recorded here, the fleet
//    keeps running);
//  * the stream driver, with poison elements whose delivery kept failing
//    past the per-element error budget.
//
// Nothing in the pipeline silently drops data: what cannot be delivered
// lands here with the status that rejected it and the attempt count, so
// an operator (or seraph_run --dead-letter=<path>) can inspect and replay
// it.
#ifndef SERAPH_SERAPH_DEAD_LETTER_H_
#define SERAPH_SERAPH_DEAD_LETTER_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "stream/graph_stream.h"
#include "table/time_table.h"

namespace seraph {

struct DeadLetterEntry {
  enum class Kind { kSinkResult, kStreamElement, kEvaluation };

  Kind kind;
  // Sink name (kSinkResult), consumer name (kStreamElement), or "engine"
  // (kEvaluation).
  std::string source;
  // Registered query whose result was rejected (kSinkResult) or whose
  // evaluation failed (kEvaluation).
  std::string query;
  // Evaluation time (kSinkResult, kEvaluation) or element timestamp
  // (kStreamElement).
  Timestamp timestamp;
  // The status that permanently rejected the payload.
  Status error;
  // Delivery attempts made before giving up.
  int64_t attempts = 0;

  // At most one of the two payloads is set, matching `kind` (kEvaluation
  // has no payload: the evaluation produced no result to capture).
  std::optional<TimeAnnotatedTable> result;
  std::shared_ptr<const PropertyGraph> element;
};

// An in-memory dead-letter queue (bounded only by what the run rejects;
// a permanently failing sink is quarantined, which caps its inflow).
// Not thread-safe, like the engine that feeds it.
class DeadLetterQueue {
 public:
  void AddSinkResult(const std::string& sink, const std::string& query,
                     Timestamp evaluation_time,
                     const TimeAnnotatedTable& result, Status error,
                     int64_t attempts);
  void AddElement(const std::string& consumer, const StreamElement& element,
                  Status error, int64_t attempts);
  // A query evaluation that failed at runtime; the instant is recorded so
  // an operator can see exactly which ET points of the query's grid are
  // missing from the output.
  void AddEvaluationFailure(const std::string& query,
                            Timestamp evaluation_time, Status error);
  // Appends an already-assembled entry, updating the per-kind counters —
  // the restore path (persist/recovery, ImportJsonLines) re-adds entries
  // captured in an earlier life.
  void Add(DeadLetterEntry entry);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<DeadLetterEntry>& entries() const { return entries_; }

  int64_t sink_results() const { return sink_results_; }
  int64_t elements() const { return elements_; }
  int64_t evaluation_failures() const { return evaluation_failures_; }

  // Mirrors size() into a registry gauge (`seraph_dead_letter_depth`) on
  // every mutation, so live scrapers see the depth without touching the
  // (non-thread-safe) queue itself. Not owned; null detaches.
  void BindDepthGauge(Gauge* gauge) {
    depth_gauge_ = gauge;
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<int64_t>(entries_.size()));
    }
  }

  void Clear();

  // One JSON object per entry (the format documented in
  // docs/INTERNALS.md): sink results carry the full rows payload;
  // elements carry a node/relationship summary of the graph.
  Status WriteJsonLines(std::ostream* os) const;

  // The inverse of WriteJsonLines: parses one JSON object per line and
  // appends the entries (blank lines skipped), so dead letters survive a
  // restart. The export is lossy where noted there — an element's graph
  // reimports as a placeholder with the recorded node/relationship
  // counts, and sink-result rows come back canonicalized — but
  // export → import → re-export is byte-identical, which the round-trip
  // test asserts. Stops at the first malformed line, leaving entries
  // already imported in place.
  Status ImportJsonLines(std::istream* is);

 private:
  // Pushes the current size into the bound gauge (no-op when unbound).
  void UpdateDepth() {
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<int64_t>(entries_.size()));
    }
  }

  std::vector<DeadLetterEntry> entries_;
  int64_t sink_results_ = 0;
  int64_t elements_ = 0;
  int64_t evaluation_failures_ = 0;
  Gauge* depth_gauge_ = nullptr;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_DEAD_LETTER_H_
