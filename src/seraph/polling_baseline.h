// The Section-3.3 workaround, implemented as a comparison baseline: all
// events are merged into one ever-growing store (as the Neo4j Kafka
// connector would), and external driver code re-executes a *plain Cypher*
// query every period. The query itself must window by property predicates
// (as Listing 1 does with val_time bounds) — the system has no notion of
// windows, re-matches the full store each round, and cannot deduplicate
// previously-reported results (no ON ENTERING).
#ifndef SERAPH_SERAPH_POLLING_BASELINE_H_
#define SERAPH_SERAPH_POLLING_BASELINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cypher/ast.h"
#include "graph/property_graph.h"
#include "table/table.h"
#include "temporal/duration.h"
#include "temporal/timestamp.h"
#include "value/value.h"

namespace seraph {

class PollingBaseline {
 public:
  // `query` is a one-time Cypher query (its datetime() calls see the
  // polling instant). `first_run` and `period` fix the polling grid.
  PollingBaseline(Query query, Timestamp first_run, Duration period)
      : query_(std::move(query)), next_run_(first_run), period_(period) {}

  PollingBaseline(const PollingBaseline&) = delete;
  PollingBaseline& operator=(const PollingBaseline&) = delete;

  // Merges an event into the accumulating store.
  Status Ingest(const PropertyGraph& graph);

  void set_parameters(std::map<std::string, Value> params) {
    parameters_ = std::move(params);
  }

  // Runs every poll due up to `now`; returns (instant, result) pairs.
  Result<std::vector<std::pair<Timestamp, Table>>> AdvanceTo(Timestamp now);

  const PropertyGraph& store() const { return store_; }
  int64_t polls_run() const { return polls_run_; }

 private:
  Query query_;
  PropertyGraph store_;
  std::map<std::string, Value> parameters_;
  Timestamp next_run_;
  Duration period_;
  int64_t polls_run_ = 0;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_POLLING_BASELINE_H_
