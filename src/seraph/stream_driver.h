// Transport glue: pumps a (Kafka-like) EventQueue into a ContinuousEngine,
// optionally tolerating bounded out-of-order arrival via a ReorderBuffer.
// This closes the paper's Fig. 1 loop end to end: event queue → property
// graph stream → windows → continuous evaluation.
//
//   EventQueue queue;            // producers append events
//   ContinuousEngine engine;     // queries registered, sinks attached
//   StreamDriver driver(&queue, &engine,
//                       {.allowed_lateness = Duration::FromMinutes(1)});
//   ... while producing: driver.PumpAll();   // deliver + evaluate
//   driver.Finish();                         // flush + final evaluations
#ifndef SERAPH_SERAPH_STREAM_DRIVER_H_
#define SERAPH_SERAPH_STREAM_DRIVER_H_

#include <optional>
#include <string>

#include "seraph/continuous_engine.h"
#include "stream/event_queue.h"
#include "stream/reorder_buffer.h"

namespace seraph {

class StreamDriver {
 public:
  struct Options {
    // Queue consumer-group name (offset key).
    std::string consumer = "seraph-engine";
    // Engine stream to deliver into ("" = default stream).
    std::string target_stream;
    // When set, arrivals may be out of order by up to this much; elements
    // later than the watermark are dropped (counted). When unset, the
    // queue is trusted to be ordered and elements are delivered directly.
    std::optional<Duration> allowed_lateness;
    // Max elements fetched per queue poll.
    size_t poll_batch = 64;
  };

  StreamDriver(EventQueue* queue, ContinuousEngine* engine, Options options)
      : queue_(queue),
        engine_(engine),
        options_(std::move(options)),
        reorder_(options_.allowed_lateness.has_value()
                     ? std::make_optional<ReorderBuffer>(
                           *options_.allowed_lateness)
                     : std::nullopt) {}

  // Polls the queue until empty, delivering releasable elements to the
  // engine and advancing its clock to the delivered horizon (which
  // triggers due evaluations). Returns the number of elements delivered.
  Result<int64_t> PumpAll();

  // Flushes any held out-of-order elements and runs the engine's final
  // due evaluations.
  Status Finish();

  // Elements rejected as too late (only with allowed_lateness).
  int64_t dropped() const {
    return reorder_.has_value() ? reorder_->dropped() : 0;
  }

 private:
  Status Deliver(const StreamElement& element);

  EventQueue* queue_;
  ContinuousEngine* engine_;
  Options options_;
  std::optional<ReorderBuffer> reorder_;
  Timestamp delivered_horizon_;
  bool delivered_any_ = false;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_STREAM_DRIVER_H_
