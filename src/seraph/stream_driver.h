// Transport glue: pumps a (Kafka-like) EventQueue into a ContinuousEngine,
// optionally tolerating bounded out-of-order arrival via a ReorderBuffer.
// This closes the paper's Fig. 1 loop end to end: event queue → property
// graph stream → windows → continuous evaluation.
//
//   EventQueue queue;            // producers append events
//   ContinuousEngine engine;     // queries registered, sinks attached
//   StreamDriver driver(&queue, &engine,
//                       {.allowed_lateness = Duration::FromMinutes(1)});
//   ... while producing: driver.PumpAll();   // deliver + evaluate
//   driver.Finish();                         // flush + final evaluations
//
// Delivery is loss-free under transient failures (docs/INTERNALS.md,
// "Failure model"):
//  * consumer offsets are committed only after successful hand-off — on a
//    delivery failure the driver re-seeks to the first unconsumed offset,
//    so the next PumpAll re-polls exactly the in-flight elements;
//  * elements released by the reorder buffer whose delivery fails are
//    parked in a pending queue (in timestamp order) and retried first on
//    the next pump — nothing released is ever dropped;
//  * transient failures are retried in-pump per `delivery_retry`; an
//    element still failing after `element_error_budget` pumps (or failing
//    permanently) is routed to the dead-letter queue instead of aborting
//    the pump forever.
#ifndef SERAPH_SERAPH_STREAM_DRIVER_H_
#define SERAPH_SERAPH_STREAM_DRIVER_H_

#include <deque>
#include <optional>
#include <string>

#include "common/fault.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "stream/event_queue.h"
#include "stream/reorder_buffer.h"

namespace seraph {

class StreamDriver {
 public:
  struct Options {
    // Queue consumer-group name (offset key).
    std::string consumer = "seraph-engine";
    // Engine stream to deliver into ("" = default stream).
    std::string target_stream;
    // When set, arrivals may be out of order by up to this much; elements
    // later than the watermark are dropped (counted). When unset, the
    // queue is trusted to be ordered and elements are delivered directly.
    std::optional<Duration> allowed_lateness;
    // Max elements fetched per queue poll.
    size_t poll_batch = 64;
    // In-pump retries of transient (kUnavailable) delivery failures.
    // Backoff delays are deterministic and accounted, not slept.
    RetryPolicy delivery_retry;
    // Failed pumps an element may accumulate before it is declared
    // poison and routed to `dead_letter` (each pump already spends
    // `delivery_retry.max_attempts` tries). Permanent (non-transient)
    // errors skip the budget and dead-letter immediately.
    int element_error_budget = 3;
    // Destination for poison elements (not owned). When null, poison
    // elements keep failing the pump instead of being dropped — the
    // caller decides; nothing is ever lost silently.
    DeadLetterQueue* dead_letter = nullptr;
    // ---- Overload degradation (docs/INTERNALS.md, "Overload &
    // backpressure") ----
    // When > 0, the driver enters degraded mode once event-time lag —
    // newest produced timestamp minus the delivered horizon — reaches
    // this many millis, and recovers hysteretically once lag falls to
    // half the threshold. 0 (default) disables degradation.
    int64_t shed_lag_millis = 0;
    // Poll batch while degraded (0 = 4x poll_batch): larger batches cut
    // per-pump overhead while catching up.
    size_t degraded_poll_batch = 0;
    // While degraded, shed every Nth polled element instead of
    // delivering it (sampling-based shed; 0 = never shed). Shed elements
    // are dead-lettered and counted exactly in
    // seraph_shed_total{component="driver"}.
    int shed_sample_every = 0;
    // Reorder pending-set cap (0 = unbounded) and its overflow policy;
    // cap-dropped elements are dead-lettered and counted in
    // seraph_reorder_dropped_total.
    size_t reorder_capacity = 0;
    OverflowPolicy reorder_overflow = OverflowPolicy::kShedOldest;
    // When false, the driver delivers elements but never calls
    // engine->AdvanceTo(): the caller owns the engine clock. Used by the
    // sharded tier, where several lanes feed one engine and the
    // coordinator advances the shard once per pump to its watermark —
    // otherwise the first lane to pump an instant would trigger
    // evaluations before sibling lanes deliver their equal-timestamp
    // elements.
    bool advance_engine_clock = true;
  };

  StreamDriver(EventQueue* queue, ContinuousEngine* engine, Options options)
      : queue_(queue),
        engine_(engine),
        options_(std::move(options)),
        reorder_(options_.allowed_lateness.has_value()
                     ? std::make_optional<ReorderBuffer>(
                           *options_.allowed_lateness)
                     : std::nullopt) {
    if (reorder_.has_value() && options_.reorder_capacity > 0) {
      reorder_->SetCapacity(options_.reorder_capacity,
                            options_.reorder_overflow);
    }
  }

  // Polls the queue until empty, delivering releasable elements to the
  // engine and advancing its clock to the delivered horizon (which
  // triggers due evaluations). Returns the number of elements delivered
  // by this pump. On a transient failure that survives the retry policy
  // the pump returns the error with nothing lost: unconsumed queue
  // elements stay behind the (re-seeked) consumer offset, released
  // elements stay in the pending queue, and the next PumpAll resumes
  // exactly there.
  Result<int64_t> PumpAll();

  // Flushes any held out-of-order elements and runs the engine's final
  // due evaluations. Drain-safe: callable after a failed pump (retries
  // pending elements first) and idempotent on success.
  Status Finish();

  // Elements rejected as too late (only with allowed_lateness).
  int64_t dropped() const {
    return reorder_.has_value() ? reorder_->dropped() : 0;
  }

  // Highest timestamp delivered to the engine so far (meaningful only
  // when delivered_any()). With advance_engine_clock set (the default),
  // PumpAll/Finish advance the engine clock to it.
  Timestamp delivered_horizon() const { return delivered_horizon_; }
  bool delivered_any() const { return delivered_any_; }

  // Released-but-undelivered elements parked for the next pump.
  size_t pending() const { return pending_.size(); }
  // Cumulative elements delivered to the engine across pumps.
  int64_t delivered_total() const { return delivered_total_; }
  // Cumulative in-pump delivery retries.
  int64_t retries() const { return retries_; }
  // Poison elements routed to the dead-letter queue.
  int64_t dead_lettered() const { return dead_lettered_; }
  // Offset rollbacks after mid-batch failures.
  int64_t reseeks() const { return reseeks_; }
  // Whether the driver is currently in degraded (overload) mode.
  bool degraded() const { return degraded_; }
  // Times the driver entered degraded mode.
  int64_t degraded_entries() const { return degraded_entries_; }
  // Elements shed by degraded-mode sampling (each one dead-lettered).
  int64_t shed_total() const { return shed_total_; }
  // Elements dropped by the reorder pending-set cap (each one
  // dead-lettered).
  int64_t reorder_overflow_total() const { return reorder_overflow_total_; }

 private:
  Status Deliver(const StreamElement& element);
  // Deliver with in-pump retries per options_.delivery_retry.
  Status DeliverWithRetry(const StreamElement& element);
  // Tries to consume one element: returns true when delivered, false
  // when dead-lettered, or a transient error when the element should be
  // retried on a later pump. `attempts` carries the element's failed-pump
  // count across pumps and is zeroed once the element is consumed.
  Result<bool> TryConsume(const StreamElement& element, int* attempts);
  // Delivers queued pending elements in order, stopping at the first
  // element that must wait for a later pump.
  Status DrainPending(int64_t* delivered);
  // Registers driver metrics with the engine's registry (idempotent).
  void EnsureMetrics();
  // Refreshes the backlog / reorder-occupancy health gauges (end of each
  // pump and finish).
  void UpdateBacklogGauges();
  // Enters/exits degraded mode against the current event-time lag
  // (hysteretic: in at shed_lag_millis, out at half of it).
  void UpdateDegradedState();
  // Dead-letters an element lost to overload (sampling shed / reorder
  // cap) so the (delivered ∪ dead-lettered) partition stays exact.
  void DeadLetterShed(const StreamElement& element, const char* reason);

  EventQueue* queue_;
  ContinuousEngine* engine_;
  Options options_;
  std::optional<ReorderBuffer> reorder_;
  // Released from the reorder buffer but not yet accepted by the engine.
  std::deque<StreamElement> pending_;
  int pending_attempts_ = 0;
  // Direct-path poison tracking, keyed by queue offset.
  size_t failing_offset_ = 0;
  int failing_attempts_ = 0;
  Timestamp delivered_horizon_;
  bool delivered_any_ = false;
  int64_t delivered_total_ = 0;
  int64_t retries_ = 0;
  int64_t dead_lettered_ = 0;
  int64_t reseeks_ = 0;
  // Degraded-mode state (see Options::shed_lag_millis).
  bool degraded_ = false;
  int64_t degraded_entries_ = 0;
  int64_t shed_total_ = 0;
  int64_t shed_stride_ = 0;
  int64_t reorder_overflow_total_ = 0;
  // Cached registry handles (owned by the engine's registry).
  Counter* delivered_counter_ = nullptr;
  Counter* retries_counter_ = nullptr;
  Counter* dead_letter_counter_ = nullptr;
  Counter* reseeks_counter_ = nullptr;
  Counter* backoff_counter_ = nullptr;
  // Health gauges (docs/INTERNALS.md, "Latency accounting & lag"):
  // undelivered queue depth (incl. parked releases) and reorder-buffer
  // occupancy.
  Gauge* backlog_gauge_ = nullptr;
  Gauge* reorder_pending_gauge_ = nullptr;
  // Overload surface: degraded-mode flag, exact shed counters, and the
  // per-stream cumulative shed gauge (queue + driver + reorder losses).
  Gauge* degraded_gauge_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Counter* reorder_dropped_counter_ = nullptr;
  Gauge* stream_shed_gauge_ = nullptr;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_STREAM_DRIVER_H_
