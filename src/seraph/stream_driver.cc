#include "seraph/stream_driver.h"

#include "common/logging.h"

namespace seraph {

void StreamDriver::EnsureMetrics() {
  if (delivered_counter_ != nullptr) return;
  MetricsRegistry& registry = engine_->metrics();
  const MetricLabels labels{{"consumer", options_.consumer}};
  delivered_counter_ =
      registry.CounterFor("seraph_driver_delivered_total", labels);
  retries_counter_ = registry.CounterFor("seraph_driver_retries_total", labels);
  dead_letter_counter_ =
      registry.CounterFor("seraph_driver_dead_lettered_total", labels);
  reseeks_counter_ = registry.CounterFor("seraph_driver_reseeks_total", labels);
  backoff_counter_ =
      registry.CounterFor("seraph_driver_backoff_millis_total", labels);
  backlog_gauge_ = registry.GaugeFor("seraph_driver_backlog", labels);
  reorder_pending_gauge_ =
      registry.GaugeFor("seraph_driver_reorder_pending", labels);
  degraded_gauge_ = registry.GaugeFor("seraph_driver_degraded", labels);
  shed_counter_ = registry.CounterFor(
      "seraph_shed_total",
      {{"component", "driver"}, {"consumer", options_.consumer}});
  reorder_dropped_counter_ =
      registry.CounterFor("seraph_reorder_dropped_total", labels);
  stream_shed_gauge_ = registry.GaugeFor(
      "seraph_stream_shed_total",
      {{"stream", options_.target_stream.empty() ? "<default>"
                                                 : options_.target_stream}});
}

void StreamDriver::UpdateBacklogGauges() {
  // Backlog = events appended to the queue but not yet committed past by
  // this consumer, plus releases parked for retry. Both are health
  // signals for the /metrics endpoint: a growing backlog means the
  // consumer is not keeping up with producers.
  const size_t offset = queue_->OffsetOf(options_.consumer).value_or(0);
  const size_t total = queue_->size();
  backlog_gauge_->Set(static_cast<int64_t>(total > offset ? total - offset
                                                          : 0) +
                      static_cast<int64_t>(pending_.size()));
  reorder_pending_gauge_->Set(
      reorder_.has_value() ? static_cast<int64_t>(reorder_->pending()) : 0);
  // Cumulative elements this stream lost to overload, across all layers
  // that can shed: the bounded queue, degraded-mode sampling, and the
  // reorder pending-set cap. Exact by construction — each layer counts
  // at the moment it drops.
  stream_shed_gauge_->Set(queue_->shed_total() + shed_total_ +
                          reorder_overflow_total_);
}

void StreamDriver::UpdateDegradedState() {
  if (options_.shed_lag_millis <= 0) return;
  // Event-time lag: newest produced timestamp minus the delivered
  // horizon (before anything was delivered, minus the oldest retained
  // element — a cold start facing a deep backlog is lagging too). Both
  // ends are event time, so the signal is deterministic.
  const Timestamp newest = queue_->MaxTimestamp();
  int64_t lag_millis = 0;
  if (delivered_any_) {
    lag_millis = newest.millis() - delivered_horizon_.millis();
  } else if (queue_->depth() > 0) {
    lag_millis = newest.millis() - queue_->log().at(0).timestamp.millis();
  } else {
    return;
  }
  if (lag_millis < 0) lag_millis = 0;
  if (!degraded_ && lag_millis >= options_.shed_lag_millis) {
    degraded_ = true;
    ++degraded_entries_;
    degraded_gauge_->Set(1);
    SERAPH_LOG(WARNING) << "driver '" << options_.consumer
                        << "' entering degraded mode: event-time lag "
                        << lag_millis << " ms >= " << options_.shed_lag_millis
                        << " ms";
  } else if (degraded_ && lag_millis <= options_.shed_lag_millis / 2) {
    degraded_ = false;
    degraded_gauge_->Set(0);
    SERAPH_LOG(INFO) << "driver '" << options_.consumer
                     << "' recovered from degraded mode: event-time lag "
                     << lag_millis << " ms <= "
                     << options_.shed_lag_millis / 2 << " ms";
  }
}

void StreamDriver::DeadLetterShed(const StreamElement& element,
                                  const char* reason) {
  if (options_.dead_letter != nullptr) {
    options_.dead_letter->AddElement(options_.consumer, element,
                                     Status::Unavailable(reason),
                                     /*attempts=*/0);
  }
}

Status StreamDriver::Deliver(const StreamElement& element) {
  SERAPH_FAULT_POINT("driver.deliver");
  // The arrival stamp rides through from EventQueue::Produce so emit
  // latency covers the element's full queue wait, not just engine time.
  SERAPH_RETURN_IF_ERROR(engine_->IngestTo(options_.target_stream,
                                           element.graph, element.timestamp,
                                           element.arrival_micros));
  if (!delivered_any_ || element.timestamp > delivered_horizon_) {
    delivered_horizon_ = element.timestamp;
    delivered_any_ = true;
  }
  return Status::OK();
}

Status StreamDriver::DeliverWithRetry(const StreamElement& element) {
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = Deliver(element);
    if (status.ok()) return status;
    if (!options_.delivery_retry.ShouldRetry(status, attempt)) return status;
    ++retries_;
    retries_counter_->Increment();
    // Deterministic backoff, accounted rather than slept (simulated
    // time; see common/fault.h).
    backoff_counter_->Increment(
        options_.delivery_retry.DelayMillisFor(attempt));
  }
}

Result<bool> StreamDriver::TryConsume(const StreamElement& element,
                                      int* attempts) {
  Status status = DeliverWithRetry(element);
  if (status.ok()) {
    *attempts = 0;
    ++delivered_total_;
    delivered_counter_->Increment();
    return true;
  }
  ++*attempts;
  const bool budget_spent = *attempts >= options_.element_error_budget;
  if ((!status.IsTransient() || budget_spent) &&
      options_.dead_letter != nullptr) {
    // Poison: quarantine the element instead of wedging the pump.
    options_.dead_letter->AddElement(options_.consumer, element, status,
                                     *attempts);
    ++dead_lettered_;
    dead_letter_counter_->Increment();
    SERAPH_LOG(WARNING) << "dead-lettering element at "
                        << element.timestamp.ToString() << " after "
                        << *attempts << " failed pump(s): " << status;
    *attempts = 0;
    return false;
  }
  return status;
}

Status StreamDriver::DrainPending(int64_t* delivered) {
  while (!pending_.empty()) {
    SERAPH_ASSIGN_OR_RETURN(bool was_delivered,
                            TryConsume(pending_.front(), &pending_attempts_));
    pending_.pop_front();
    if (was_delivered) ++*delivered;
  }
  return Status::OK();
}

Result<int64_t> StreamDriver::PumpAll() {
  EnsureMetrics();
  // The driver owns its consumer registration: the queue rejects polls
  // from unknown names (a stray name must not pin retention), so attach
  // explicitly — but only when the queue has no committed offset yet, so
  // a recovery-restored position is never clobbered back to the base.
  if (!queue_->HasConsumer(options_.consumer)) {
    queue_->Subscribe(options_.consumer);
  }
  int64_t delivered = 0;
  // Elements released by an earlier pump whose delivery failed retry
  // first, preserving timestamp order into the engine.
  SERAPH_RETURN_IF_ERROR(DrainPending(&delivered));
  while (true) {
    // Degradation check per batch so the driver both enters overload
    // mode mid-pump (a deep poll backlog) and recovers mid-pump (lag
    // shrinking as the horizon advances).
    UpdateDegradedState();
    const size_t poll_batch =
        degraded_ ? (options_.degraded_poll_batch > 0
                         ? options_.degraded_poll_batch
                         : options_.poll_batch * 4)
                  : options_.poll_batch;
    // Subscribed above (or restored by recovery), so the offset exists;
    // value_or guards fault doubles that track offsets out of band.
    const size_t batch_start =
        queue_->OffsetOf(options_.consumer).value_or(0);
    auto batch = queue_->Poll(options_.consumer, poll_batch);
    // A failed poll consumed nothing; surface it and let the caller
    // re-pump.
    if (!batch.ok()) return batch.status();
    if (batch->empty()) break;
    size_t consumed = 0;  // Elements of this batch safely handed off.
    Status error;
    for (const StreamElement& element : *batch) {
      // Degraded-mode sampling shed: every Nth polled element is dropped
      // — dead-lettered and counted exactly — instead of delivered, so a
      // driver that cannot keep up trades bounded, accounted loss for
      // catching up. The offset commits past shed elements like past
      // delivered ones.
      if (degraded_ && options_.shed_sample_every > 0 &&
          ++shed_stride_ % options_.shed_sample_every == 0) {
        DeadLetterShed(element, "shed: driver degraded (overload)");
        ++shed_total_;
        shed_counter_->Increment();
        ++consumed;
        continue;
      }
      if (reorder_.has_value()) {
        // Offering transfers custody to the (driver-owned) buffer: the
        // element is either held, counted as a late drop, or refused /
        // displaced by the pending-set cap. Releases are parked in
        // pending_ so a failed delivery cannot lose them (they are no
        // longer re-pollable from the queue).
        const int64_t overflow_before = reorder_->overflow_dropped();
        const bool accepted = reorder_->Offer(element);
        ++consumed;
        if (!accepted && reorder_->overflow_dropped() > overflow_before) {
          // Refused by the cap (reject policy), not a late drop.
          DeadLetterShed(element, "reorder pending-set cap (reject)");
          ++reorder_overflow_total_;
          reorder_dropped_counter_->Increment();
        }
        for (StreamElement& evicted : reorder_->TakeOverflow()) {
          DeadLetterShed(evicted, "reorder pending-set cap (shed_oldest)");
          ++reorder_overflow_total_;
          reorder_dropped_counter_->Increment();
        }
        for (StreamElement& released : reorder_->Release()) {
          pending_.push_back(std::move(released));
        }
        error = DrainPending(&delivered);
        if (!error.ok()) break;
      } else {
        const size_t offset = batch_start + consumed;
        if (offset != failing_offset_) {
          failing_offset_ = offset;
          failing_attempts_ = 0;
        }
        auto consumed_result = TryConsume(element, &failing_attempts_);
        if (!consumed_result.ok()) {
          error = consumed_result.status();
          break;
        }
        if (*consumed_result) ++delivered;
        ++consumed;
      }
    }
    if (consumed < batch->size()) {
      // Commit only what was handed off; the failing element and its
      // successors are re-polled by the next pump (at-least-once with
      // the engine's order checks making redelivery exact-once).
      Status seek = queue_->Seek(options_.consumer, batch_start + consumed);
      if (!seek.ok()) {
        // The offset is within the polled range by construction; a
        // failing seek means the queue itself regressed.
        return Status::Internal("recovery seek failed: " + seek.ToString());
      }
      ++reseeks_;
      reseeks_counter_->Increment();
      return error;
    }
    // A delivery failure on the batch's final element leaves nothing to
    // re-poll (everything was consumed into the buffer / pending queue)
    // but must still surface so the caller re-pumps the pending work.
    if (!error.ok()) return error;
  }
  UpdateBacklogGauges();
  if (delivered_any_ && options_.advance_engine_clock) {
    SERAPH_RETURN_IF_ERROR(engine_->AdvanceTo(delivered_horizon_));
  }
  return delivered;
}

Status StreamDriver::Finish() {
  EnsureMetrics();
  if (reorder_.has_value()) {
    for (StreamElement& released : reorder_->Flush()) {
      pending_.push_back(std::move(released));
    }
  }
  int64_t delivered = 0;
  SERAPH_RETURN_IF_ERROR(DrainPending(&delivered));
  UpdateBacklogGauges();
  if (delivered_any_ && options_.advance_engine_clock) {
    SERAPH_RETURN_IF_ERROR(engine_->AdvanceTo(delivered_horizon_));
  }
  return Status::OK();
}

}  // namespace seraph
