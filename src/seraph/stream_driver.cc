#include "seraph/stream_driver.h"

namespace seraph {

Status StreamDriver::Deliver(const StreamElement& element) {
  SERAPH_RETURN_IF_ERROR(engine_->IngestTo(options_.target_stream,
                                           element.graph, element.timestamp));
  if (!delivered_any_ || element.timestamp > delivered_horizon_) {
    delivered_horizon_ = element.timestamp;
    delivered_any_ = true;
  }
  return Status::OK();
}

Result<int64_t> StreamDriver::PumpAll() {
  int64_t delivered = 0;
  while (true) {
    auto batch = queue_->Poll(options_.consumer, options_.poll_batch);
    if (batch.empty()) break;
    for (const StreamElement& element : batch) {
      if (reorder_.has_value()) {
        reorder_->Offer(element.graph, element.timestamp);
        for (const StreamElement& released : reorder_->Release()) {
          SERAPH_RETURN_IF_ERROR(Deliver(released));
          ++delivered;
        }
      } else {
        SERAPH_RETURN_IF_ERROR(Deliver(element));
        ++delivered;
      }
    }
  }
  if (delivered_any_) {
    SERAPH_RETURN_IF_ERROR(engine_->AdvanceTo(delivered_horizon_));
  }
  return delivered;
}

Status StreamDriver::Finish() {
  if (reorder_.has_value()) {
    for (const StreamElement& released : reorder_->Flush()) {
      SERAPH_RETURN_IF_ERROR(Deliver(released));
    }
  }
  if (delivered_any_) {
    SERAPH_RETURN_IF_ERROR(engine_->AdvanceTo(delivered_horizon_));
  }
  return Status::OK();
}

}  // namespace seraph
