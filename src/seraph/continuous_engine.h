// The Seraph continuous query engine: the Fig. 5 pipeline.
//
//   stream S ──► window operator W(ω0, α, β) ──► snapshot graph G_w
//          ──► Cypher clause evaluation (fixed evaluation instant)
//          ──► report policy (SNAPSHOT / ON ENTERING / ON EXITING)
//          ──► stream of time-annotated tables (EMIT) or one table (RETURN)
//
// Evaluation is snapshot-reducible by construction (Def. 5.8): the result
// at every evaluation time instant equals running the body as a one-time
// Cypher query over the active window's snapshot graph; a property test
// asserts this against the independent one-time execution path.
//
// Beyond the paper's core, the engine implements three items of its §6/§8
// roadmap:
//  * result reuse across evaluations whose window contents are unchanged
//    ("avoidable re-executions on equal window contents", §6) — applied
//    only to queries whose results are window-content-deterministic;
//  * multiple named input streams (§8 (i)): each MATCH may window over a
//    specific stream via `WITHIN ... FROM <stream>`;
//  * static background graph data (§8 (iii)): entities present in every
//    snapshot underneath the stream's contributions.
#ifndef SERAPH_SERAPH_CONTINUOUS_ENGINE_H_
#define SERAPH_SERAPH_CONTINUOUS_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "seraph/dead_letter.h"
#include "seraph/seraph_query.h"
#include "stream/graph_stream.h"
#include "stream/snapshot.h"
#include "stream/window.h"
#include "table/time_table.h"

namespace seraph {

// Receives evaluation results. Implementations must not re-enter the
// engine.
class EmitSink {
 public:
  virtual ~EmitSink() = default;

  // Called once per evaluation that produces output under the query's
  // report policy. `table` carries the active window of the query's widest
  // WITHIN. Evaluations whose delta is empty (ON ENTERING / ON EXITING
  // with no change) are still reported, with an empty table, so sinks see
  // the full ET sequence.
  //
  // Returns OK when the result was accepted. A kUnavailable status marks
  // a transient failure the engine may retry per the sink's policy; any
  // other error is permanent for this delivery. Sink failures never fail
  // the evaluation: the engine isolates the sink (retry → dead-letter →
  // quarantine, see docs/INTERNALS.md "Failure model").
  virtual Status OnResult(const std::string& query_name,
                          Timestamp evaluation_time,
                          const TimeAnnotatedTable& table) = 0;
};

// Records every result per query; the recorded sequence is the
// time-varying table Ψ of Def. 5.7.
class CollectingSink final : public EmitSink {
 public:
  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override;

  // Results of `query_name` in evaluation order (empty if none).
  const TimeVaryingTable& ResultsFor(const std::string& query_name) const;

  // The result emitted at exactly `t`, if any.
  std::optional<TimeAnnotatedTable> ResultAt(const std::string& query_name,
                                             Timestamp t) const;

 private:
  std::map<std::string, TimeVaryingTable> results_;
  std::map<std::string, std::map<Timestamp, TimeAnnotatedTable>> by_time_;
};

struct EngineOptions {
  WindowSemantics semantics = WindowSemantics::kLookback;
  // Incremental window maintenance (IncrementalSnapshotter) vs. rebuilding
  // each window's snapshot from scratch — ablated in
  // bench_incremental_window.
  bool incremental_snapshots = true;
  // Skip re-execution when every window's element range is unchanged
  // since the previous evaluation (and the query is window-content
  // deterministic) — ablated in bench_result_reuse.
  bool reuse_unchanged_windows = true;
  // Delta matching (docs/INTERNALS.md, "Incremental evaluation"): for
  // eligible single-pattern EMIT queries, keep a per-query partial-match
  // index synchronized with the snapshotter's dirty sets so an
  // evaluation costs work proportional to the window churn instead of
  // the window size — ablated in bench_delta. Requires
  // incremental_snapshots (the dirty sets are the repair input).
  bool delta_matching = true;
  // Greedy MATCH join-order optimization — ablated in bench_match.
  bool optimize_match_order = true;
  std::map<std::string, Value> parameters;
  // Optional span tracer (not owned; may outlive the engine's interest).
  // When null or disabled the instrumented paths never read the trace
  // clock — see common/trace.h. Spans map 1:1 onto the Fig. 5 stages
  // (window → snapshot → match → policy → sink).
  TraceRecorder* tracer = nullptr;
  // When set (not owned), results permanently rejected by a sink are
  // captured here instead of being lost.
  DeadLetterQueue* dead_letter = nullptr;
  // Worker threads for evaluation (docs/INTERNALS.md, "Parallel
  // evaluation"). 1 (default) keeps the serial engine; 0 means one
  // worker per hardware thread; N > 1 evaluates each instant's due
  // queries concurrently on N workers. Sink delivery stays sequential on
  // the coordinator in deterministic (timestamp, query name) order, so
  // output is identical to the serial engine at any thread count.
  int eval_threads = 1;
  // Intra-query parallel pattern matching (docs/INTERNALS.md, "Intra-query
  // parallelism"). 1 (default) keeps matching serial; 0 means one worker
  // per hardware thread; N > 1 lets a query's top-level seed scan fan out
  // in morsels on the shared pool. The scheduler grants it only when the
  // due batch is smaller than the pool (spare workers exist); results are
  // bit-identical to serial matching at any thread count.
  int match_threads = 1;
  // Fan out only when the seed domain has at least this many candidates.
  int match_min_seeds = 2048;
  // Seed candidates per morsel.
  int match_morsel_size = 512;
  // Evaluation deadline (docs/INTERNALS.md, "Overload & backpressure"):
  // when > 0, each query evaluation carries a cooperative cancellation
  // token the matcher checks at seed/expansion boundaries; an evaluation
  // exceeding the deadline fails with kDeadlineExceeded and flows through
  // the isolation path (dead-letter, error budget, disable, revive) like
  // any other evaluation failure. 0 (default) = no deadline, no token,
  // zero overhead. The deadline is measured on the latency clock
  // (`clock`), so tests drive it with a ManualClock.
  int64_t eval_deadline_millis = 0;
  // Batch-barrier watchdog: with parallel evaluation, the coordinator
  // logs (and gauges, seraph_engine_stuck_evals) any evaluation still
  // running this many millis after its batch started, naming the
  // offending query. 0 = auto: 4x eval_deadline_millis when a deadline
  // is set (a cooperative deadline should have fired long before), else
  // 10s. Wall-clock by necessity — the watchdog exists to detect stuck
  // threads that no injectable clock tick would ever reach.
  int64_t watchdog_millis = 0;
  // Query isolation: after this many *consecutive* failed evaluations a
  // query is disabled (it stops being scheduled; the rest of the fleet
  // keeps running — the query-side mirror of sink quarantine). 0 never
  // disables. ReviveQuery lifts it.
  int query_error_budget = 5;
  // Emit-latency accounting (docs/INTERNALS.md, "Latency accounting &
  // lag"): when true, elements arriving unstamped are stamped with the
  // clock at ingestion, and sink delivery records each covered element's
  // ingest→emit latency into `seraph_emit_latency_micros{query=...}` plus
  // the per-stage breakdown. Off = no clock reads, no samples (the
  // overhead ablation arm of bench_emit_latency).
  bool latency_stamping = true;
  // The clock behind arrival stamps and delivery reads. nullptr (default)
  // = Clock::Steady(); tests inject a ManualClock for deterministic
  // latency histograms.
  const Clock* clock = nullptr;
  // Durability cadence (docs/INTERNALS.md, "Durability & recovery"): when
  // > 0 and a checkpoint callback is installed (SetCheckpointCallback —
  // persist::CheckpointManager::AttachTo does both), the callback fires
  // at the batch barrier of AdvanceTo after every `checkpoint_every`
  // completed evaluation batches, where streams_ and all per-query state
  // are frozen and consistent. 0 (default) disables the cadence.
  int64_t checkpoint_every = 0;
};

// Per-sink failure handling (see docs/INTERNALS.md, "Failure model").
struct SinkPolicy {
  // Transient (kUnavailable) failures are retried in-place this many
  // times; backoff delays are deterministic and recorded, not slept.
  RetryPolicy retry = RetryPolicy::None();
  // After this many *consecutive* failed deliveries (retries exhausted or
  // permanent error) the sink is quarantined: it stops receiving results
  // but evaluation and the other sinks continue.
  int quarantine_after = 5;
};

// Per-query execution counters, including the per-stage cost breakdown of
// the Fig. 5 pipeline. The same numbers (plus latency distributions) are
// exported through the engine's MetricsRegistry; QueryStats is the cheap
// struct-valued view for tests and benches.
struct QueryStats {
  int64_t evaluations = 0;       // Total ET instants processed.
  int64_t reused_results = 0;    // Evaluations served from the reuse cache.
  int64_t rows_emitted = 0;      // Rows delivered to sinks (post-policy).
  int64_t result_rows = 0;       // Rows computed (pre-policy, SNAPSHOT view).
  // Window / snapshot maintenance.
  int64_t snapshots_incremental = 0;  // Windows advanced by delta.
  int64_t snapshots_rebuilt = 0;      // Windows re-merged from scratch.
  int64_t window_elements_added = 0;    // Elements entering any window.
  int64_t window_elements_evicted = 0;  // Elements leaving any window.
  // MATCH executions that actually ran (evaluations - reused_results).
  int64_t fresh_executions = 0;
  // Cumulative per-stage wall time (microseconds) across evaluations.
  int64_t window_micros = 0;    // Active-interval & element-range work.
  int64_t snapshot_micros = 0;  // Snapshot advance / rebuild.
  int64_t match_micros = 0;     // Cypher clause evaluation (or reuse copy).
  int64_t policy_micros = 0;    // Report-policy delta computation.
  int64_t sink_micros = 0;      // Sink delivery.
  // Query isolation (docs/INTERNALS.md, "Failure model").
  int64_t eval_failures = 0;    // Evaluations that failed at runtime.
  Status last_error;            // Most recent evaluation error (OK if none).

  friend bool operator==(const QueryStats& a, const QueryStats& b) {
    return a.evaluations == b.evaluations &&
           a.reused_results == b.reused_results &&
           a.rows_emitted == b.rows_emitted &&
           a.result_rows == b.result_rows &&
           a.snapshots_incremental == b.snapshots_incremental &&
           a.snapshots_rebuilt == b.snapshots_rebuilt &&
           a.window_elements_added == b.window_elements_added &&
           a.window_elements_evicted == b.window_elements_evicted &&
           a.fresh_executions == b.fresh_executions &&
           a.window_micros == b.window_micros &&
           a.snapshot_micros == b.snapshot_micros &&
           a.match_micros == b.match_micros &&
           a.policy_micros == b.policy_micros &&
           a.sink_micros == b.sink_micros &&
           a.eval_failures == b.eval_failures && a.last_error == b.last_error;
  }
};

// The persisted dynamic state of one registered query — everything the
// replay-exactness contract needs to resume the query's ET grid and
// report policy mid-stream (docs/INTERNALS.md, "Durability & recovery").
// The query *definition* is not captured: recovery re-registers queries
// from their source of truth (the run's configuration) and then overlays
// this state. Window/snapshotter internals and the unchanged-window reuse
// bookkeeping are deliberately absent: a restored query re-derives its
// windows from the restored streams on its next evaluation, and skipping
// the reuse fast path changes cost, never output.
struct QueryCheckpoint {
  std::string name;
  // ET-grid position: the next evaluation instant.
  Timestamp next_eval;
  bool done = false;      // RETURN-once query already produced its table.
  bool disabled = false;  // Disabled by the error budget (or RETURN fail).
  int consecutive_failures = 0;
  // Report-policy state: the previous evaluation's un-annotated result,
  // the minuend/subtrahend of the ON ENTERING / ON EXITING bag
  // differences.
  bool has_previous = false;
  Table previous_result;
  QueryStats stats;
};

// A full, consistent image of the engine's dynamic state, captured at a
// batch barrier (CaptureCheckpoint) and reapplied to a freshly
// constructed engine (RestoreFrom). persist/codec.h defines its binary
// encoding; persist/checkpoint.h writes it to disk.
struct EngineCheckpoint {
  Timestamp clock;
  bool clock_started = false;
  int64_t evaluations_run = 0;
  // Every stream's observed prefix, element graphs shared (not deep
  // copied) with the live engine.
  std::map<std::string, std::vector<StreamElement>> streams;
  // Name-ordered, one entry per registered query.
  std::vector<QueryCheckpoint> queries;
};

class ContinuousEngine {
 public:
  explicit ContinuousEngine(EngineOptions options = {});
  ~ContinuousEngine();  // Out-of-line: QueryState is private/incomplete.

  // Non-copyable (owns per-query incremental state).
  ContinuousEngine(const ContinuousEngine&) = delete;
  ContinuousEngine& operator=(const ContinuousEngine&) = delete;

  // ---- Query registry (REGISTER QUERY) ----

  // Registers a parsed query. Fails with kAlreadyExists on name clashes.
  Status Register(RegisteredQuery query);
  // Parses and registers Seraph query text.
  Status RegisterText(std::string_view seraph_text);
  // Deletes a registered query and its state.
  Status Unregister(const std::string& name);
  std::vector<std::string> QueryNames() const;

  // Execution counters of a registered query.
  Result<QueryStats> StatsFor(const std::string& name) const;

  // Wall-clock evaluation latency distribution (microseconds) of a
  // registered query.
  Result<HistogramSnapshot> LatencyFor(const std::string& name) const;

  // The engine-lifetime metrics registry: per-query pipeline-stage
  // histograms (`seraph_stage_micros{query=...,stage=...}`), execution
  // counters, and per-stream ingestion counters. Series survive
  // Unregister so post-run exposition still sees completed queries.
  // Naming conventions are documented in docs/INTERNALS.md.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Sinks receive results of every query; not owned. Each sink is
  // isolated: a failing sink is retried per its policy, its permanently
  // rejected results go to the dead-letter queue (when configured), and
  // after `quarantine_after` consecutive failures it is quarantined —
  // without ever blocking evaluation or the other sinks. The unnamed
  // overload keeps the historical contract (no retry, metrics under
  // "sink<index>").
  void AddSink(EmitSink* sink);
  void AddSink(EmitSink* sink, std::string name, SinkPolicy policy = {});

  // Whether the named sink has been quarantined (false for unknown
  // names).
  bool SinkQuarantined(const std::string& name) const;
  // Lifts a sink's quarantine and resets its failure streak (operator
  // intervention after fixing the consumer).
  Status ReviveSink(const std::string& name);

  // Whether the named query was disabled after exhausting
  // `EngineOptions::query_error_budget` (false for unknown names). A
  // RETURN-once query whose single evaluation fails is disabled
  // immediately, regardless of the budget: it has no later instant to
  // retry at, and disabling makes the failure observable here instead of
  // the query silently counting as completed.
  bool QueryDisabled(const std::string& name) const;
  // Re-enables a disabled query and resets its failure streak. The query
  // resumes from where its ET grid stopped, catching up on instants
  // missed while disabled at the next AdvanceTo. For a failed RETURN-once
  // query this re-arms the single evaluation at its original instant.
  Status ReviveQuery(const std::string& name);

  // ---- Static background graph (§8 (iii)) ----

  // Installs graph data that is part of every snapshot, underneath the
  // stream contributions. Must be called before any query is registered.
  Status SetStaticGraph(PropertyGraph graph);

  // ---- Stream ingestion ----

  // Appends one element (G, ω) to the default stream. Elements must be
  // appended before the engine's clock passes ω.
  Status Ingest(PropertyGraph graph, Timestamp timestamp);
  Status Ingest(std::shared_ptr<const PropertyGraph> graph,
                Timestamp timestamp);

  // Appends to a named stream (created on first use; targeted by
  // `WITHIN ... FROM <name>`).
  Status IngestTo(const std::string& stream,
                  std::shared_ptr<const PropertyGraph> graph,
                  Timestamp timestamp);
  Status IngestTo(const std::string& stream, PropertyGraph graph,
                  Timestamp timestamp);
  // Same, with an upstream arrival stamp (microseconds on the engine
  // clock's timebase) carried from the transport — StreamDriver passes the
  // EventQueue's Produce stamp through here so emit latency covers queue
  // wait. 0 means unstamped; with latency_stamping on, unstamped elements
  // are stamped now (latency then measures ingest→emit only).
  Status IngestTo(const std::string& stream,
                  std::shared_ptr<const PropertyGraph> graph,
                  Timestamp timestamp, int64_t arrival_micros);

  // ---- Evaluation driver ----

  // Advances the engine clock to `now`, running every due evaluation time
  // instant of every registered query in global chronological order.
  // Instants are processed in batches (all queries due at the same
  // instant form one batch); with `eval_threads` > 1 a batch's
  // evaluations run concurrently, while delivery to sinks always happens
  // sequentially on the calling thread in (timestamp, query name) order.
  // With `match_threads` > 1 and a batch smaller than the pool, a query's
  // top-level seed scan additionally fans out in morsels on the spare
  // workers (results stay bit-identical to serial matching).
  // A query whose evaluation fails at runtime no longer fails the call:
  // the error is recorded per query (StatsFor(...).last_error,
  // seraph_query_eval_failures_total), dead-lettered when a queue is
  // configured, and the query is disabled after
  // `EngineOptions::query_error_budget` consecutive failures — the rest
  // of the fleet keeps running.
  Status AdvanceTo(Timestamp now);

  // Advances to the latest timestamp across all streams.
  Status Drain();

  // ---- Durability (docs/INTERNALS.md, "Durability & recovery") ----

  // A consistent image of the engine's dynamic state. Only safe at a
  // quiescent point: between AdvanceTo calls, or from the checkpoint
  // callback (which the engine fires at a batch barrier).
  EngineCheckpoint CaptureCheckpoint() const;

  // Rebuilds dynamic state from `checkpoint` into this engine. The engine
  // must be freshly constructed (no ingested elements, clock not started)
  // with every query named in the checkpoint already re-registered —
  // recovery re-creates definitions first, then overlays dynamic state.
  // After RestoreFrom, replaying the stream suffix past the checkpoint
  // clock produces output bit-identical to an uninterrupted run.
  Status RestoreFrom(const EngineCheckpoint& checkpoint);

  // Installs the hook fired at the AdvanceTo batch barrier every
  // `EngineOptions::checkpoint_every` batches (persist::CheckpointManager
  // wires itself in through this). A failing callback is logged and
  // counted by the manager but never fails AdvanceTo: losing one
  // checkpoint widens the replay window, it does not corrupt the run.
  void SetCheckpointCallback(std::function<Status()> callback);

  // The default stream (name "").
  const PropertyGraphStream& stream() const;
  // A named stream; a shared empty stream is returned for names that
  // were never ingested to (reading never creates state).
  const PropertyGraphStream& stream(const std::string& name) const;
  // Names of the streams that exist (ingested to, or referenced by a
  // registered query's WITHIN ... FROM).
  std::vector<std::string> StreamNames() const;
  const EngineOptions& options() const { return options_; }

  // Total evaluations run (introspection for tests/benches).
  int64_t evaluations_run() const { return evaluations_run_; }

 private:
  struct QueryState;

  // One registered sink plus its isolation state and cached metric
  // handles (resolved once at AddSink).
  struct SinkState {
    EmitSink* sink = nullptr;
    std::string name;
    SinkPolicy policy;
    int consecutive_failures = 0;
    bool quarantined = false;
    Counter* deliveries = nullptr;
    Counter* failures = nullptr;
    Counter* retries = nullptr;
    Counter* dead_lettered = nullptr;
    Gauge* quarantined_gauge = nullptr;
  };

  // The computed-but-undelivered output of one evaluation: workers
  // produce these, the coordinator delivers them sequentially.
  struct PendingDelivery {
    TimeAnnotatedTable annotated;
    int64_t eval_start_micros = 0;  // Start of the evaluation stages.
    int64_t eval_end_micros = 0;    // End of the policy stage.
    // Emit-latency stage breakdown, filled by EvaluateAt when
    // latency_stamping is on. latency_eval_start_micros is read from the
    // *latency* clock (options_.clock), which in tests is a ManualClock on
    // a different timebase than the trace clock above — queue wait is
    // (latency_eval_start − arrival), so both ends must come from the
    // same clock.
    int64_t latency_eval_start_micros = 0;
    int64_t stage_window_micros = 0;  // Window + snapshot maintenance.
    int64_t stage_match_micros = 0;   // Clause evaluation + report policy.
  };

  // Per-stream observability handles, cached so the Ingest hot path does
  // one map lookup, not four registry lookups. The lag gauges implement
  // the watermark/lag health surface (docs/INTERNALS.md, "Latency
  // accounting & lag"): all in event-time millis, hence deterministic.
  struct StreamObs {
    Counter* ingested = nullptr;        // Elements appended.
    Gauge* watermark_millis = nullptr;  // Max ingested event timestamp.
    Gauge* lag_millis = nullptr;        // watermark − engine clock, >= 0.
    Gauge* lag_max_millis = nullptr;    // Running max of lag_millis.
    // Shadow values (single-writer: the ingest/coordinator thread), so
    // updates need no gauge read-back.
    int64_t watermark_value = 0;
    int64_t lag_max_value = 0;
    bool any_ingested = false;
  };

  PropertyGraphStream* MutableStream(const std::string& name);
  // Read-only stream lookup that never mutates streams_ (safe from
  // worker threads); unknown names resolve to a shared empty stream.
  const PropertyGraphStream* FindStreamOrEmpty(
      const std::string& name) const;
  // Stages 1-3 of the Fig. 5 pipeline (windows → snapshots → body →
  // policy). Touches only per-query state plus read-only shared state,
  // so distinct queries may run concurrently. The reported table lands
  // in `out`; delivery happens separately on the coordinator.
  Status EvaluateAt(QueryState* state, Timestamp t, PendingDelivery* out);
  // EvaluateAt with escaping exceptions translated to kInternal statuses,
  // so a throw on a worker thread surfaces as an ordinary evaluation
  // failure instead of being swallowed by the un-got future.
  Status EvaluateAtNoThrow(QueryState* state, Timestamp t,
                           PendingDelivery* out);
  // Stage 4 on the coordinator thread: sink fan-out plus the sink-stage
  // and whole-evaluation metrics/spans for one PendingDelivery.
  void FinishDelivery(QueryState* state, Timestamp t, PendingDelivery&& out);
  // Query-isolation bookkeeping for one failed evaluation (coordinator
  // thread): stats, metrics, dead-letter capture, error-budget disable.
  void HandleEvalFailure(QueryState* state, Timestamp t, Status error);
  // Delivers one result to every live sink with per-sink retry /
  // dead-letter / quarantine handling; never fails the evaluation.
  void DeliverToSinks(const std::string& query_name, Timestamp t,
                      const TimeAnnotatedTable& annotated);
  // Coordinator-side emit-latency accounting for one delivered
  // evaluation: advances the query's per-stream latency cursors over the
  // elements newly covered at `t` and records arrival→now into the
  // query's and the fleet's emit-latency histograms, plus the per-stage
  // breakdown carried in `out`.
  void RecordEmitLatency(QueryState* state, Timestamp t,
                         const PendingDelivery& out, int64_t sink_micros);
  // Resolves (and caches) the observability handles of `stream`.
  StreamObs* ObsFor(const std::string& stream);
  // Refreshes every stream's lag gauge against the engine clock (called
  // at the batch barrier and at the end of AdvanceTo, where clock_ moved).
  void UpdateLagGauges();
  // The latency clock (options_.clock, defaulted to Clock::Steady()).
  const Clock* LatencyClock() const;

  EngineOptions options_;
  MetricsRegistry metrics_;
  // Per-stream observability handles, cached so the Ingest hot path
  // avoids registry lookups per element.
  std::map<std::string, StreamObs> stream_obs_;
  std::map<std::string, PropertyGraphStream> streams_;
  std::shared_ptr<const PropertyGraph> static_graph_;
  std::map<std::string, std::unique_ptr<QueryState>> queries_;
  std::vector<SinkState> sinks_;
  Timestamp clock_;
  bool clock_started_ = false;
  int64_t evaluations_run_ = 0;
  // Durability hook state (SetCheckpointCallback /
  // EngineOptions::checkpoint_every).
  std::function<Status()> checkpoint_callback_;
  int64_t batches_completed_ = 0;
  // Lazily created on the first AdvanceTo that resolves to > 1 thread;
  // workers are reused across batches and engine lifetimes of calls.
  std::unique_ptr<ThreadPool> pool_;
  // Scheduler metrics, resolved once.
  Histogram* batch_size_ = nullptr;
  Counter* parallel_evals_ = nullptr;
  // Batch-barrier watchdog: number of evaluations currently overdue
  // (non-zero only while a batch is stuck past watchdog_millis).
  Gauge* stuck_evals_ = nullptr;
  // Emit-latency fleet metrics (docs/INTERNALS.md, "Latency accounting &
  // lag"), resolved at construction: the all-queries latency histogram
  // and the engine event-time clock gauge the per-stream lag is measured
  // against.
  Histogram* fleet_emit_latency_ = nullptr;
  Gauge* engine_clock_millis_ = nullptr;
};

// The value of the SERAPH_EVAL_THREADS environment variable (a
// non-negative integer; 0 = hardware concurrency), or `fallback` when it
// is unset or malformed. Tools and tests use this so CI can run whole
// suites with a parallel engine (e.g. under TSan).
int EvalThreadsFromEnv(int fallback);

// Same contract for SERAPH_MATCH_THREADS (intra-query parallel matching).
int MatchThreadsFromEnv(int fallback);

// The value of SERAPH_EVAL_DEADLINE_MS (a non-negative millisecond
// count; 0 = no deadline), or `fallback` when unset or malformed — the
// environment mirror of EngineOptions::eval_deadline_millis /
// `--eval-deadline-ms`.
int64_t EvalDeadlineMillisFromEnv(int64_t fallback);

}  // namespace seraph

#endif  // SERAPH_SERAPH_CONTINUOUS_ENGINE_H_
