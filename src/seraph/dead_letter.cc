#include "seraph/dead_letter.h"

#include "io/json.h"

namespace seraph {

void DeadLetterQueue::AddSinkResult(const std::string& sink,
                                    const std::string& query,
                                    Timestamp evaluation_time,
                                    const TimeAnnotatedTable& result,
                                    Status error, int64_t attempts) {
  DeadLetterEntry entry;
  entry.kind = DeadLetterEntry::Kind::kSinkResult;
  entry.source = sink;
  entry.query = query;
  entry.timestamp = evaluation_time;
  entry.error = std::move(error);
  entry.attempts = attempts;
  entry.result = result;
  entries_.push_back(std::move(entry));
  ++sink_results_;
}

void DeadLetterQueue::AddElement(const std::string& consumer,
                                 const StreamElement& element, Status error,
                                 int64_t attempts) {
  DeadLetterEntry entry;
  entry.kind = DeadLetterEntry::Kind::kStreamElement;
  entry.source = consumer;
  entry.timestamp = element.timestamp;
  entry.error = std::move(error);
  entry.attempts = attempts;
  entry.element = element.graph;
  entries_.push_back(std::move(entry));
  ++elements_;
}

void DeadLetterQueue::AddEvaluationFailure(const std::string& query,
                                           Timestamp evaluation_time,
                                           Status error) {
  DeadLetterEntry entry;
  entry.kind = DeadLetterEntry::Kind::kEvaluation;
  entry.source = "engine";
  entry.query = query;
  entry.timestamp = evaluation_time;
  entry.error = std::move(error);
  entry.attempts = 1;
  entries_.push_back(std::move(entry));
  ++evaluation_failures_;
}

void DeadLetterQueue::Clear() {
  entries_.clear();
  sink_results_ = 0;
  elements_ = 0;
  evaluation_failures_ = 0;
}

Status DeadLetterQueue::WriteJsonLines(std::ostream* os) const {
  for (const DeadLetterEntry& entry : entries_) {
    std::string line = "{\"kind\":";
    switch (entry.kind) {
      case DeadLetterEntry::Kind::kSinkResult:
        line += "\"sink_result\"";
        break;
      case DeadLetterEntry::Kind::kStreamElement:
        line += "\"stream_element\"";
        break;
      case DeadLetterEntry::Kind::kEvaluation:
        line += "\"evaluation\"";
        break;
    }
    line += ",\"source\":";
    io::AppendJsonValue(Value::String(entry.source), &line);
    if (entry.kind != DeadLetterEntry::Kind::kStreamElement) {
      line += ",\"query\":";
      io::AppendJsonValue(Value::String(entry.query), &line);
    }
    line += ",\"at\":";
    io::AppendJsonValue(Value::String(entry.timestamp.ToString()), &line);
    line += ",\"error\":";
    io::AppendJsonValue(Value::String(entry.error.ToString()), &line);
    line += ",\"attempts\":" + std::to_string(entry.attempts);
    if (entry.result.has_value()) {
      line += ",\"win_start\":";
      io::AppendJsonValue(
          Value::String(entry.result->window.start.ToString()), &line);
      line += ",\"win_end\":";
      io::AppendJsonValue(Value::String(entry.result->window.end.ToString()),
                          &line);
      line += ",\"rows\":" + io::ToJson(entry.result->table.Canonicalized());
    }
    if (entry.element != nullptr) {
      line += ",\"element\":{\"nodes\":" +
              std::to_string(entry.element->num_nodes()) +
              ",\"relationships\":" +
              std::to_string(entry.element->num_relationships()) + "}";
    }
    line += "}";
    *os << line << "\n";
    if (!os->good()) {
      return Status::Unavailable("dead-letter output stream failed");
    }
  }
  return Status::OK();
}

}  // namespace seraph
