#include "seraph/dead_letter.h"

#include "io/json.h"

namespace seraph {

void DeadLetterQueue::AddSinkResult(const std::string& sink,
                                    const std::string& query,
                                    Timestamp evaluation_time,
                                    const TimeAnnotatedTable& result,
                                    Status error, int64_t attempts) {
  DeadLetterEntry entry;
  entry.kind = DeadLetterEntry::Kind::kSinkResult;
  entry.source = sink;
  entry.query = query;
  entry.timestamp = evaluation_time;
  entry.error = std::move(error);
  entry.attempts = attempts;
  entry.result = result;
  entries_.push_back(std::move(entry));
  ++sink_results_;
  UpdateDepth();
}

void DeadLetterQueue::AddElement(const std::string& consumer,
                                 const StreamElement& element, Status error,
                                 int64_t attempts) {
  DeadLetterEntry entry;
  entry.kind = DeadLetterEntry::Kind::kStreamElement;
  entry.source = consumer;
  entry.timestamp = element.timestamp;
  entry.error = std::move(error);
  entry.attempts = attempts;
  entry.element = element.graph;
  entries_.push_back(std::move(entry));
  ++elements_;
  UpdateDepth();
}

void DeadLetterQueue::AddEvaluationFailure(const std::string& query,
                                           Timestamp evaluation_time,
                                           Status error) {
  DeadLetterEntry entry;
  entry.kind = DeadLetterEntry::Kind::kEvaluation;
  entry.source = "engine";
  entry.query = query;
  entry.timestamp = evaluation_time;
  entry.error = std::move(error);
  entry.attempts = 1;
  entries_.push_back(std::move(entry));
  ++evaluation_failures_;
  UpdateDepth();
}

void DeadLetterQueue::Add(DeadLetterEntry entry) {
  switch (entry.kind) {
    case DeadLetterEntry::Kind::kSinkResult:
      ++sink_results_;
      break;
    case DeadLetterEntry::Kind::kStreamElement:
      ++elements_;
      break;
    case DeadLetterEntry::Kind::kEvaluation:
      ++evaluation_failures_;
      break;
  }
  entries_.push_back(std::move(entry));
  UpdateDepth();
}

void DeadLetterQueue::Clear() {
  entries_.clear();
  sink_results_ = 0;
  elements_ = 0;
  evaluation_failures_ = 0;
  UpdateDepth();
}

Status DeadLetterQueue::WriteJsonLines(std::ostream* os) const {
  for (const DeadLetterEntry& entry : entries_) {
    std::string line = "{\"kind\":";
    switch (entry.kind) {
      case DeadLetterEntry::Kind::kSinkResult:
        line += "\"sink_result\"";
        break;
      case DeadLetterEntry::Kind::kStreamElement:
        line += "\"stream_element\"";
        break;
      case DeadLetterEntry::Kind::kEvaluation:
        line += "\"evaluation\"";
        break;
    }
    line += ",\"source\":";
    io::AppendJsonValue(Value::String(entry.source), &line);
    if (entry.kind != DeadLetterEntry::Kind::kStreamElement) {
      line += ",\"query\":";
      io::AppendJsonValue(Value::String(entry.query), &line);
    }
    line += ",\"at\":";
    io::AppendJsonValue(Value::String(entry.timestamp.ToString()), &line);
    line += ",\"error\":";
    io::AppendJsonValue(Value::String(entry.error.ToString()), &line);
    line += ",\"attempts\":" + std::to_string(entry.attempts);
    if (entry.result.has_value()) {
      line += ",\"win_start\":";
      io::AppendJsonValue(
          Value::String(entry.result->window.start.ToString()), &line);
      line += ",\"win_end\":";
      io::AppendJsonValue(Value::String(entry.result->window.end.ToString()),
                          &line);
      line += ",\"rows\":" + io::ToJson(entry.result->table.Canonicalized());
    }
    if (entry.element != nullptr) {
      line += ",\"element\":{\"nodes\":" +
              std::to_string(entry.element->num_nodes()) +
              ",\"relationships\":" +
              std::to_string(entry.element->num_relationships()) + "}";
    }
    line += "}";
    *os << line << "\n";
    if (!os->good()) {
      return Status::Unavailable("dead-letter output stream failed");
    }
  }
  return Status::OK();
}

namespace {

// Inverts Status::ToString(): "OK", or "<code_name>: <message>". Uses an
// out-param because Result<Status> cannot represent a Status payload.
Status StatusFromString(const std::string& text, Status* out) {
  if (text == "OK") {
    *out = Status::OK();
    return Status::OK();
  }
  const size_t sep = text.find(": ");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("dead-letter import: malformed status '" +
                                   text + "'");
  }
  const std::string name = text.substr(0, sep);
  std::string message = text.substr(sep + 2);
  for (int code = static_cast<int>(StatusCode::kInvalidArgument);
       code <= static_cast<int>(StatusCode::kUnavailable); ++code) {
    if (name == StatusCodeToString(static_cast<StatusCode>(code))) {
      *out = Status(static_cast<StatusCode>(code), std::move(message));
      return Status::OK();
    }
  }
  return Status::InvalidArgument("dead-letter import: unknown status code '" +
                                 name + "'");
}

Result<std::string> RequireString(const Value::Map& object,
                                  const std::string& key) {
  auto it = object.find(key);
  if (it == object.end() || !it->second.is_string()) {
    return Status::InvalidArgument("dead-letter import: missing string '" +
                                   key + "'");
  }
  return it->second.AsString();
}

Result<Timestamp> RequireTimestamp(const Value::Map& object,
                                   const std::string& key) {
  SERAPH_ASSIGN_OR_RETURN(std::string text, RequireString(object, key));
  return Timestamp::Parse(text);
}

// Rebuilds a table from the exported rows array (fields = union of the
// row domains; entity references were already decoded by ParseJson).
Result<Table> TableFromRows(const Value::List& rows) {
  std::set<std::string> fields;
  std::vector<Record> records;
  records.reserve(rows.size());
  for (const Value& row : rows) {
    if (!row.is_map()) {
      return Status::InvalidArgument(
          "dead-letter import: row is not an object");
    }
    Record record;
    for (const auto& [name, value] : row.AsMap()) {
      fields.insert(name);
      record.Set(name, value);
    }
    records.push_back(std::move(record));
  }
  Table table(std::move(fields));
  for (Record& record : records) table.AppendUnchecked(std::move(record));
  return table;
}

Result<DeadLetterEntry> EntryFromJsonLine(const std::string& line) {
  SERAPH_ASSIGN_OR_RETURN(Value doc, io::ParseJson(line));
  if (!doc.is_map()) {
    return Status::InvalidArgument(
        "dead-letter import: line is not a JSON object");
  }
  const Value::Map& object = doc.AsMap();
  DeadLetterEntry entry;

  SERAPH_ASSIGN_OR_RETURN(std::string kind, RequireString(object, "kind"));
  if (kind == "sink_result") {
    entry.kind = DeadLetterEntry::Kind::kSinkResult;
  } else if (kind == "stream_element") {
    entry.kind = DeadLetterEntry::Kind::kStreamElement;
  } else if (kind == "evaluation") {
    entry.kind = DeadLetterEntry::Kind::kEvaluation;
  } else {
    return Status::InvalidArgument("dead-letter import: unknown kind '" +
                                   kind + "'");
  }

  SERAPH_ASSIGN_OR_RETURN(entry.source, RequireString(object, "source"));
  if (entry.kind != DeadLetterEntry::Kind::kStreamElement) {
    SERAPH_ASSIGN_OR_RETURN(entry.query, RequireString(object, "query"));
  }
  SERAPH_ASSIGN_OR_RETURN(entry.timestamp, RequireTimestamp(object, "at"));
  SERAPH_ASSIGN_OR_RETURN(std::string error, RequireString(object, "error"));
  SERAPH_RETURN_IF_ERROR(StatusFromString(error, &entry.error));
  auto attempts_it = object.find("attempts");
  if (attempts_it == object.end() || !attempts_it->second.is_int()) {
    return Status::InvalidArgument(
        "dead-letter import: missing integer 'attempts'");
  }
  entry.attempts = attempts_it->second.AsInt();

  if (auto rows_it = object.find("rows"); rows_it != object.end()) {
    if (!rows_it->second.is_list()) {
      return Status::InvalidArgument(
          "dead-letter import: 'rows' is not an array");
    }
    TimeAnnotatedTable result;
    SERAPH_ASSIGN_OR_RETURN(result.window.start,
                            RequireTimestamp(object, "win_start"));
    SERAPH_ASSIGN_OR_RETURN(result.window.end,
                            RequireTimestamp(object, "win_end"));
    SERAPH_ASSIGN_OR_RETURN(result.table,
                            TableFromRows(rows_it->second.AsList()));
    entry.result = std::move(result);
  }

  if (auto element_it = object.find("element"); element_it != object.end()) {
    // The export keeps only the counts, so the import materializes a
    // placeholder graph of the same shape: nodes 1..N, relationships
    // 1..M all looping on node 1 (re-export prints the counts, which is
    // the byte-identical part of the contract).
    if (!element_it->second.is_map()) {
      return Status::InvalidArgument(
          "dead-letter import: 'element' is not an object");
    }
    const Value::Map& element = element_it->second.AsMap();
    auto nodes_it = element.find("nodes");
    auto rels_it = element.find("relationships");
    if (nodes_it == element.end() || !nodes_it->second.is_int() ||
        rels_it == element.end() || !rels_it->second.is_int()) {
      return Status::InvalidArgument(
          "dead-letter import: malformed 'element' counts");
    }
    const int64_t nodes = nodes_it->second.AsInt();
    const int64_t rels = rels_it->second.AsInt();
    if (nodes < 0 || rels < 0 || (rels > 0 && nodes == 0)) {
      return Status::InvalidArgument(
          "dead-letter import: inconsistent 'element' counts");
    }
    PropertyGraph graph;
    for (int64_t i = 1; i <= nodes; ++i) {
      SERAPH_RETURN_IF_ERROR(graph.AddNode(NodeId{i}, NodeData{}));
    }
    for (int64_t i = 1; i <= rels; ++i) {
      SERAPH_RETURN_IF_ERROR(graph.AddRelationship(
          RelId{i}, RelData{"", NodeId{1}, NodeId{1}, {}}));
    }
    entry.element = std::make_shared<const PropertyGraph>(std::move(graph));
  }
  return entry;
}

}  // namespace

Status DeadLetterQueue::ImportJsonLines(std::istream* is) {
  std::string line;
  size_t line_number = 0;
  while (std::getline(*is, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto entry = EntryFromJsonLine(line);
    if (!entry.ok()) {
      return Status(entry.status().code(),
                    "line " + std::to_string(line_number) + ": " +
                        entry.status().message());
    }
    Add(std::move(*entry));
  }
  if (is->bad()) {
    return Status::Unavailable("dead-letter input stream failed");
  }
  return Status::OK();
}

}  // namespace seraph
