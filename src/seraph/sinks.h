// Additional EmitSink implementations for examples and tools.
//
// Every sink reports delivery failures as Status (kUnavailable for
// transient output-stream trouble) instead of silently swallowing badbit;
// the engine's per-sink isolation (retry / dead-letter / quarantine) is
// built on that contract. The stream-writing sinks also carry the
// "sink.emit" fault point so chaos runs (SERAPH_FAULT_POINTS) can fail
// deliveries without a broken consumer.
#ifndef SERAPH_SERAPH_SINKS_H_
#define SERAPH_SERAPH_SINKS_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "seraph/continuous_engine.h"

namespace seraph {

// Prints each non-empty result as an aligned ASCII table (the shape of the
// paper's Tables 5/6), with win_start / win_end columns appended.
class PrintingSink final : public EmitSink {
 public:
  // `columns`: projection columns in display order (win_start / win_end
  // are appended automatically). `include_empty` also prints evaluations
  // with no rows.
  PrintingSink(std::ostream* os, std::vector<std::string> columns,
               bool include_empty = false)
      : os_(os), columns_(std::move(columns)), include_empty_(include_empty) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override;

 private:
  std::ostream* os_;
  std::vector<std::string> columns_;
  bool include_empty_;
};

// Streams results as CSV rows:
//   query,evaluation_time,win_start,win_end,<projected columns...>
// A header line is written once before the first row. Values containing
// commas, quotes, or newlines are quoted with doubled inner quotes
// (RFC 4180).
class CsvSink final : public EmitSink {
 public:
  // `columns`: projected columns in output order.
  CsvSink(std::ostream* os, std::vector<std::string> columns)
      : os_(os), columns_(std::move(columns)) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override;

 private:
  std::ostream* os_;
  std::vector<std::string> columns_;
  bool header_written_ = false;
};

// Streams results as JSON Lines: one object per evaluation —
//   {"query": ..., "at": ..., "win_start": ..., "win_end": ...,
//    "rows": [...]}
// Empty evaluations are emitted too (delta consumers need the heartbeat);
// pass include_empty = false to suppress them.
class JsonLinesSink final : public EmitSink {
 public:
  explicit JsonLinesSink(std::ostream* os, bool include_empty = true)
      : os_(os), include_empty_(include_empty) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override;

 private:
  std::ostream* os_;
  bool include_empty_;
};

// Counts results and rows (benchmarks; avoids result retention).
class CountingSink final : public EmitSink {
 public:
  Status OnResult(const std::string&, Timestamp,
                  const TimeAnnotatedTable& table) override {
    ++evaluations_;
    rows_ += static_cast<int64_t>(table.table.size());
    return Status::OK();
  }

  int64_t evaluations() const { return evaluations_; }
  int64_t rows() const { return rows_; }
  void Reset() {
    evaluations_ = 0;
    rows_ = 0;
  }

 private:
  int64_t evaluations_ = 0;
  int64_t rows_ = 0;
};

// Decorator retrying an inner sink's transient failures per a
// RetryPolicy. The engine already retries per-sink when a policy is
// configured through AddSink; this decorator serves sinks attached to
// code paths without engine-level isolation (tools, tests) and keeps its
// own counters.
class RetryingSink final : public EmitSink {
 public:
  RetryingSink(EmitSink* inner, RetryPolicy policy)
      : inner_(inner), policy_(policy) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override {
    Status status;
    for (int attempt = 1;; ++attempt) {
      status = inner_->OnResult(query_name, evaluation_time, table);
      if (status.ok()) return status;
      if (!policy_.ShouldRetry(status, attempt)) return status;
      ++retries_;
      backoff_millis_total_ += policy_.DelayMillisFor(attempt);
    }
  }

  int64_t retries() const { return retries_; }
  // Cumulative deterministic backoff (accounted, not slept).
  int64_t backoff_millis_total() const { return backoff_millis_total_; }

 private:
  EmitSink* inner_;
  RetryPolicy policy_;
  int64_t retries_ = 0;
  int64_t backoff_millis_total_ = 0;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_SINKS_H_
