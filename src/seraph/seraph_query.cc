#include "seraph/seraph_query.h"

namespace seraph {

const char* ReportPolicyToString(ReportPolicy policy) {
  switch (policy) {
    case ReportPolicy::kSnapshot:
      return "SNAPSHOT";
    case ReportPolicy::kOnEntering:
      return "ON ENTERING";
    case ReportPolicy::kOnExiting:
      return "ON EXITING";
  }
  return "?";
}

Duration RegisteredQuery::MaxWidth() const {
  Duration max = Duration::FromMillis(0);
  for (const Clause& clause : clauses) {
    if (const auto* match = std::get_if<MatchClause>(&clause)) {
      if (match->within.has_value() && *match->within > max) {
        max = *match->within;
      }
    }
  }
  return max;
}

namespace {

// Applies `volatile_found` to every top-level expression of a projection.
bool ProjectionHasVolatile(const ProjectionBody& body) {
  for (const ProjectionItem& item : body.items) {
    if (item.expr->ContainsVolatile()) return true;
  }
  for (const OrderByItem& item : body.order_by) {
    if (item.expr->ContainsVolatile()) return true;
  }
  if (body.skip != nullptr && body.skip->ContainsVolatile()) return true;
  if (body.limit != nullptr && body.limit->ContainsVolatile()) return true;
  return false;
}

bool PatternHasVolatile(const std::vector<PathPattern>& patterns) {
  for (const PathPattern& path : patterns) {
    for (const NodePattern& np : path.nodes) {
      for (const auto& [key, expr] : np.properties) {
        if (expr->ContainsVolatile()) return true;
      }
    }
    for (const RelPattern& rp : path.rels) {
      for (const auto& [key, expr] : rp.properties) {
        if (expr->ContainsVolatile()) return true;
      }
    }
  }
  return false;
}

}  // namespace

bool RegisteredQuery::IsWindowContentDeterministic() const {
  for (const Clause& clause : clauses) {
    if (const auto* match = std::get_if<MatchClause>(&clause)) {
      if (match->where != nullptr && match->where->ContainsVolatile()) {
        return false;
      }
      if (PatternHasVolatile(match->patterns)) return false;
    } else if (const auto* unwind = std::get_if<UnwindClause>(&clause)) {
      if (unwind->list->ContainsVolatile()) return false;
    } else if (const auto* with = std::get_if<WithClause>(&clause)) {
      if (ProjectionHasVolatile(with->body)) return false;
      if (with->where != nullptr && with->where->ContainsVolatile()) {
        return false;
      }
    }
  }
  return !ProjectionHasVolatile(projection);
}

std::string RegisteredQuery::Describe() const {
  std::string out = "query " + name + "\n";
  out += "  starting at: " + starting_at.ToString() + "\n";
  if (mode == OutputMode::kEmitStream) {
    out += "  mode: EMIT every " + every.ToString() + " (" +
           ReportPolicyToString(policy) + ")\n";
  } else {
    out += "  mode: RETURN once\n";
  }
  int match_index = 0;
  for (const Clause& clause : clauses) {
    const auto* match = std::get_if<MatchClause>(&clause);
    if (match == nullptr) continue;
    ++match_index;
    out += "  match #" + std::to_string(match_index) + ": " +
           std::to_string(match->patterns.size()) + " pattern(s), window " +
           (match->within.has_value() ? match->within->ToString()
                                      : std::string("<none>"));
    out += ", stream '" +
           (match->from_stream.empty() ? std::string("<default>")
                                       : match->from_stream) +
           "'\n";
  }
  out += "  projection: " + std::to_string(projection.items.size()) +
         " item(s)";
  if (projection.distinct) out += ", DISTINCT";
  out += "\n";
  out += std::string("  window-content deterministic: ") +
         (IsWindowContentDeterministic() ? "yes (result reuse eligible)"
                                         : "no (evaluation-time dependent)") +
         "\n";
  return out;
}

Status RegisteredQuery::Validate() const {
  if (name.empty()) {
    return Status::SemanticError("registered query must have a name");
  }
  bool any_match = false;
  for (const Clause& clause : clauses) {
    if (const auto* match = std::get_if<MatchClause>(&clause)) {
      any_match = true;
      if (!match->within.has_value()) {
        return Status::SemanticError(
            "every MATCH in a Seraph query must declare a WITHIN window "
            "width (query '" + name + "')");
      }
    }
  }
  if (!any_match) {
    return Status::SemanticError("Seraph query '" + name +
                                 "' has no MATCH clause");
  }
  if (mode == OutputMode::kEmitStream && every.millis() <= 0) {
    return Status::SemanticError(
        "EMIT queries require a positive EVERY period (query '" + name +
        "')");
  }
  if (projection.items.empty() && !projection.include_all) {
    return Status::SemanticError("query '" + name +
                                 "' projects no items");
  }
  return Status::OK();
}

}  // namespace seraph
