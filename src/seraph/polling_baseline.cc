#include "seraph/polling_baseline.h"

#include "cypher/executor.h"
#include "graph/graph_union.h"

namespace seraph {

Status PollingBaseline::Ingest(const PropertyGraph& graph) {
  return MergeInto(&store_, graph);
}

Result<std::vector<std::pair<Timestamp, Table>>> PollingBaseline::AdvanceTo(
    Timestamp now) {
  std::vector<std::pair<Timestamp, Table>> out;
  while (next_run_ <= now) {
    ExecutionOptions options;
    options.parameters = parameters_;
    options.now = next_run_;
    SERAPH_ASSIGN_OR_RETURN(Table result,
                            ExecuteQueryOnGraph(query_, store_, options));
    out.emplace_back(next_run_, std::move(result));
    ++polls_run_;
    next_run_ = next_run_ + period_;
  }
  return out;
}

}  // namespace seraph
