// Logical sub-stream partitioning (§8 future work (ii)): a router splits
// one physical event feed into named logical streams by predicate; each
// event is delivered to every matching stream of a ContinuousEngine, so
// queries can window over partitions with `WITHIN ... FROM <name>`.
//
//   StreamRouter router;
//   router.AddRoute("rentals", HasRelationshipType("rentedAt"));
//   router.AddRoute("returns", HasRelationshipType("returnedAt"));
//   router.AddRoute("all", AcceptAll());
//   router.Route(&engine, event_graph, t);
#ifndef SERAPH_SERAPH_STREAM_ROUTER_H_
#define SERAPH_SERAPH_STREAM_ROUTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "seraph/continuous_engine.h"

namespace seraph {

class StreamRouter {
 public:
  // Decides whether an event belongs to a logical stream.
  using Predicate =
      std::function<bool(const PropertyGraph& graph, Timestamp timestamp)>;

  // Adds a route; one event may match any number of routes.
  void AddRoute(std::string stream, Predicate predicate) {
    routes_.push_back(
        RouteEntry{std::move(stream), std::move(predicate)});
  }

  // Delivers the event to every matching logical stream of `engine`.
  // Returns the number of streams it was delivered to.
  Result<int> Route(ContinuousEngine* engine,
                    std::shared_ptr<const PropertyGraph> graph,
                    Timestamp timestamp) const;

  size_t num_routes() const { return routes_.size(); }

 private:
  struct RouteEntry {
    std::string stream;
    Predicate predicate;
  };
  std::vector<RouteEntry> routes_;
};

// ---- Common predicates ----

// Every event.
StreamRouter::Predicate AcceptAll();

// Events containing at least one node with `label`.
StreamRouter::Predicate HasLabel(std::string label);

// Events containing at least one relationship of `type`.
StreamRouter::Predicate HasRelationshipType(std::string type);

// Events where some node's `key` property equals `value` (partitioning by
// key, e.g. region or tenant).
StreamRouter::Predicate NodePropertyEquals(std::string key, Value value);

}  // namespace seraph

#endif  // SERAPH_SERAPH_STREAM_ROUTER_H_
