// Logical sub-stream partitioning (§8 future work (ii)): a router splits
// one physical event feed into named logical streams by predicate; each
// event is delivered to every matching stream of a ContinuousEngine, so
// queries can window over partitions with `WITHIN ... FROM <name>`.
//
//   StreamRouter router;
//   router.AddRoute("rentals", HasRelationshipType("rentedAt"));
//   router.AddRoute("returns", HasRelationshipType("returnedAt"));
//   router.AddRoute("all", AcceptAll());
//   router.Route(&engine, event_graph, t);
#ifndef SERAPH_SERAPH_STREAM_ROUTER_H_
#define SERAPH_SERAPH_STREAM_ROUTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "seraph/continuous_engine.h"

namespace seraph {

class StreamRouter {
 public:
  // Decides whether an event belongs to a logical stream.
  using Predicate =
      std::function<bool(const PropertyGraph& graph, Timestamp timestamp)>;

  // Adds a route; one event may match any number of routes.
  void AddRoute(std::string stream, Predicate predicate) {
    RouteEntry entry{std::move(stream), std::move(predicate), nullptr};
    entry.routed = ResolveRoutedCounter(entry.stream);
    routes_.push_back(std::move(entry));
  }

  // Exposes routing counters through `registry` (not owned; typically the
  // engine's): `seraph_router_routed_total{stream=...}` per route and
  // `seraph_router_dropped_total` for events matching no route. Existing
  // and future routes are both covered; null detaches.
  void BindMetrics(MetricsRegistry* registry);

  // Delivers the event to every matching logical stream of `engine`.
  // Returns the number of streams it was delivered to.
  Result<int> Route(ContinuousEngine* engine,
                    std::shared_ptr<const PropertyGraph> graph,
                    Timestamp timestamp) const;

  size_t num_routes() const { return routes_.size(); }

  // Cumulative events that matched no route (counted even when metrics
  // are unbound).
  int64_t dropped_total() const { return dropped_total_; }

 private:
  struct RouteEntry {
    std::string stream;
    Predicate predicate;
    Counter* routed = nullptr;  // Owned by the bound registry.
  };

  Counter* ResolveRoutedCounter(const std::string& stream) const;

  std::vector<RouteEntry> routes_;
  MetricsRegistry* registry_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  mutable int64_t dropped_total_ = 0;
};

// ---- Common predicates ----

// Every event.
StreamRouter::Predicate AcceptAll();

// Events containing at least one node with `label`.
StreamRouter::Predicate HasLabel(std::string label);

// Events containing at least one relationship of `type`.
StreamRouter::Predicate HasRelationshipType(std::string type);

// Events where some node's `key` property equals `value` (partitioning by
// key, e.g. region or tenant).
StreamRouter::Predicate NodePropertyEquals(std::string key, Value value);

}  // namespace seraph

#endif  // SERAPH_SERAPH_STREAM_ROUTER_H_
