// Delta matching (docs/INTERNALS.md, "Incremental evaluation"): a
// per-query partial-match index that keeps the MATCH-stage output of one
// fixed-length pattern synchronized with the sliding window's snapshot
// graph, so each evaluation costs work proportional to the window *churn*
// (the snapshotter's dirty sets) instead of the window *size*.
//
// The index stores every current match of the pattern keyed so that
// iterating the index reproduces the serial DFS matcher's emission order
// bit-identically — content and order. This hinges on two invariants:
//  * PropertyGraph adjacency lists are in ascending relationship-id order
//    (content-determined, not insertion-ordered), and
//  * the matcher seeds node scans in ascending node-id order.
// Under them, the serial matcher emits matches in lexicographic order of
// the key [n0, b0, r0, b1, r1, ...] where n0 is the seed node, r_i the
// i-th traversed relationship, and b_i the adjacency bucket it was found
// in (0 = outgoing list, 1 = incoming list). The key also uniquely
// determines the trail, so a std::map over keys *is* the canonical match
// bag.
//
// After each snapshotter Advance, the index repairs itself from the
// published dirty sets: every indexed match touching a dirty entity is
// removed, then every current match containing a dirty entity is
// rediscovered by anchored bidirectional DFS (anchor each dirty entity at
// each pattern position; duplicate discoveries collapse in the keyed
// map). Correctness is pinned by a randomized delta-vs-full equivalence
// property test (tests/delta_equivalence_test.cc).
#ifndef SERAPH_SERAPH_DELTA_DELTA_INDEX_H_
#define SERAPH_SERAPH_DELTA_DELTA_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "cypher/ast.h"
#include "cypher/executor.h"
#include "graph/property_graph.h"
#include "seraph/seraph_query.h"
#include "stream/snapshot.h"
#include "table/table.h"
#include "value/value.h"

namespace seraph {

class DeltaIndex {
 public:
  // Whether `query` can be served by delta matching. Deliberately
  // conservative: EMIT mode, window-content-deterministic, exactly one
  // non-OPTIONAL MATCH clause with a single fixed-length kNormal pattern,
  // no exists() predicates anywhere, no aggregates in the projection, and
  // pattern property expressions free of variable references (so they can
  // be evaluated once, without a binding). Variable-length patterns,
  // shortestPath, and aggregation are follow-on work (see ROADMAP.md).
  static bool Eligible(const RegisteredQuery& query);

  // `match` must satisfy Eligible's structural checks and outlive the
  // index (it points into the registered query's clause list).
  explicit DeltaIndex(const MatchClause* match);

  // Whether the index currently tracks some snapshot state (Build
  // succeeded and no invalidation happened since).
  bool valid() const { return valid_; }
  // Matches currently indexed.
  size_t size() const { return matches_.size(); }
  int64_t applied_advances() const { return applied_advances_; }

  // Drops all state; the next evaluation must Build from scratch.
  // Called on evaluation failure, checkpoint restore, and query revive —
  // any point where the index may have diverged from the snapshot.
  void Invalidate();

  // Full build against `graph` (the snapshotter's current snapshot),
  // recording the snapshotter advance count the build corresponds to.
  // `exec` supplies parameters and the cooperative deadline.
  Status Build(const PropertyGraph& graph, int64_t advances,
               const ExecutionOptions& exec);

  // Counter-synchronization with the snapshotter, called right after its
  // Advance: a single new advance is applied from the published dirty
  // sets; anything else (missed advances, internal repair failure)
  // invalidates the index. No-op while invalid.
  void ObserveAdvance(const IncrementalSnapshotter& snapshotter);

  // The MATCH-stage output table (post-WHERE, null-padded) in the
  // canonical serial emission order — bit-identical to ApplyMatch over
  // Table::Unit(). Requires valid().
  Result<Table> Emit(const PropertyGraph& graph,
                     const ExecutionOptions& exec) const;

 private:
  // [n0, b0, r0, b1, r1, ...]; lexicographic order == serial DFS order.
  using Key = std::vector<int64_t>;

  // Removes matches touching dirty entities, then rediscovers all current
  // matches containing at least one dirty entity via anchored DFS.
  Status ApplyDirty(const PropertyGraph& graph,
                    const std::vector<NodeId>& dirty_nodes,
                    const std::vector<RelId>& dirty_rels);

  // Evaluates the pattern's property expressions once (they reference no
  // variables — Eligible guarantees it) into plain value lists.
  Status PrecomputeProperties(const PropertyGraph& graph,
                              const ExecutionOptions& exec);

  // Constraint checks against precomputed property values.
  bool NodeOk(const PropertyGraph& graph, size_t pos, NodeId id) const;
  bool RelOk(const PropertyGraph& graph, size_t pos, RelId id) const;

  void InsertMatch(const PathValue& trail, const PropertyGraph& graph);
  void RemoveMatch(const Key& key);
  Key KeyFor(const PathValue& trail, const PropertyGraph& graph) const;

  // Anchored rediscovery state and expansion (see delta_index.cc).
  struct Search;
  Status AnchorNode(const PropertyGraph& graph, NodeId id, size_t pos);
  Status AnchorRel(const PropertyGraph& graph, RelId id, size_t pos);
  Status ExtendRight(const PropertyGraph& graph, Search* s, size_t right,
                     size_t left);
  Status ExtendLeft(const PropertyGraph& graph, Search* s, size_t left);
  Status RecordMatch(const Search& s);

  // Reassembles the record the serial matcher would have emitted for
  // `trail` (node/rel/path variable bindings; repeated variables pin).
  Record ReconstructRecord(const PathValue& trail) const;

  const MatchClause* match_;
  const PathPattern* pattern_;
  std::set<std::string> new_vars_;  // All pattern variables.

  bool valid_ = false;
  int64_t applied_advances_ = 0;

  // Precomputed pattern property constraints, per position.
  std::vector<std::vector<std::pair<std::string, Value>>> node_props_;
  std::vector<std::vector<std::pair<std::string, Value>>> rel_props_;
  bool props_ready_ = false;

  // The match bag, keyed in canonical order, plus the inverted
  // entity→match index driving churn-proportional repair. Key pointers
  // are stable (node-based map).
  std::map<Key, PathValue> matches_;
  std::map<NodeId, std::set<const Key*>> node_keys_;
  std::map<RelId, std::set<const Key*>> rel_keys_;
};

}  // namespace seraph

#endif  // SERAPH_SERAPH_DELTA_DELTA_INDEX_H_
