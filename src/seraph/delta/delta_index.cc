#include "seraph/delta/delta_index.h"

#include <algorithm>

#include "cypher/eval.h"
#include "cypher/matcher.h"

namespace seraph {

namespace {

// Variables introduced by the clause's patterns — must agree with the
// executor's PatternVariables so Emit's table fields match ApplyMatch's.
std::set<std::string> ClausePatternVariables(
    const std::vector<PathPattern>& patterns) {
  std::set<std::string> vars;
  for (const PathPattern& path : patterns) {
    if (!path.path_variable.empty()) vars.insert(path.path_variable);
    for (const NodePattern& np : path.nodes) {
      if (!np.variable.empty()) vars.insert(np.variable);
    }
    for (const RelPattern& rp : path.rels) {
      if (!rp.variable.empty()) vars.insert(rp.variable);
    }
  }
  return vars;
}

// Recursive subtree test. `VisitChildren` covers every expression kind;
// ExistsPatternExpr additionally visits only its pattern property
// expressions, which is exactly what the eligibility checks need (the
// node itself is detected before recursing).
bool SubtreeContains(const Expr& e,
                     const std::function<bool(const Expr&)>& pred) {
  if (pred(e)) return true;
  bool found = false;
  e.VisitChildren([&](const Expr& child) {
    if (!found) found = SubtreeContains(child, pred);
  });
  return found;
}

bool ContainsExists(const Expr& e) {
  return SubtreeContains(e, [](const Expr& x) {
    return dynamic_cast<const ExistsPatternExpr*>(&x) != nullptr;
  });
}

bool ContainsVariable(const Expr& e) {
  return SubtreeContains(e, [](const Expr& x) {
    return dynamic_cast<const VariableExpr*>(&x) != nullptr;
  });
}

// Forward/backward incident-edge enumeration mirroring the serial
// matcher's ForEachIncident exactly, including its self-loop quirks:
// under kIncoming a self-loop never matches; under kUndirected a
// self-loop is visited once, through the outgoing bucket.
//
// The bucket reported for each visit is the adjacency list it came from
// (0 = outgoing, 1 = incoming), which for a traversal step from
// nodes[i] to nodes[i+1] via r is equivalently (r.src == nodes[i] ? 0 :
// 1) — the form KeyFor reconstructs from a finished trail.
template <typename Fn>
Status ForEachForward(const PropertyGraph& graph, NodeId from,
                      RelDirection direction, const Fn& fn) {
  if (direction != RelDirection::kIncoming) {
    for (RelId rid : graph.OutRelationships(from)) {
      const RelData* data = graph.relationship(rid);
      SERAPH_RETURN_IF_ERROR(fn(rid, data->trg, /*bucket=*/0));
    }
  }
  if (direction != RelDirection::kOutgoing) {
    for (RelId rid : graph.InRelationships(from)) {
      const RelData* data = graph.relationship(rid);
      if (data->src == data->trg) continue;  // Self-loop seen via out.
      SERAPH_RETURN_IF_ERROR(fn(rid, data->src, /*bucket=*/1));
    }
  }
  return Status::OK();
}

// Enumerates the candidates for the node *left* of `at` through the
// relationship pattern between them: every (rid, left) such that the
// forward step left --rid--> at is admissible under `direction`.
template <typename Fn>
Status ForEachBackward(const PropertyGraph& graph, NodeId at,
                       RelDirection direction, const Fn& fn) {
  if (direction == RelDirection::kOutgoing) {
    // Forward: out-list of left, other = trg. So r.trg == at, left = src
    // (self-loops included — forward visits them through left's out
    // list).
    for (RelId rid : graph.InRelationships(at)) {
      const RelData* data = graph.relationship(rid);
      SERAPH_RETURN_IF_ERROR(fn(rid, data->src, /*bucket=*/0));
    }
    return Status::OK();
  }
  if (direction == RelDirection::kIncoming) {
    // Forward: in-list of left minus self-loops, other = src. So
    // r.src == at, left = trg, src != trg.
    for (RelId rid : graph.OutRelationships(at)) {
      const RelData* data = graph.relationship(rid);
      if (data->src == data->trg) continue;
      SERAPH_RETURN_IF_ERROR(fn(rid, data->trg, /*bucket=*/1));
    }
    return Status::OK();
  }
  // kUndirected: union of both readings. A self-loop at `at` appears only
  // through the first branch (bucket 0), matching the forward quirk.
  for (RelId rid : graph.InRelationships(at)) {
    const RelData* data = graph.relationship(rid);
    SERAPH_RETURN_IF_ERROR(fn(rid, data->src, /*bucket=*/0));
  }
  for (RelId rid : graph.OutRelationships(at)) {
    const RelData* data = graph.relationship(rid);
    if (data->src == data->trg) continue;
    SERAPH_RETURN_IF_ERROR(fn(rid, data->trg, /*bucket=*/1));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Eligibility
// ---------------------------------------------------------------------------

bool DeltaIndex::Eligible(const RegisteredQuery& query) {
  if (query.mode != OutputMode::kEmitStream) return false;
  if (!query.IsWindowContentDeterministic()) return false;
  if (query.clauses.size() != 1) return false;
  const auto* match = std::get_if<MatchClause>(&query.clauses[0]);
  if (match == nullptr || match->optional) return false;
  if (match->patterns.size() != 1) return false;
  const PathPattern& pattern = match->patterns[0];
  if (pattern.mode != PathMode::kNormal) return false;
  for (const RelPattern& rp : pattern.rels) {
    if (rp.variable_length) return false;
  }
  // Pattern property expressions must be evaluable once, without a
  // binding: no variable references, no exists().
  for (const NodePattern& np : pattern.nodes) {
    for (const auto& [key, expr] : np.properties) {
      if (ContainsVariable(*expr) || ContainsExists(*expr)) return false;
    }
  }
  for (const RelPattern& rp : pattern.rels) {
    for (const auto& [key, expr] : rp.properties) {
      if (ContainsVariable(*expr) || ContainsExists(*expr)) return false;
    }
  }
  // WHERE may reference the pattern variables freely (it is re-evaluated
  // at every Emit against the live snapshot), but an exists() predicate
  // would re-introduce full pattern matching per row — excluded.
  if (match->where != nullptr && ContainsExists(*match->where)) return false;
  // Projection: aggregation is follow-on work; exists() as above.
  const ProjectionBody& body = query.projection;
  for (const ProjectionItem& item : body.items) {
    if (item.expr->ContainsAggregate()) return false;
    if (ContainsExists(*item.expr)) return false;
  }
  for (const OrderByItem& item : body.order_by) {
    if (item.expr->ContainsAggregate()) return false;
    if (ContainsExists(*item.expr)) return false;
  }
  if (body.skip != nullptr && ContainsExists(*body.skip)) return false;
  if (body.limit != nullptr && ContainsExists(*body.limit)) return false;
  return true;
}

DeltaIndex::DeltaIndex(const MatchClause* match)
    : match_(match),
      pattern_(&match->patterns[0]),
      new_vars_(ClausePatternVariables(match->patterns)) {}

void DeltaIndex::Invalidate() {
  valid_ = false;
  applied_advances_ = 0;
  matches_.clear();
  node_keys_.clear();
  rel_keys_.clear();
}

// ---------------------------------------------------------------------------
// Keys and index maintenance
// ---------------------------------------------------------------------------

DeltaIndex::Key DeltaIndex::KeyFor(const PathValue& trail,
                                   const PropertyGraph& graph) const {
  Key key;
  key.reserve(1 + 2 * trail.rels.size());
  key.push_back(trail.nodes[0].value);
  for (size_t i = 0; i < trail.rels.size(); ++i) {
    const RelData* data = graph.relationship(trail.rels[i]);
    // The adjacency bucket the serial matcher found this step in: 0 when
    // the step left through nodes[i]'s outgoing list, 1 through its
    // incoming list. Self-loops are always visited through the outgoing
    // list, which this form gets right (src == nodes[i]).
    key.push_back(data->src == trail.nodes[i] ? 0 : 1);
    key.push_back(trail.rels[i].value);
  }
  return key;
}

void DeltaIndex::InsertMatch(const PathValue& trail,
                             const PropertyGraph& graph) {
  Key key = KeyFor(trail, graph);
  auto [it, inserted] = matches_.emplace(std::move(key), trail);
  if (!inserted) return;
  const Key* kp = &it->first;
  for (NodeId n : it->second.nodes) node_keys_[n].insert(kp);
  for (RelId r : it->second.rels) rel_keys_[r].insert(kp);
}

void DeltaIndex::RemoveMatch(const Key& key) {
  auto it = matches_.find(key);
  if (it == matches_.end()) return;
  const Key* kp = &it->first;
  const PathValue& trail = it->second;
  for (NodeId n : trail.nodes) {
    auto nit = node_keys_.find(n);
    if (nit != node_keys_.end()) {
      nit->second.erase(kp);
      if (nit->second.empty()) node_keys_.erase(nit);
    }
  }
  for (RelId r : trail.rels) {
    auto rit = rel_keys_.find(r);
    if (rit != rel_keys_.end()) {
      rit->second.erase(kp);
      if (rit->second.empty()) rel_keys_.erase(rit);
    }
  }
  matches_.erase(it);
}

// ---------------------------------------------------------------------------
// Constraint checks (precomputed property values)
// ---------------------------------------------------------------------------

Status DeltaIndex::PrecomputeProperties(const PropertyGraph& graph,
                                        const ExecutionOptions& exec) {
  // The expressions reference no variables (Eligible), and the query is
  // window-content-deterministic, so the values are constant across
  // evaluations — computed once per Build.
  EvalContext ctx(&graph, nullptr);
  ctx.set_parameters(&exec.parameters);
  ctx.set_now(exec.now);
  ctx.set_window(exec.window);
  node_props_.assign(pattern_->nodes.size(), {});
  rel_props_.assign(pattern_->rels.size(), {});
  for (size_t j = 0; j < pattern_->nodes.size(); ++j) {
    for (const auto& [key, expr] : pattern_->nodes[j].properties) {
      SERAPH_ASSIGN_OR_RETURN(Value v, expr->Eval(ctx));
      node_props_[j].emplace_back(key, std::move(v));
    }
  }
  for (size_t i = 0; i < pattern_->rels.size(); ++i) {
    for (const auto& [key, expr] : pattern_->rels[i].properties) {
      SERAPH_ASSIGN_OR_RETURN(Value v, expr->Eval(ctx));
      rel_props_[i].emplace_back(key, std::move(v));
    }
  }
  props_ready_ = true;
  return Status::OK();
}

bool DeltaIndex::NodeOk(const PropertyGraph& graph, size_t pos,
                        NodeId id) const {
  const NodeData* data = graph.node(id);
  if (data == nullptr) return false;
  const NodePattern& np = pattern_->nodes[pos];
  for (const std::string& label : np.labels) {
    if (!data->labels.contains(label)) return false;
  }
  for (const auto& [key, expected] : node_props_[pos]) {
    auto it = data->properties.find(key);
    if (it == data->properties.end()) return false;
    if (!IsTruthy(CypherEquals(it->second, expected))) return false;
  }
  return true;
}

bool DeltaIndex::RelOk(const PropertyGraph& graph, size_t pos,
                       RelId id) const {
  const RelData* data = graph.relationship(id);
  if (data == nullptr) return false;
  const RelPattern& rp = pattern_->rels[pos];
  if (!rp.types.empty()) {
    bool any = false;
    for (const std::string& type : rp.types) {
      if (data->type == type) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  for (const auto& [key, expected] : rel_props_[pos]) {
    auto it = data->properties.find(key);
    if (it == data->properties.end()) return false;
    if (!IsTruthy(CypherEquals(it->second, expected))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Anchored rediscovery
// ---------------------------------------------------------------------------

// One in-flight anchored DFS: a contiguous range [left, right] of bound
// node positions (plus the rels between them), with repeated-variable
// pinning and per-match relationship isomorphism.
struct DeltaIndex::Search {
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;
  std::vector<int> buckets;
  std::map<std::string, NodeId> node_vars;
  std::map<std::string, RelId> rel_vars;
  std::set<RelId> used_rels;

  explicit Search(size_t num_nodes)
      : nodes(num_nodes), rels(num_nodes > 0 ? num_nodes - 1 : 0),
        buckets(num_nodes > 0 ? num_nodes - 1 : 0) {}

  // Variable pinning at bind time; returns false on a clash, sets
  // *bound_here when this bind introduced the entry (so the caller can
  // undo it on unwind).
  bool BindNodeVar(const std::string& var, NodeId id, bool* bound_here) {
    *bound_here = false;
    if (var.empty()) return true;
    auto it = node_vars.find(var);
    if (it != node_vars.end()) return it->second == id;
    node_vars.emplace(var, id);
    *bound_here = true;
    return true;
  }
  bool BindRelVar(const std::string& var, RelId id, bool* bound_here) {
    *bound_here = false;
    if (var.empty()) return true;
    auto it = rel_vars.find(var);
    if (it != rel_vars.end()) return it->second == id;
    rel_vars.emplace(var, id);
    *bound_here = true;
    return true;
  }
};

Status DeltaIndex::RecordMatch(const Search& s) {
  PathValue trail;
  trail.nodes = s.nodes;
  trail.rels = s.rels;
  Key key;
  key.reserve(1 + 2 * trail.rels.size());
  key.push_back(trail.nodes[0].value);
  for (size_t i = 0; i < trail.rels.size(); ++i) {
    key.push_back(s.buckets[i]);
    key.push_back(trail.rels[i].value);
  }
  auto [it, inserted] = matches_.emplace(std::move(key), std::move(trail));
  if (inserted) {
    const Key* kp = &it->first;
    for (NodeId n : it->second.nodes) node_keys_[n].insert(kp);
    for (RelId r : it->second.rels) rel_keys_[r].insert(kp);
  }
  return Status::OK();
}

Status DeltaIndex::ExtendRight(const PropertyGraph& graph, Search* s,
                               size_t right, size_t left) {
  if (right + 1 == pattern_->nodes.size()) {
    return ExtendLeft(graph, s, left);
  }
  const RelPattern& rp = pattern_->rels[right];
  return ForEachForward(
      graph, s->nodes[right], rp.direction,
      [&](RelId rid, NodeId other, int bucket) -> Status {
        if (s->used_rels.contains(rid)) return Status::OK();
        if (!RelOk(graph, right, rid)) return Status::OK();
        if (!NodeOk(graph, right + 1, other)) return Status::OK();
        bool rel_bound = false, node_bound = false;
        if (!s->BindRelVar(rp.variable, rid, &rel_bound)) return Status::OK();
        if (!s->BindNodeVar(pattern_->nodes[right + 1].variable, other,
                            &node_bound)) {
          if (rel_bound) s->rel_vars.erase(rp.variable);
          return Status::OK();
        }
        s->used_rels.insert(rid);
        s->rels[right] = rid;
        s->buckets[right] = bucket;
        s->nodes[right + 1] = other;
        Status st = ExtendRight(graph, s, right + 1, left);
        s->used_rels.erase(rid);
        if (node_bound) s->node_vars.erase(pattern_->nodes[right + 1].variable);
        if (rel_bound) s->rel_vars.erase(rp.variable);
        return st;
      });
}

Status DeltaIndex::ExtendLeft(const PropertyGraph& graph, Search* s,
                              size_t left) {
  if (left == 0) return RecordMatch(*s);
  const RelPattern& rp = pattern_->rels[left - 1];
  return ForEachBackward(
      graph, s->nodes[left], rp.direction,
      [&](RelId rid, NodeId prev, int bucket) -> Status {
        if (s->used_rels.contains(rid)) return Status::OK();
        if (!RelOk(graph, left - 1, rid)) return Status::OK();
        if (!NodeOk(graph, left - 1, prev)) return Status::OK();
        bool rel_bound = false, node_bound = false;
        if (!s->BindRelVar(rp.variable, rid, &rel_bound)) return Status::OK();
        if (!s->BindNodeVar(pattern_->nodes[left - 1].variable, prev,
                            &node_bound)) {
          if (rel_bound) s->rel_vars.erase(rp.variable);
          return Status::OK();
        }
        s->used_rels.insert(rid);
        s->rels[left - 1] = rid;
        s->buckets[left - 1] = bucket;
        s->nodes[left - 1] = prev;
        Status st = ExtendLeft(graph, s, left - 1);
        s->used_rels.erase(rid);
        if (node_bound) s->node_vars.erase(pattern_->nodes[left - 1].variable);
        if (rel_bound) s->rel_vars.erase(rp.variable);
        return st;
      });
}

Status DeltaIndex::AnchorNode(const PropertyGraph& graph, NodeId id,
                              size_t pos) {
  if (!NodeOk(graph, pos, id)) return Status::OK();
  Search s(pattern_->nodes.size());
  bool bound = false;
  if (!s.BindNodeVar(pattern_->nodes[pos].variable, id, &bound)) {
    return Status::OK();
  }
  s.nodes[pos] = id;
  return ExtendRight(graph, &s, pos, pos);
}

Status DeltaIndex::AnchorRel(const PropertyGraph& graph, RelId id,
                             size_t pos) {
  const RelData* data = graph.relationship(id);
  if (data == nullptr) return Status::OK();
  if (!RelOk(graph, pos, id)) return Status::OK();
  const RelPattern& rp = pattern_->rels[pos];
  // Endpoint orientations admissible under the pattern direction, mirrored
  // from the forward traversal: kOutgoing pins (src, trg); kIncoming pins
  // (trg, src) and never matches self-loops; kUndirected tries both, the
  // reversed reading only for non-self-loops (the forward in-list skip).
  struct Orientation {
    NodeId left, right;
    int bucket;
  };
  std::vector<Orientation> orientations;
  if (rp.direction != RelDirection::kIncoming) {
    orientations.push_back({data->src, data->trg, 0});
  }
  if (rp.direction != RelDirection::kOutgoing && data->src != data->trg) {
    orientations.push_back({data->trg, data->src, 1});
  }
  for (const Orientation& o : orientations) {
    if (!NodeOk(graph, pos, o.left)) continue;
    if (!NodeOk(graph, pos + 1, o.right)) continue;
    Search s(pattern_->nodes.size());
    bool rel_bound = false, left_bound = false, right_bound = false;
    if (!s.BindRelVar(rp.variable, id, &rel_bound)) continue;
    if (!s.BindNodeVar(pattern_->nodes[pos].variable, o.left, &left_bound)) {
      continue;
    }
    if (!s.BindNodeVar(pattern_->nodes[pos + 1].variable, o.right,
                       &right_bound)) {
      continue;
    }
    s.used_rels.insert(id);
    s.nodes[pos] = o.left;
    s.nodes[pos + 1] = o.right;
    s.rels[pos] = id;
    s.buckets[pos] = o.bucket;
    SERAPH_RETURN_IF_ERROR(ExtendRight(graph, &s, pos + 1, pos));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Build / repair / emit
// ---------------------------------------------------------------------------

Status DeltaIndex::Build(const PropertyGraph& graph, int64_t advances,
                         const ExecutionOptions& exec) {
  Invalidate();
  SERAPH_RETURN_IF_ERROR(PrecomputeProperties(graph, exec));
  // Full serial match with trail capture: the emitted order is the
  // canonical order the keyed map reproduces, and the records it would
  // emit are reconstructible from the trails.
  EvalContext ctx(&graph, nullptr);
  ctx.set_parameters(&exec.parameters);
  ctx.set_now(exec.now);
  ctx.set_window(exec.window);
  ctx.set_cancellation(exec.cancellation);
  std::vector<Record> records;
  std::vector<PathValue> trails;
  SERAPH_RETURN_IF_ERROR(MatchPatternWithTrails(*pattern_, graph, Record(),
                                                ctx, &records, &trails));
  for (const PathValue& trail : trails) InsertMatch(trail, graph);
  applied_advances_ = advances;
  valid_ = true;
  return Status::OK();
}

void DeltaIndex::ObserveAdvance(const IncrementalSnapshotter& snapshotter) {
  if (!valid_) return;
  const int64_t advances = snapshotter.stats().advances;
  if (advances == applied_advances_) return;
  if (advances != applied_advances_ + 1) {
    // Missed one or more advances (the published dirty sets only cover
    // the last one): the index can no longer be repaired incrementally.
    Invalidate();
    return;
  }
  Status repaired =
      ApplyDirty(snapshotter.graph(), snapshotter.last_dirty_nodes(),
                 snapshotter.last_dirty_rels());
  if (!repaired.ok()) {
    Invalidate();
    return;
  }
  applied_advances_ = advances;
}

Status DeltaIndex::ApplyDirty(const PropertyGraph& graph,
                              const std::vector<NodeId>& dirty_nodes,
                              const std::vector<RelId>& dirty_rels) {
  if (!props_ready_) {
    return Status::Internal("delta index repaired before Build");
  }
  // Phase 1: drop every indexed match touching a dirty entity. (The keys
  // are copied out first — removal invalidates the inverted-index
  // pointers being iterated.)
  std::set<Key> stale;
  for (NodeId n : dirty_nodes) {
    auto it = node_keys_.find(n);
    if (it == node_keys_.end()) continue;
    for (const Key* kp : it->second) stale.insert(*kp);
  }
  for (RelId r : dirty_rels) {
    auto it = rel_keys_.find(r);
    if (it == rel_keys_.end()) continue;
    for (const Key* kp : it->second) stale.insert(*kp);
  }
  for (const Key& key : stale) RemoveMatch(key);
  // Phase 2: rediscover every current match containing at least one dirty
  // entity — anchor each dirty entity at each position it could occupy.
  // A match containing several dirty entities is discovered several
  // times; the keyed map collapses duplicates.
  for (NodeId n : dirty_nodes) {
    if (!graph.HasNode(n)) continue;
    for (size_t pos = 0; pos < pattern_->nodes.size(); ++pos) {
      SERAPH_RETURN_IF_ERROR(AnchorNode(graph, n, pos));
    }
  }
  for (RelId r : dirty_rels) {
    if (!graph.HasRelationship(r)) continue;
    for (size_t pos = 0; pos < pattern_->rels.size(); ++pos) {
      SERAPH_RETURN_IF_ERROR(AnchorRel(graph, r, pos));
    }
  }
  return Status::OK();
}

Record DeltaIndex::ReconstructRecord(const PathValue& trail) const {
  Record m;
  for (size_t j = 0; j < pattern_->nodes.size(); ++j) {
    const std::string& var = pattern_->nodes[j].variable;
    if (!var.empty() && !m.Has(var)) m.Set(var, Value::Node(trail.nodes[j]));
  }
  for (size_t i = 0; i < pattern_->rels.size(); ++i) {
    const std::string& var = pattern_->rels[i].variable;
    if (!var.empty() && !m.Has(var)) {
      m.Set(var, Value::Relationship(trail.rels[i]));
    }
  }
  if (!pattern_->path_variable.empty()) {
    m.Set(pattern_->path_variable, Value::Path(trail));
  }
  return m;
}

Result<Table> DeltaIndex::Emit(const PropertyGraph& graph,
                               const ExecutionOptions& exec) const {
  if (!valid_) return Status::Internal("Emit on an invalid delta index");
  // Mirror ApplyMatch over Table::Unit() exactly: fields are the pattern
  // variables, WHERE filters each reconstructed match against the live
  // snapshot, and every variable is padded (all are bound here, but the
  // loop keeps the parity explicit).
  EvalContext ctx(&graph, nullptr);
  ctx.set_parameters(&exec.parameters);
  ctx.set_now(exec.now);
  ctx.set_window(exec.window);
  ctx.set_cancellation(exec.cancellation);
  Table out(new_vars_);
  for (const auto& [key, trail] : matches_) {
    SERAPH_RETURN_IF_ERROR(ctx.CheckCancelled());
    Record m = ReconstructRecord(trail);
    if (match_->where != nullptr) {
      ctx.set_record(&m);
      SERAPH_ASSIGN_OR_RETURN(Value cond, match_->where->Eval(ctx));
      if (!IsTruthy(cond)) continue;
    }
    for (const std::string& v : new_vars_) {
      if (!m.Has(v)) m.Set(v, Value::Null());
    }
    out.AppendUnchecked(std::move(m));
  }
  return out;
}

}  // namespace seraph
