// Records (Def. 3.2): partial functions from names to values, written
// u = (a1: v1, ..., an: vn). A record's *domain* is its set of names.
#ifndef SERAPH_TABLE_RECORD_H_
#define SERAPH_TABLE_RECORD_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "value/value.h"

namespace seraph {

class Record {
 public:
  Record() = default;

  explicit Record(std::map<std::string, Value> fields)
      : fields_(std::move(fields)) {}

  // Returns the bound value, or nullptr if `name` ∉ dom(u).
  const Value* Find(const std::string& name) const {
    auto it = fields_.find(name);
    return it == fields_.end() ? nullptr : &it->second;
  }

  // Returns the bound value, or null when unbound (convenient for
  // expression evaluation where unbound degenerates to null).
  Value GetOrNull(const std::string& name) const {
    const Value* v = Find(name);
    return v == nullptr ? Value::Null() : *v;
  }

  bool Has(const std::string& name) const { return fields_.contains(name); }

  // Binds `name` to `value`, overwriting any existing binding.
  void Set(std::string name, Value value) {
    fields_[std::move(name)] = std::move(value);
  }

  void Erase(const std::string& name) { fields_.erase(name); }

  // dom(u).
  std::set<std::string> Domain() const {
    std::set<std::string> names;
    for (const auto& [name, value] : fields_) names.insert(name);
    return names;
  }

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  // The record u · u' extending this record with `other`'s bindings.
  // Overlapping names must agree with this record — callers (pattern
  // matching) guarantee disjointness or equality.
  Record Extended(const Record& other) const {
    Record out = *this;
    for (const auto& [name, value] : other.fields_) {
      out.fields_[name] = value;
    }
    return out;
  }

  // Name-ordered iteration (deterministic).
  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }

  friend bool operator==(const Record& a, const Record& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Record& a, const Record& b) {
    return !(a == b);
  }

  size_t Hash() const;

  // "(a1: v1, a2: v2)".
  std::string ToString() const;

 private:
  std::map<std::string, Value> fields_;
};

}  // namespace seraph

template <>
struct std::hash<seraph::Record> {
  size_t operator()(const seraph::Record& r) const { return r.Hash(); }
};

#endif  // SERAPH_TABLE_RECORD_H_
