#include "table/record.h"

#include "common/hash.h"

namespace seraph {

size_t Record::Hash() const {
  size_t seed = 0;
  for (const auto& [name, value] : fields_) {
    HashCombine(&seed, name);
    HashCombine(&seed, value.Hash());
  }
  return seed;
}

std::string Record::ToString() const {
  std::string out = "(";
  bool first = true;
  for (const auto& [name, value] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += name;
    out += ": ";
    out += value.ToString();
  }
  out += ")";
  return out;
}

}  // namespace seraph
