#include "table/time_table.h"

#include "common/logging.h"

namespace seraph {

Table TimeAnnotatedTable::WithAnnotations() const {
  std::set<std::string> fields = table.fields();
  fields.insert(kWinStartField);
  fields.insert(kWinEndField);
  Table out(std::move(fields));
  for (const Record& row : table.rows()) {
    Record annotated = row;
    annotated.Set(kWinStartField, Value::DateTime(window.start));
    annotated.Set(kWinEndField, Value::DateTime(window.end));
    out.AppendUnchecked(std::move(annotated));
  }
  return out;
}

void TimeVaryingTable::Insert(TimeAnnotatedTable entry) {
  if (!entries_.empty()) {
    SERAPH_CHECK(entries_.back().window.start <= entry.window.start)
        << "time-varying table windows must open monotonically";
  }
  entries_.push_back(std::move(entry));
}

std::optional<TimeAnnotatedTable> TimeVaryingTable::At(Timestamp t) const {
  // Entries are ordered by opening bound; the first whose window covers t
  // is the chronologically-earliest valid table.
  for (const TimeAnnotatedTable& entry : entries_) {
    if (entry.window.start > t) break;
    if (entry.window.Contains(t, IntervalBounds::kLeftClosedRightOpen)) {
      return entry;
    }
  }
  return std::nullopt;
}

}  // namespace seraph
