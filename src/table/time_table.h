// Time-annotated tables (Def. 5.6) and time-varying tables (Def. 5.7).
//
// A time-annotated table is a table whose records are (conceptually)
// extended with the reserved names `win_start` and `win_end` carrying the
// evaluation window's bounds. We keep the interval once per table and
// materialize the two columns on demand (`WithAnnotations`), which is
// observationally identical and avoids duplicating the bounds per row.
//
// A time-varying table Ψ maps every time instant ω ∈ Ω to the
// time-annotated table valid at ω, subject to the paper's consistency /
// chronologicality / monotonicity constraints — realized here by storing
// the sequence of evaluation results keyed by window and answering At(ω)
// with the earliest-opening table whose interval covers ω.
#ifndef SERAPH_TABLE_TIME_TABLE_H_
#define SERAPH_TABLE_TIME_TABLE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "table/table.h"
#include "temporal/interval.h"

namespace seraph {

// Reserved field names (Def. 5.6). Queries must not bind these.
inline constexpr char kWinStartField[] = "win_start";
inline constexpr char kWinEndField[] = "win_end";

// A table valid for the window [window.start, window.end).
struct TimeAnnotatedTable {
  Table table;
  TimeInterval window;

  // Returns `table` with explicit win_start / win_end columns added to
  // every record (datetime-valued), i.e. the literal Def. 5.6 shape used
  // in the paper's Tables 4–6.
  Table WithAnnotations() const;

  friend bool operator==(const TimeAnnotatedTable& a,
                         const TimeAnnotatedTable& b) {
    return a.window == b.window && a.table == b.table;
  }
};

// Ψ : Ω → time-annotated tables.
class TimeVaryingTable {
 public:
  TimeVaryingTable() = default;

  // Records the evaluation result for a window. Windows must be inserted
  // in non-decreasing order of their opening bound (monotonicity).
  void Insert(TimeAnnotatedTable entry);

  // Ψ(ω): the time-annotated table with the earliest opening timestamp
  // whose window contains ω (consistency + chronologicality). Returns
  // nullopt when no table is valid at ω.
  std::optional<TimeAnnotatedTable> At(Timestamp t) const;

  // All recorded tables in insertion (chronological) order.
  const std::vector<TimeAnnotatedTable>& entries() const { return entries_; }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<TimeAnnotatedTable> entries_;
};

}  // namespace seraph

#endif  // SERAPH_TABLE_TIME_TABLE_H_
