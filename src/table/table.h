// Tables (Def. 3.2): bags (multisets) of records sharing one field set.
// Clause semantics in both Cypher (Section 3.2) and Seraph (Fig. 7) are
// functions Table → Table; the bag operations here (union, difference,
// distinct) implement those semantics, and bag difference in particular
// implements the ON ENTERING / ON EXITING report policies.
#ifndef SERAPH_TABLE_TABLE_H_
#define SERAPH_TABLE_TABLE_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "table/record.h"

namespace seraph {

class Table {
 public:
  // An empty table with no fields and no rows.
  Table() = default;

  explicit Table(std::set<std::string> fields)
      : fields_(std::move(fields)) {}

  // T(): the table containing the single empty record — the initial input
  // of query evaluation (Section 3.2).
  static Table Unit() {
    Table t;
    t.rows_.emplace_back();
    return t;
  }

  const std::set<std::string>& fields() const { return fields_; }
  const std::vector<Record>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  // Appends a row. The row's domain must equal the table's field set; in
  // debug use this is checked.
  void Append(Record row);

  // Appends without the domain check (hot path for the executor, which
  // constructs domains correctly by design).
  void AppendUnchecked(Record row) { rows_.push_back(std::move(row)); }

  // Widens the field set (rows added later must carry the new fields).
  void AddField(const std::string& name) { fields_.insert(name); }
  void SetFields(std::set<std::string> fields) { fields_ = std::move(fields); }

  // Bag union: concatenation (UNION ALL).
  static Table BagUnion(const Table& a, const Table& b);

  // Bag difference a ∖ b: each record's multiplicity becomes
  // max(0, mult_a − mult_b). This is the paper's "bag difference of two
  // tables" and the delta underlying ON ENTERING.
  static Table BagDifference(const Table& a, const Table& b);

  // Set-semantics duplicate elimination (UNION / DISTINCT), preserving
  // first-occurrence order.
  Table Distinct() const;

  // Keeps only `names` in every record (names absent from a record are
  // simply not produced).
  Table Project(const std::set<std::string>& names) const;

  // Stable sort by `cmp` (used by ORDER BY and for deterministic output).
  void SortRows(
      const std::function<bool(const Record&, const Record&)>& cmp);

  // Sorts rows by their canonical value order — gives a deterministic
  // rendering for golden tests.
  Table Canonicalized() const;

  // Multiplicity of `row` in the bag.
  size_t Count(const Record& row) const;

  // Bag equality: same fields and same record multiplicities.
  friend bool operator==(const Table& a, const Table& b);
  friend bool operator!=(const Table& a, const Table& b) { return !(a == b); }

  // Renders an aligned ASCII table with `columns` in the given order (the
  // shape of the paper's Tables 2/4/5/6).
  std::string ToAsciiTable(const std::vector<std::string>& columns) const;

  std::string ToString() const;

 private:
  std::set<std::string> fields_;
  std::vector<Record> rows_;
};

}  // namespace seraph

#endif  // SERAPH_TABLE_TABLE_H_
