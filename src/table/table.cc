#include "table/table.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace seraph {

void Table::Append(Record row) {
  SERAPH_DCHECK(row.Domain() == fields_)
      << "row domain " << row.ToString() << " does not match table fields";
  rows_.push_back(std::move(row));
}

Table Table::BagUnion(const Table& a, const Table& b) {
  SERAPH_DCHECK(a.fields_ == b.fields_ || a.empty() || b.empty())
      << "bag union of tables with different fields";
  Table out(a.empty() ? b.fields_ : a.fields_);
  out.rows_ = a.rows_;
  out.rows_.insert(out.rows_.end(), b.rows_.begin(), b.rows_.end());
  return out;
}

Table Table::BagDifference(const Table& a, const Table& b) {
  std::unordered_map<Record, size_t> to_remove;
  to_remove.reserve(b.rows_.size());
  for (const Record& r : b.rows_) ++to_remove[r];
  Table out(a.fields_);
  for (const Record& r : a.rows_) {
    auto it = to_remove.find(r);
    if (it != to_remove.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.rows_.push_back(r);
  }
  return out;
}

Table Table::Distinct() const {
  std::unordered_map<Record, bool> seen;
  seen.reserve(rows_.size());
  Table out(fields_);
  for (const Record& r : rows_) {
    auto [it, inserted] = seen.try_emplace(r, true);
    if (inserted) out.rows_.push_back(r);
  }
  return out;
}

Table Table::Project(const std::set<std::string>& names) const {
  std::set<std::string> kept;
  for (const std::string& f : fields_) {
    if (names.contains(f)) kept.insert(f);
  }
  Table out(kept);
  for (const Record& r : rows_) {
    Record projected;
    for (const std::string& name : kept) {
      const Value* v = r.Find(name);
      if (v != nullptr) projected.Set(name, *v);
    }
    out.rows_.push_back(std::move(projected));
  }
  return out;
}

void Table::SortRows(
    const std::function<bool(const Record&, const Record&)>& cmp) {
  std::stable_sort(rows_.begin(), rows_.end(), cmp);
}

Table Table::Canonicalized() const {
  Table out = *this;
  out.SortRows([](const Record& a, const Record& b) {
    auto ia = a.begin();
    auto ib = b.begin();
    for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
      if (ia->first != ib->first) return ia->first < ib->first;
      int c = Value::Compare(ia->second, ib->second);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

size_t Table::Count(const Record& row) const {
  size_t n = 0;
  for (const Record& r : rows_) {
    if (r == row) ++n;
  }
  return n;
}

bool operator==(const Table& a, const Table& b) {
  if (a.fields_ != b.fields_) return false;
  if (a.rows_.size() != b.rows_.size()) return false;
  std::unordered_map<Record, int64_t> counts;
  counts.reserve(a.rows_.size());
  for (const Record& r : a.rows_) ++counts[r];
  for (const Record& r : b.rows_) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

std::string Table::ToAsciiTable(
    const std::vector<std::string>& columns) const {
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size() + 1);
  cells.push_back(columns);
  for (const Record& r : rows_) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const std::string& col : columns) {
      row.push_back(r.GetOrNull(col).ToString());
    }
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(columns.size(), 0);
  for (const auto& row : cells) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  for (size_t ri = 0; ri < cells.size(); ++ri) {
    os << "|";
    for (size_t i = 0; i < cells[ri].size(); ++i) {
      os << " " << cells[ri][i]
         << std::string(widths[i] - cells[ri][i].size(), ' ') << " |";
    }
    os << "\n";
    if (ri == 0) {
      os << "|";
      for (size_t i = 0; i < widths.size(); ++i) {
        os << std::string(widths[i] + 2, '-') << "|";
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string Table::ToString() const {
  std::vector<std::string> columns(fields_.begin(), fields_.end());
  return ToAsciiTable(columns);
}

}  // namespace seraph
