#include "stream/snapshot.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "graph/graph_union.h"

namespace seraph {

namespace {

// Index of the first element admissible for a window starting at `start`.
size_t RangeBegin(const PropertyGraphStream& stream, Timestamp start,
                  IntervalBounds bounds) {
  if (bounds == IntervalBounds::kLeftOpenRightClosed) {
    return stream.LowerBound(Timestamp::FromMillis(start.millis() + 1));
  }
  return stream.LowerBound(start);
}

// Index one past the last admissible element for a window ending at `end`.
size_t RangeEnd(const PropertyGraphStream& stream, Timestamp end,
                IntervalBounds bounds) {
  if (bounds == IntervalBounds::kLeftOpenRightClosed) {
    return stream.LowerBound(Timestamp::FromMillis(end.millis() + 1));
  }
  return stream.LowerBound(end);
}

}  // namespace

Result<PropertyGraph> BuildSnapshot(const PropertyGraphStream& stream,
                                    const TimeInterval& interval,
                                    IntervalBounds bounds) {
  PropertyGraph snapshot;
  size_t begin = RangeBegin(stream, interval.start, bounds);
  size_t end = RangeEnd(stream, interval.end, bounds);
  for (size_t i = begin; i < end && i < stream.size(); ++i) {
    SERAPH_RETURN_IF_ERROR(MergeInto(&snapshot, *stream.at(i).graph));
  }
  return snapshot;
}

Status IncrementalSnapshotter::SetBase(
    std::shared_ptr<const PropertyGraph> base) {
  if (started_) {
    return Status::InvalidArgument(
        "SetBase must be called before the first Advance");
  }
  // The base enters as an ordinary (never-evicted) oldest contribution.
  AddElement(StreamElement{std::move(base),
                           Timestamp::FromMillis(
                               std::numeric_limits<int64_t>::min())});
  return Rebuild();
}

Status IncrementalSnapshotter::Advance(const TimeInterval& interval) {
  if (started_ && interval.start < last_interval_.start) {
    return Status::OutOfRange("window must not slide backwards");
  }
  size_t new_lo = RangeBegin(*stream_, interval.start, bounds_);
  size_t new_hi = RangeEnd(*stream_, interval.end, bounds_);
  new_hi = std::min(new_hi, stream_->size());
  new_lo = std::min(new_lo, new_hi);
  if (started_ && new_hi < hi_) {
    return Status::OutOfRange("window end must not move backwards");
  }
  // Append newly-covered elements, then evict expired ones.
  for (size_t i = std::max(hi_, new_lo); i < new_hi; ++i) {
    AddElement(stream_->at(i));
    ++stats_.elements_added;
  }
  for (size_t i = lo_; i < std::min(new_lo, hi_); ++i) {
    EvictElement(stream_->at(i));
    ++stats_.elements_evicted;
  }
  lo_ = new_lo;
  hi_ = new_hi;
  started_ = true;
  last_interval_ = interval;
  ++stats_.advances;
  return Rebuild();
}

void IncrementalSnapshotter::AddElement(const StreamElement& element) {
  const PropertyGraph& g = *element.graph;
  for (NodeId id : g.NodeIds()) {
    node_contribs_[id].push_back(
        NodeContribution{element.timestamp, element.graph, g.node(id)});
    dirty_nodes_.push_back(id);
  }
  for (RelId id : g.RelationshipIds()) {
    rel_contribs_[id].push_back(
        RelContribution{element.timestamp, element.graph, g.relationship(id)});
    dirty_rels_.push_back(id);
  }
}

void IncrementalSnapshotter::EvictElement(const StreamElement& element) {
  // Evictions proceed oldest-first, so the contribution to drop is the
  // first one owned by `element` — possibly behind a base-graph
  // contribution, which is never evicted.
  const PropertyGraph& g = *element.graph;
  for (NodeId id : g.NodeIds()) {
    auto it = node_contribs_.find(id);
    SERAPH_CHECK(it != node_contribs_.end() && !it->second.empty())
        << "evicting node contribution that was never added";
    auto& deque = it->second;
    auto hit = deque.begin();
    while (hit != deque.end() && hit->owner.get() != element.graph.get()) {
      ++hit;
    }
    SERAPH_CHECK(hit != deque.end()) << "eviction out of order";
    deque.erase(hit);
    dirty_nodes_.push_back(id);
  }
  for (RelId id : g.RelationshipIds()) {
    auto it = rel_contribs_.find(id);
    SERAPH_CHECK(it != rel_contribs_.end() && !it->second.empty())
        << "evicting relationship contribution that was never added";
    auto& deque = it->second;
    auto hit = deque.begin();
    while (hit != deque.end() && hit->owner.get() != element.graph.get()) {
      ++hit;
    }
    SERAPH_CHECK(hit != deque.end()) << "eviction out of order";
    deque.erase(hit);
    dirty_rels_.push_back(id);
  }
}

Status IncrementalSnapshotter::Rebuild() {
  // Relationships first: a dirty relationship may need removal before its
  // endpoint nodes are recomputed, and (re-)insertion afterwards.
  std::sort(dirty_rels_.begin(), dirty_rels_.end());
  dirty_rels_.erase(std::unique(dirty_rels_.begin(), dirty_rels_.end()),
                    dirty_rels_.end());
  std::sort(dirty_nodes_.begin(), dirty_nodes_.end());
  dirty_nodes_.erase(std::unique(dirty_nodes_.begin(), dirty_nodes_.end()),
                     dirty_nodes_.end());
  stats_.entities_recomputed +=
      static_cast<int64_t>(dirty_nodes_.size() + dirty_rels_.size());

  for (RelId id : dirty_rels_) {
    auto it = rel_contribs_.find(id);
    if (it != rel_contribs_.end() && it->second.empty()) {
      rel_contribs_.erase(it);
      it = rel_contribs_.end();
    }
    if (it == rel_contribs_.end()) {
      snapshot_.RemoveRelationship(id);
    }
  }
  for (NodeId id : dirty_nodes_) {
    auto it = node_contribs_.find(id);
    if (it != node_contribs_.end() && it->second.empty()) {
      node_contribs_.erase(it);
      it = node_contribs_.end();
    }
    if (it == node_contribs_.end()) {
      // Every relationship referencing the node is gone too (an element's
      // relationships always come with their endpoints).
      snapshot_.RemoveNode(id);
      continue;
    }
    NodeData merged = *it->second.front().data;
    for (size_t i = 1; i < it->second.size(); ++i) {
      const NodeData& next = *it->second[i].data;
      merged.labels.insert(next.labels.begin(), next.labels.end());
      for (const auto& [key, value] : next.properties) {
        merged.properties[key] = value;
      }
    }
    snapshot_.SetNodeData(id, std::move(merged));
  }
  for (RelId id : dirty_rels_) {
    auto it = rel_contribs_.find(id);
    if (it == rel_contribs_.end()) continue;
    RelData merged = *it->second.front().data;
    for (size_t i = 1; i < it->second.size(); ++i) {
      const RelData& next = *it->second[i].data;
      if (next.src != merged.src || next.trg != merged.trg ||
          next.type != merged.type) {
        return Status::Inconsistent(
            "relationship " + std::to_string(id.value) +
            " has conflicting endpoints/type across stream elements");
      }
      for (const auto& [key, value] : next.properties) {
        merged.properties[key] = value;
      }
    }
    SERAPH_RETURN_IF_ERROR(snapshot_.SetRelationshipData(id, std::move(merged)));
  }
  // Publish this rebuild's dirty sets (sorted, deduplicated above) for
  // consumers that maintain state keyed on window content — the delta
  // matcher repairs exactly these entities after each Advance.
  last_dirty_nodes_ = std::move(dirty_nodes_);
  last_dirty_rels_ = std::move(dirty_rels_);
  dirty_nodes_.clear();
  dirty_rels_.clear();
  return Status::OK();
}

}  // namespace seraph
