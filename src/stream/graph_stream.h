// Property graph streams (Defs. 5.2–5.3): sequences of timestamped
// property graphs with non-decreasing timestamps, plus substream selection
// over time intervals.
#ifndef SERAPH_STREAM_GRAPH_STREAM_H_
#define SERAPH_STREAM_GRAPH_STREAM_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"
#include "temporal/interval.h"
#include "temporal/timestamp.h"

namespace seraph {

// One stream element (G, ω). Graphs are shared immutably once appended.
struct StreamElement {
  std::shared_ptr<const PropertyGraph> graph;
  Timestamp timestamp;
  // Processing-time arrival stamp (Clock::Steady() microseconds; see
  // common/clock.h), set at EventQueue::Produce or engine ingestion and
  // carried to sink delivery, where `delivery - arrival` is the element's
  // ingest→emit latency (docs/INTERNALS.md, "Latency accounting & lag").
  // 0 = unstamped (latency accounting skips the element). Deliberately
  // not persisted: a recovered element's first life already reported its
  // latency.
  int64_t arrival_micros = 0;
};

// An in-memory property graph stream: the prefix observed so far of the
// conceptually unbounded sequence S. Elements must arrive with
// non-decreasing timestamps (Def. 5.2).
class PropertyGraphStream {
 public:
  PropertyGraphStream() = default;

  // Appends (graph, ω). Fails with kOutOfRange if ω precedes the last
  // appended timestamp. `arrival_micros` carries the element's
  // processing-time arrival stamp (0 = unstamped).
  Status Append(PropertyGraph graph, Timestamp timestamp,
                int64_t arrival_micros = 0);
  Status Append(std::shared_ptr<const PropertyGraph> graph,
                Timestamp timestamp, int64_t arrival_micros = 0);

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const StreamElement& at(size_t i) const { return elements_[i]; }
  const std::vector<StreamElement>& elements() const { return elements_; }

  // Timestamp of the last element ever appended (epoch when none was).
  // Survives DropFront so the non-decreasing check and watermark math
  // keep working on a retention-trimmed log.
  Timestamp MaxTimestamp() const { return last_timestamp_; }

  // Drops the first `n` elements (retention trim; bounded-ingest queues
  // trim entries every consumer has committed past). The non-decreasing
  // append invariant is preserved: it is checked against the last
  // *appended* timestamp, not the last retained one.
  void DropFront(size_t n);

  // The substream S_τ: elements whose timestamps fall in `interval` under
  // `bounds` (Def. 5.3 with the bounds policy of DESIGN.md §2).
  std::vector<StreamElement> Substream(const TimeInterval& interval,
                                       IntervalBounds bounds) const;

  // Index of the first element with timestamp >= t (elements are sorted by
  // timestamp). Used for incremental window maintenance.
  size_t LowerBound(Timestamp t) const;

 private:
  std::vector<StreamElement> elements_;
  Timestamp last_timestamp_;
  bool has_elements_ = false;
};

}  // namespace seraph

#endif  // SERAPH_STREAM_GRAPH_STREAM_H_
