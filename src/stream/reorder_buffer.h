// Out-of-order arrival handling in front of the (order-requiring) stream.
//
// The paper's Def. 5.2 assumes non-decreasing stream timestamps, which a
// real transport only guarantees per partition. A ReorderBuffer accepts
// elements out of order within a bounded lateness: an element is held
// until the watermark — the maximum seen timestamp minus the allowed
// lateness — passes it, then released in timestamp order. Elements older
// than the watermark at arrival are counted and dropped.
#ifndef SERAPH_STREAM_REORDER_BUFFER_H_
#define SERAPH_STREAM_REORDER_BUFFER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "stream/graph_stream.h"
#include "stream/overflow_policy.h"
#include "temporal/duration.h"

namespace seraph {

// The pending set can be capped (SetCapacity) so an out-of-order storm
// cannot grow it without bound: `shed_oldest` evicts the
// oldest-timestamped held element into an overflow list the caller
// drains (and dead-letters) via TakeOverflow; `reject` (and `block`,
// which has no producer to park at this layer and degrades to reject)
// refuses the incoming element the same way. Every eviction/refusal is
// counted in overflow_dropped (exported as seraph_reorder_dropped_total
// by the StreamDriver).
class ReorderBuffer {
 public:
  explicit ReorderBuffer(Duration allowed_lateness)
      : allowed_lateness_(allowed_lateness) {}

  // Caps the pending set (0 = unbounded, the default).
  void SetCapacity(size_t capacity, OverflowPolicy policy) {
    capacity_ = capacity;
    overflow_policy_ = policy;
  }

  // Offers an element. Returns false (and counts a drop) when the element
  // is already older than the watermark.
  bool Offer(std::shared_ptr<const PropertyGraph> graph, Timestamp timestamp);
  // Same, preserving the element's arrival stamp through the buffer (so
  // reordering delay is charged to the element's emit latency).
  bool Offer(StreamElement element);

  // The current watermark: max seen timestamp − allowed lateness (epoch
  // before any element was offered).
  Timestamp watermark() const;

  // Removes and returns all held elements with timestamp <= watermark,
  // in timestamp order (stable for ties).
  std::vector<StreamElement> Release();

  // Removes and returns everything (end of stream).
  std::vector<StreamElement> Flush();

  size_t pending() const { return held_.size(); }
  int64_t dropped() const { return dropped_; }
  // Elements lost to the pending-set cap (evicted or refused), distinct
  // from late-arrival drops counted in dropped().
  int64_t overflow_dropped() const { return overflow_dropped_; }

  // Removes and returns elements evicted by the shed_oldest cap since the
  // last call, so the caller can dead-letter them (exact accounting).
  std::vector<StreamElement> TakeOverflow();

 private:
  Duration allowed_lateness_;
  std::multimap<Timestamp, StreamElement> held_;
  std::vector<StreamElement> overflow_;
  Timestamp max_seen_;
  bool any_seen_ = false;
  int64_t dropped_ = 0;
  int64_t overflow_dropped_ = 0;
  size_t capacity_ = 0;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kShedOldest;
};

}  // namespace seraph

#endif  // SERAPH_STREAM_REORDER_BUFFER_H_
