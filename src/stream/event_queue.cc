#include "stream/event_queue.h"

namespace seraph {

std::vector<StreamElement> EventQueue::Poll(const std::string& consumer,
                                            size_t max_events) {
  size_t& offset = offsets_[consumer];
  std::vector<StreamElement> out;
  while (offset < log_.size() && out.size() < max_events) {
    out.push_back(log_.at(offset));
    ++offset;
  }
  return out;
}

Status EventQueue::Seek(const std::string& consumer, size_t offset) {
  if (offset > log_.size()) {
    return Status::OutOfRange("seek offset past end of queue");
  }
  offsets_[consumer] = offset;
  return Status::OK();
}

}  // namespace seraph
