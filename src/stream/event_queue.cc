#include "stream/event_queue.h"

#include "common/fault.h"

namespace seraph {

Result<std::vector<StreamElement>> EventQueue::Poll(
    const std::string& consumer, size_t max_events) {
  // Fires before the offset moves: a failed poll consumes nothing.
  SERAPH_FAULT_POINT("queue.poll");
  size_t& offset = offsets_[consumer];
  std::vector<StreamElement> out;
  while (offset < log_.size() && out.size() < max_events) {
    out.push_back(log_.at(offset));
    ++offset;
  }
  return out;
}

Status EventQueue::Seek(const std::string& consumer, size_t offset) {
  if (offset > log_.size()) {
    return Status::OutOfRange("seek offset past end of queue");
  }
  offsets_[consumer] = offset;
  return Status::OK();
}

std::optional<size_t> EventQueue::OffsetOf(
    const std::string& consumer) const {
  auto it = offsets_.find(consumer);
  if (it == offsets_.end()) return std::nullopt;
  return it->second;
}

}  // namespace seraph
