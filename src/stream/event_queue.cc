#include "stream/event_queue.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault.h"

namespace seraph {

namespace {
// Exponential backoff ladder for the kBlock real-clock wait path: start
// fine-grained so a trim that frees space promptly is noticed, cap well
// below the default timeout so the wait still resolves in a handful of
// sleeps.
constexpr int64_t kBlockBackoffInitialMicros = 100;
constexpr int64_t kBlockBackoffMaxMicros = 4000;
}  // namespace

Status EventQueue::Produce(PropertyGraph graph, Timestamp timestamp) {
  return Produce(std::make_shared<const PropertyGraph>(std::move(graph)),
                 timestamp);
}

Status EventQueue::Produce(std::shared_ptr<const PropertyGraph> graph,
                           Timestamp timestamp) {
  // Fires before admission: a failed produce admits nothing.
  SERAPH_FAULT_POINT("queue.produce");
  if (options_.capacity > 0) {
    SERAPH_RETURN_IF_ERROR(AdmitOne());
  }
  return log_.Append(std::move(graph), timestamp, clock_->NowMicros());
}

Status EventQueue::AdmitOne() {
  TrimCommitted();
  if (log_.size() < options_.capacity) return Status::OK();

  switch (options_.overflow_policy) {
    case OverflowPolicy::kReject:
      ++rejected_total_;
      return Status::Unavailable("event queue full (capacity " +
                                 std::to_string(options_.capacity) +
                                 ", policy reject)");

    case OverflowPolicy::kShedOldest:
      // Evict exactly one: we admit exactly one.
      ShedOldest();
      return Status::OK();

    case OverflowPolicy::kBlock: {
      // Bounded wait for a retention trim to open space. Waiting is
      // counted against the injectable clock; when the clock is pinned
      // (ManualClock in tests) each attempt accounts one virtual
      // millisecond, so the wait is deterministic and never sleeps. On
      // an advancing (real) clock each attempt sleeps with bounded
      // exponential backoff, so a blocked producer costs
      // O(timeout / max_backoff) loop iterations, not a spinning core.
      ++blocked_produces_total_;
      int64_t waited_millis = 0;
      int64_t carry_micros = 0;  // Sub-ms remainder of real elapsed time.
      int64_t backoff_micros = kBlockBackoffInitialMicros;
      int64_t last_micros = clock_->NowMicros();
      while (waited_millis < options_.block_timeout_millis) {
        ++block_iterations_total_;
        TrimCommitted();
        if (log_.size() < options_.capacity) {
          blocked_millis_total_ += waited_millis;
          return Status::OK();
        }
        int64_t now_micros = clock_->NowMicros();
        if (now_micros > last_micros) {
          carry_micros += now_micros - last_micros;
          waited_millis += carry_micros / 1000;
          carry_micros %= 1000;
          last_micros = now_micros;
          std::this_thread::sleep_for(
              std::chrono::microseconds(backoff_micros));
          backoff_micros =
              std::min(backoff_micros * 2, kBlockBackoffMaxMicros);
        } else {
          ++waited_millis;  // Virtual time: pinned or sub-µs clock.
        }
      }
      blocked_millis_total_ += waited_millis;
      ++rejected_total_;
      return Status::Unavailable(
          "event queue full (capacity " + std::to_string(options_.capacity) +
          ") after blocking " + std::to_string(waited_millis) + " ms");
    }
  }
  return Status::Internal("unknown overflow policy");
}

void EventQueue::ShedOldest() {
  if (log_.empty()) return;
  const StreamElement& victim = log_.at(0);
  if (shed_callback_) shed_callback_(victim);
  log_.DropFront(1);
  ++base_;
  ++shed_total_;
  // Consumers that had not consumed the victim lose it; their committed
  // position moves to the new base so the next poll starts at the oldest
  // retained element. The loss is exactly the shed-accounted element.
  for (auto& [name, offset] : offsets_) {
    offset = std::max(offset, base_);
  }
}

size_t EventQueue::TrimCommitted() {
  // Retention floor = min(committed consumer offsets, checkpoint
  // horizon). With no consumers attached the horizon alone governs — a
  // durable run that produces before its driver subscribes can still
  // trim checkpoint-covered entries (everything below the horizon is
  // recoverable from the checkpoint, and new consumers start at the
  // retention base anyway). With neither consumers nor a horizon
  // nothing is provably consumed, so nothing is dropped.
  if (offsets_.empty() && checkpoint_horizon_ == kNoCheckpointHorizon) {
    return 0;
  }
  size_t floor = checkpoint_horizon_;
  for (const auto& [name, offset] : offsets_) {
    floor = std::min(floor, offset);
  }
  if (floor <= base_) return 0;
  // The floor can run ahead of what has been appended (a restored
  // checkpoint horizon while the tool is still re-producing the log
  // prefix); clamp so base_ always equals the count of appended-and-
  // discarded elements and offsets keep their meaning.
  size_t n = std::min(floor - base_, log_.size());
  if (n == 0) return 0;
  log_.DropFront(n);
  base_ += n;
  trimmed_total_ += static_cast<int64_t>(n);
  return n;
}

Result<std::vector<StreamElement>> EventQueue::Poll(
    const std::string& consumer, size_t max_events) {
  // Fires before the offset moves: a failed poll consumes nothing.
  SERAPH_FAULT_POINT("queue.poll");
  auto it = offsets_.find(consumer);
  if (it == offsets_.end()) {
    // Polling must not implicitly register: a stray (e.g. misspelled)
    // consumer name would otherwise join the TrimCommitted floor forever
    // and freeze retention on a bounded queue.
    return Status::NotFound("unknown consumer '" + consumer +
                            "': Subscribe (or restore an offset) before "
                            "polling");
  }
  size_t& offset = it->second;
  // A consumer below the retention base (first poll on a trimmed queue,
  // or its unconsumed prefix was shed) resumes at the oldest retained
  // element; shed losses were accounted at eviction time.
  offset = std::max(offset, base_);
  std::vector<StreamElement> out;
  while (offset < size() && out.size() < max_events) {
    out.push_back(log_.at(offset - base_));
    ++offset;
  }
  return out;
}

Status EventQueue::Seek(const std::string& consumer, size_t offset) {
  if (offset > size()) {
    return Status::OutOfRange("seek offset past end of queue");
  }
  if (offset < base_) {
    return Status::OutOfRange(
        "seek offset " + std::to_string(offset) +
        " below retention base " + std::to_string(base_) +
        " (entry trimmed or shed)");
  }
  offsets_[consumer] = offset;
  return Status::OK();
}

Status EventQueue::RestoreOffset(const std::string& consumer,
                                 size_t offset) {
  if (offset <= size()) return Seek(consumer, offset);
  offsets_[consumer] = offset;
  return Status::OK();
}

std::optional<size_t> EventQueue::OffsetOf(
    const std::string& consumer) const {
  auto it = offsets_.find(consumer);
  if (it == offsets_.end()) return std::nullopt;
  return it->second;
}

}  // namespace seraph
