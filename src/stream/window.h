// Time-based windows (Def. 5.9), evaluation time instants (Def. 5.10), and
// active-substream/window selection (Def. 5.11).
//
// Two window semantics are provided (see DESIGN.md §2):
//  * kLookback (default): the active window at evaluation instant t is
//    [t − α, t], matching every worked example in the paper (Tables 5/6,
//    §5.4 narrative). Stream elements are selected with (t − α, t]
//    (left-open right-closed) so the element arriving exactly at the
//    evaluation instant is included.
//  * kPaperFormal: the literal Def. 5.9/5.11 reading — forward windows
//    w_i = [ω0 + iβ, ω0 + iβ + α), elements selected left-closed
//    right-open, and the active window at t is the earliest-opening
//    window containing t.
#ifndef SERAPH_STREAM_WINDOW_H_
#define SERAPH_STREAM_WINDOW_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "temporal/duration.h"
#include "temporal/interval.h"
#include "temporal/timestamp.h"

namespace seraph {

enum class WindowSemantics {
  kLookback,
  kPaperFormal,
};

// The window operator configuration (ω0, α, β) of Def. 5.9. `width` is the
// window size α (per-MATCH, from WITHIN); `slide` is β (from EVERY).
struct WindowConfig {
  Timestamp start;  // ω0, from STARTING AT.
  Duration width;   // α.
  Duration slide;   // β.
  WindowSemantics semantics = WindowSemantics::kLookback;

  // Validates α > 0, β > 0.
  Status Validate() const;

  // The i-th window of W(ω0, α, β).
  TimeInterval WindowAt(int64_t i) const;

  // Element-membership bounds for this semantics.
  IntervalBounds bounds() const {
    return semantics == WindowSemantics::kLookback
               ? IntervalBounds::kLeftOpenRightClosed
               : IntervalBounds::kLeftClosedRightOpen;
  }

  // The active window for evaluation instant t (Def. 5.11): under
  // kLookback, [t − α, t]; under kPaperFormal, the earliest-opening window
  // containing t (nullopt when t < ω0).
  std::optional<TimeInterval> ActiveWindow(Timestamp t) const;
};

// The sequence ET of evaluation time instants (Def. 5.10): ω0, ω0 + β,
// ω0 + 2β, ... Provides iteration bounded by the observed stream horizon.
class EvaluationTimes {
 public:
  EvaluationTimes(Timestamp start, Duration slide)
      : start_(start), slide_(slide) {}

  // The i-th evaluation instant.
  Timestamp at(int64_t i) const {
    return start_ + Duration::FromMillis(slide_.millis() * i);
  }

  // All evaluation instants in [start_, horizon] (inclusive).
  std::vector<Timestamp> UpTo(Timestamp horizon) const;

  // The first evaluation instant strictly after `t` (for resuming).
  Timestamp NextAfter(Timestamp t) const;

 private:
  Timestamp start_;
  Duration slide_;
};

}  // namespace seraph

#endif  // SERAPH_STREAM_WINDOW_H_
