// A simulated event queue in the role of the paper's central Kafka topic
// (Section 2 / Listing 4): producers append timestamped property-graph
// events; consumers poll them in order, each with its own offset, and can
// seek for replay. This is the transport substitution documented in
// DESIGN.md §5 — delivery order and timestamps are what the Seraph
// semantics depend on, not the wire protocol.
//
// The queue can be bounded (Options::capacity) with a producer-side
// overflow policy, and retention-trims entries that every consumer has
// committed past (and, when a CheckpointManager manages the queue, that
// the checkpoint horizon covers) — queue memory is then proportional to
// consumer lag, not stream length. Offsets are *absolute*: trimming moves
// an internal base, never renumbers, so driver backlog math and
// checkpointed offsets stay valid. See docs/INTERNALS.md, "Overload &
// backpressure".
#ifndef SERAPH_STREAM_EVENT_QUEUE_H_
#define SERAPH_STREAM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "stream/graph_stream.h"
#include "stream/overflow_policy.h"

namespace seraph {

// Poll / Seek / OffsetOf are virtual so fault-tolerance tests can model
// a flaky transport (see tests/fault_doubles.h); the queue also carries
// the "queue.poll" and "queue.produce" fault points. Poll can therefore
// fail like a real broker call — a failed poll consumes nothing (the
// offset is only advanced after the log read succeeds), so callers simply
// re-poll. A failed produce admits nothing.
//
// The queue is not internally synchronized (like the rest of the ingest
// path it runs under the single-threaded pump loop); the `block` policy
// therefore frees space by retention-trimming, not by waiting on another
// thread.
class EventQueue {
 public:
  struct Options {
    // 0 = unbounded (the default, and what the default constructor gives
    // fault doubles that subclass the queue).
    size_t capacity = 0;
    OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
    // Upper bound on a blocked produce. Counted against the injectable
    // clock; when the clock does not advance between attempts (pinned
    // ManualClock), each attempt accounts one virtual millisecond, so
    // blocking is deterministic and never hangs a test.
    int64_t block_timeout_millis = 50;
  };

  EventQueue() = default;
  explicit EventQueue(Options options) : options_(options) {}
  virtual ~EventQueue() = default;

  // Invoked with each element evicted by the shed_oldest policy, before
  // the element is dropped. Callers wire this to a dead-letter queue so
  // shed elements are observable, not silently lost.
  using ShedCallback = std::function<void(const StreamElement& element)>;
  void SetShedCallback(ShedCallback callback) {
    shed_callback_ = std::move(callback);
  }

  // Appends an event; timestamps must be non-decreasing (the queue is the
  // stream order authority). Each event is stamped with its
  // processing-time arrival (the emit-latency layer's t0 — see
  // docs/INTERNALS.md, "Latency accounting & lag"). On a bounded queue a
  // full log is resolved by the overflow policy: block waits (bounded) for
  // a retention trim to open space, reject returns kUnavailable, and
  // shed_oldest evicts the oldest retained element (counted and passed to
  // the shed callback).
  Status Produce(PropertyGraph graph, Timestamp timestamp);
  Status Produce(std::shared_ptr<const PropertyGraph> graph,
                 Timestamp timestamp);

  // Substitutes the arrival-stamp clock (tests inject a ManualClock for
  // deterministic latency histograms). Not owned; must outlive the queue.
  void SetClock(const Clock* clock) {
    clock_ = clock != nullptr ? clock : Clock::Steady();
  }

  // Creates (or resets) a consumer at the oldest retained offset (0 on a
  // never-trimmed queue).
  void Subscribe(const std::string& consumer) { offsets_[consumer] = base_; }

  // Forgets a consumer's committed offset, releasing its hold on the
  // TrimCommitted retention floor. Returns whether it was registered.
  bool RemoveConsumer(const std::string& consumer) {
    return offsets_.erase(consumer) > 0;
  }

  // Returns up to `max_events` events past the consumer's offset and
  // advances it. Consumers must be registered first (Subscribe /
  // Seek / RestoreOffset): polling under an unknown name fails with
  // kNotFound instead of implicitly registering it — a stray name would
  // otherwise pin the retention floor forever. A transient transport
  // failure (injected or simulated) advances nothing.
  virtual Result<std::vector<StreamElement>> Poll(const std::string& consumer,
                                                  size_t max_events);

  // Repositions a consumer (replay / delivery-failure recovery). Fails
  // with kOutOfRange past the end or below the retention base.
  virtual Status Seek(const std::string& consumer, size_t offset);

  // Recovery-time Seek variant: positions `consumer` at `offset` even
  // when it is ahead of everything appended so far. A bounded tool
  // re-produces the event log *after* restoring its checkpoint, so the
  // committed position legitimately leads the refilling log (appends
  // below it are trimmed on admission, never delivered). In-range
  // restores delegate to Seek and keep its below-base check.
  virtual Status RestoreOffset(const std::string& consumer, size_t offset);

  // The consumer's committed offset, or nullopt for consumers that never
  // subscribed/polled/sought. The distinction matters for recovery: a
  // checkpointed consumer at offset 0 must re-seek to 0, while an unknown
  // consumer has no committed position to resume from.
  virtual std::optional<size_t> OffsetOf(const std::string& consumer) const;

  // Whether the queue has a committed offset for `consumer`.
  bool HasConsumer(const std::string& consumer) const {
    return offsets_.contains(consumer);
  }

  // Total elements ever appended (absolute offset of the next append).
  // `size() - OffsetOf(c)` is consumer c's backlog whether or not the
  // queue has been trimmed.
  size_t size() const { return base_ + log_.size(); }
  // Elements currently retained in memory.
  size_t depth() const { return log_.size(); }
  // Absolute offset of the oldest retained element.
  size_t base_offset() const { return base_; }
  // Timestamp of the newest element ever appended (epoch when none).
  Timestamp MaxTimestamp() const { return log_.MaxTimestamp(); }
  const PropertyGraphStream& log() const { return log_; }
  const Options& options() const { return options_; }

  // Drops retained entries below min(every committed consumer offset,
  // checkpoint horizon). With no consumers registered, an installed
  // checkpoint horizon alone permits trimming (produce-before-attach in
  // a durable run); with no consumers and no horizon, nothing is
  // dropped. Returns the number trimmed. Runs automatically on produce
  // when the queue is bounded; harmless to call at any time.
  size_t TrimCommitted();

  // Sentinel for "no checkpoint horizon installed".
  static constexpr size_t kNoCheckpointHorizon = static_cast<size_t>(-1);

  // Retention floor installed by a CheckpointManager: entries at offsets
  // >= the horizon are not yet covered by a durable checkpoint, so
  // TrimCommitted keeps them even once consumed (recovery re-seeks to the
  // last checkpointed offsets). Default: no durability constraint.
  void SetCheckpointHorizon(size_t offset) { checkpoint_horizon_ = offset; }
  size_t checkpoint_horizon() const { return checkpoint_horizon_; }

  // Overflow accounting (exact; see the chaos tests' partition invariant).
  int64_t shed_total() const { return shed_total_; }
  int64_t rejected_total() const { return rejected_total_; }
  int64_t trimmed_total() const { return trimmed_total_; }
  int64_t blocked_produces_total() const { return blocked_produces_total_; }
  int64_t blocked_millis_total() const { return blocked_millis_total_; }
  // Loop iterations spent inside blocked produces — the busy-spin guard:
  // on a real clock each iteration sleeps with bounded backoff, so this
  // stays O(timeout / max_backoff) per blocked produce; on a pinned
  // virtual clock it is exactly block_timeout_millis per timed-out wait.
  int64_t block_iterations_total() const { return block_iterations_total_; }

 private:
  // Enforces the capacity bound for one incoming element.
  Status AdmitOne();
  // Evicts the oldest retained element (shed_oldest policy).
  void ShedOldest();

  PropertyGraphStream log_;
  std::map<std::string, size_t> offsets_;
  const Clock* clock_ = Clock::Steady();
  Options options_;
  ShedCallback shed_callback_;
  // Absolute offset of log_.at(0): log_ stores offsets [base_, size()).
  size_t base_ = 0;
  size_t checkpoint_horizon_ = kNoCheckpointHorizon;
  int64_t shed_total_ = 0;
  int64_t rejected_total_ = 0;
  int64_t trimmed_total_ = 0;
  int64_t blocked_produces_total_ = 0;
  int64_t blocked_millis_total_ = 0;
  int64_t block_iterations_total_ = 0;
};

}  // namespace seraph

#endif  // SERAPH_STREAM_EVENT_QUEUE_H_
