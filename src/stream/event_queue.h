// A simulated event queue in the role of the paper's central Kafka topic
// (Section 2 / Listing 4): producers append timestamped property-graph
// events; consumers poll them in order, each with its own offset, and can
// seek for replay. This is the transport substitution documented in
// DESIGN.md §5 — delivery order and timestamps are what the Seraph
// semantics depend on, not the wire protocol.
#ifndef SERAPH_STREAM_EVENT_QUEUE_H_
#define SERAPH_STREAM_EVENT_QUEUE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "stream/graph_stream.h"

namespace seraph {

// Poll / Seek / OffsetOf are virtual so fault-tolerance tests can model
// a flaky transport (see tests/fault_doubles.h); the queue also carries
// the "queue.poll" fault point. Poll can therefore fail like a real
// broker call — a failed poll consumes nothing (the offset is only
// advanced after the log read succeeds), so callers simply re-poll.
class EventQueue {
 public:
  EventQueue() = default;
  virtual ~EventQueue() = default;

  // Appends an event; timestamps must be non-decreasing (the queue is the
  // stream order authority). Each event is stamped with its
  // processing-time arrival (the emit-latency layer's t0 — see
  // docs/INTERNALS.md, "Latency accounting & lag").
  Status Produce(PropertyGraph graph, Timestamp timestamp) {
    return log_.Append(std::move(graph), timestamp, clock_->NowMicros());
  }
  Status Produce(std::shared_ptr<const PropertyGraph> graph,
                 Timestamp timestamp) {
    return log_.Append(std::move(graph), timestamp, clock_->NowMicros());
  }

  // Substitutes the arrival-stamp clock (tests inject a ManualClock for
  // deterministic latency histograms). Not owned; must outlive the queue.
  void SetClock(const Clock* clock) {
    clock_ = clock != nullptr ? clock : Clock::Steady();
  }

  // Creates (or resets) a consumer at offset 0.
  void Subscribe(const std::string& consumer) { offsets_[consumer] = 0; }

  // Returns up to `max_events` events past the consumer's offset and
  // advances it. Unknown consumers start at offset 0. A transient
  // transport failure (injected or simulated) advances nothing.
  virtual Result<std::vector<StreamElement>> Poll(const std::string& consumer,
                                                  size_t max_events);

  // Repositions a consumer (replay / delivery-failure recovery).
  virtual Status Seek(const std::string& consumer, size_t offset);

  // The consumer's committed offset, or nullopt for consumers that never
  // subscribed/polled/sought. The distinction matters for recovery: a
  // checkpointed consumer at offset 0 must re-seek to 0, while an unknown
  // consumer has no committed position to resume from.
  virtual std::optional<size_t> OffsetOf(const std::string& consumer) const;

  // Whether the queue has a committed offset for `consumer`.
  bool HasConsumer(const std::string& consumer) const {
    return offsets_.contains(consumer);
  }

  size_t size() const { return log_.size(); }
  const PropertyGraphStream& log() const { return log_; }

 private:
  PropertyGraphStream log_;
  std::map<std::string, size_t> offsets_;
  const Clock* clock_ = Clock::Steady();
};

}  // namespace seraph

#endif  // SERAPH_STREAM_EVENT_QUEUE_H_
