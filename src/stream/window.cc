#include "stream/window.h"

namespace seraph {

Status WindowConfig::Validate() const {
  if (width.millis() <= 0) {
    return Status::InvalidArgument("window width (WITHIN) must be positive");
  }
  if (slide.millis() <= 0) {
    return Status::InvalidArgument("slide (EVERY) must be positive");
  }
  return Status::OK();
}

TimeInterval WindowConfig::WindowAt(int64_t i) const {
  if (semantics == WindowSemantics::kLookback) {
    // Windows end at evaluation instants: w_i = [ω0 + iβ − α, ω0 + iβ].
    Timestamp end = start + Duration::FromMillis(slide.millis() * i);
    return TimeInterval{end - width, end};
  }
  Timestamp open = start + Duration::FromMillis(slide.millis() * i);
  return TimeInterval{open, open + width};
}

std::optional<TimeInterval> WindowConfig::ActiveWindow(Timestamp t) const {
  if (t < start) return std::nullopt;
  int64_t since = t.millis() - start.millis();
  if (semantics == WindowSemantics::kLookback) {
    return TimeInterval{t - width, t};
  }
  // Earliest-opening window containing t (Def. 5.11, Fig. 4): the
  // smallest i with iβ + α > since is i = floor((since − α) / β) + 1
  // (or 0 while since < α); it contains since unless its opening lies
  // beyond since — the gap case when β > α.
  int64_t beta = slide.millis();
  int64_t alpha = width.millis();
  int64_t i = since >= alpha ? (since - alpha) / beta + 1 : 0;
  if (i * beta > since) return std::nullopt;
  return WindowAt(i);
}

std::vector<Timestamp> EvaluationTimes::UpTo(Timestamp horizon) const {
  std::vector<Timestamp> out;
  for (int64_t i = 0;; ++i) {
    Timestamp t = at(i);
    if (t > horizon) break;
    out.push_back(t);
  }
  return out;
}

Timestamp EvaluationTimes::NextAfter(Timestamp t) const {
  if (t < start_) return start_;
  int64_t since = t.millis() - start_.millis();
  int64_t i = since / slide_.millis() + 1;
  return at(i);
}

}  // namespace seraph
