// Snapshot graphs (Def. 5.5): the union of all property graphs in a
// window's substream, applied in timestamp order with ingestion-merge
// semantics (Def. 5.4 / Listing 4 — label sets union, later property
// values win).
//
// Two construction strategies are provided:
//  * `BuildSnapshot` — rebuild from scratch for one window (the baseline
//    the §3.3 polling workaround is stuck with);
//  * `IncrementalSnapshotter` — maintains the snapshot across sliding
//    windows by applying only the delta (added / evicted stream elements),
//    one of the §6 "efficient window maintenance" optimizations. The two
//    are observationally equal (property-tested).
#ifndef SERAPH_STREAM_SNAPSHOT_H_
#define SERAPH_STREAM_SNAPSHOT_H_

#include <deque>
#include <map>
#include <memory>

#include "common/result.h"
#include "graph/property_graph.h"
#include "stream/graph_stream.h"
#include "temporal/interval.h"

namespace seraph {

// Cumulative window-maintenance counters of an IncrementalSnapshotter —
// the raw material for the engine's per-query maintenance metrics and for
// the bench ablations (how much delta work a slide actually did).
struct SnapshotterStats {
  int64_t advances = 0;            // Advance() calls that succeeded.
  int64_t elements_added = 0;      // Stream elements entering the window.
  int64_t elements_evicted = 0;    // Stream elements leaving the window.
  int64_t entities_recomputed = 0; // Dirty nodes+rels re-merged by Rebuild.
};

// Builds the snapshot graph G_τ for `interval` by merging the substream's
// graphs in timestamp order.
Result<PropertyGraph> BuildSnapshot(const PropertyGraphStream& stream,
                                    const TimeInterval& interval,
                                    IntervalBounds bounds);

// Maintains a window's snapshot graph incrementally as the window slides
// forward over a stream.
//
// Each graph entity keeps its ordered list of per-element contributions;
// sliding the window appends new contributions and drops expired ones, and
// only entities whose contribution set changed are recomputed.
class IncrementalSnapshotter {
 public:
  // `stream` must outlive the snapshotter and is observed in place (new
  // appends become visible to later Advance calls).
  IncrementalSnapshotter(const PropertyGraphStream* stream,
                         IntervalBounds bounds)
      : stream_(stream), bounds_(bounds) {}

  // Installs a static background graph (§8 future work (iii)): its
  // entities are present in every snapshot, underneath the stream's
  // contributions (stream property values win). Must be called before the
  // first Advance.
  Status SetBase(std::shared_ptr<const PropertyGraph> base);

  // Slides the maintained window to `interval` (must not move backwards)
  // and updates the snapshot graph with the element delta.
  Status Advance(const TimeInterval& interval);

  const PropertyGraph& graph() const { return snapshot_; }

  // Introspection for tests/benches: currently-covered element index range.
  size_t window_begin() const { return lo_; }
  size_t window_end() const { return hi_; }

  // Cumulative maintenance counters (monotone; callers diff snapshots).
  const SnapshotterStats& stats() const { return stats_; }

  // Entities whose effective payload was recomputed (added, changed, or
  // removed) by the most recent Advance/SetBase: sorted ascending,
  // deduplicated, and a conservative superset of the entities that
  // actually differ. This is the churn feed for delta matching — any
  // match touching one of these may be stale, and any new match must
  // bind at least one of them.
  const std::vector<NodeId>& last_dirty_nodes() const {
    return last_dirty_nodes_;
  }
  const std::vector<RelId>& last_dirty_rels() const {
    return last_dirty_rels_;
  }

 private:
  struct NodeContribution {
    Timestamp timestamp;
    // Keeps the owning element graph alive.
    std::shared_ptr<const PropertyGraph> owner;
    const NodeData* data;
  };
  struct RelContribution {
    Timestamp timestamp;
    std::shared_ptr<const PropertyGraph> owner;
    const RelData* data;
  };

  // Applies one element's contributions (append at window tail).
  void AddElement(const StreamElement& element);
  // Drops one element's contributions (evict at window head). The element
  // must be the oldest contributor of every entity it touched.
  void EvictElement(const StreamElement& element);

  // Recomputes the effective payloads of entities marked dirty and patches
  // the snapshot graph.
  Status Rebuild();

  const PropertyGraphStream* stream_;
  IntervalBounds bounds_;
  PropertyGraph snapshot_;

  std::map<NodeId, std::deque<NodeContribution>> node_contribs_;
  std::map<RelId, std::deque<RelContribution>> rel_contribs_;
  std::vector<NodeId> dirty_nodes_;
  std::vector<RelId> dirty_rels_;
  std::vector<NodeId> last_dirty_nodes_;
  std::vector<RelId> last_dirty_rels_;

  // Current half-open element index range [lo_, hi_) covered by the window.
  size_t lo_ = 0;
  size_t hi_ = 0;
  bool started_ = false;
  TimeInterval last_interval_{};
  SnapshotterStats stats_;
};

}  // namespace seraph

#endif  // SERAPH_STREAM_SNAPSHOT_H_
