#include "stream/reorder_buffer.h"

namespace seraph {

bool ReorderBuffer::Offer(std::shared_ptr<const PropertyGraph> graph,
                          Timestamp timestamp) {
  return Offer(StreamElement{std::move(graph), timestamp, 0});
}

bool ReorderBuffer::Offer(StreamElement element) {
  if (any_seen_ && element.timestamp < watermark()) {
    ++dropped_;
    return false;
  }
  if (!any_seen_ || element.timestamp > max_seen_) {
    max_seen_ = element.timestamp;
    any_seen_ = true;
  }
  if (capacity_ > 0 && held_.size() >= capacity_) {
    if (overflow_policy_ == OverflowPolicy::kShedOldest) {
      // Evict the oldest held element into the overflow list; the caller
      // drains it via TakeOverflow and dead-letters it.
      auto oldest = held_.begin();
      overflow_.push_back(std::move(oldest->second));
      held_.erase(oldest);
      ++overflow_dropped_;
    } else {
      // reject — and block, which has no producer to park at this layer.
      // Note max_seen_ was already advanced: a refused element still
      // moves the watermark, exactly like a late-dropped one.
      ++overflow_dropped_;
      return false;
    }
  }
  Timestamp timestamp = element.timestamp;
  held_.emplace(timestamp, std::move(element));
  return true;
}

std::vector<StreamElement> ReorderBuffer::TakeOverflow() {
  std::vector<StreamElement> out;
  out.swap(overflow_);
  return out;
}

Timestamp ReorderBuffer::watermark() const {
  if (!any_seen_) return Timestamp::FromMillis(INT64_MIN / 2);
  return max_seen_ - allowed_lateness_;
}

std::vector<StreamElement> ReorderBuffer::Release() {
  std::vector<StreamElement> out;
  Timestamp mark = watermark();
  auto it = held_.begin();
  while (it != held_.end() && it->first <= mark) {
    out.push_back(std::move(it->second));
    it = held_.erase(it);
  }
  return out;
}

std::vector<StreamElement> ReorderBuffer::Flush() {
  std::vector<StreamElement> out;
  for (auto& [ts, element] : held_) {
    out.push_back(std::move(element));
  }
  held_.clear();
  return out;
}

}  // namespace seraph
