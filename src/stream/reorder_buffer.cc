#include "stream/reorder_buffer.h"

namespace seraph {

bool ReorderBuffer::Offer(std::shared_ptr<const PropertyGraph> graph,
                          Timestamp timestamp) {
  if (any_seen_ && timestamp < watermark()) {
    ++dropped_;
    return false;
  }
  if (!any_seen_ || timestamp > max_seen_) {
    max_seen_ = timestamp;
    any_seen_ = true;
  }
  held_.emplace(timestamp, std::move(graph));
  return true;
}

Timestamp ReorderBuffer::watermark() const {
  if (!any_seen_) return Timestamp::FromMillis(INT64_MIN / 2);
  return max_seen_ - allowed_lateness_;
}

std::vector<StreamElement> ReorderBuffer::Release() {
  std::vector<StreamElement> out;
  Timestamp mark = watermark();
  auto it = held_.begin();
  while (it != held_.end() && it->first <= mark) {
    out.push_back(StreamElement{std::move(it->second), it->first});
    it = held_.erase(it);
  }
  return out;
}

std::vector<StreamElement> ReorderBuffer::Flush() {
  std::vector<StreamElement> out;
  for (auto& [ts, graph] : held_) {
    out.push_back(StreamElement{std::move(graph), ts});
  }
  held_.clear();
  return out;
}

}  // namespace seraph
