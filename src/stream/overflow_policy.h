// Producer-side overflow policies for bounded stream containers.
//
// Shared by `EventQueue` (bounded ingest log) and `ReorderBuffer`
// (bounded pending set). docs/INTERNALS.md "Overload & backpressure"
// documents the policy matrix.
#ifndef SERAPH_STREAM_OVERFLOW_POLICY_H_
#define SERAPH_STREAM_OVERFLOW_POLICY_H_

#include <string>

namespace seraph {

enum class OverflowPolicy {
  // Producer waits (bounded, against the injectable clock) for space to
  // open up; expires to kUnavailable. In containers with no one to wait
  // for (ReorderBuffer), block degrades to reject.
  kBlock,
  // Producer gets kUnavailable immediately; retry via RetryPolicy.
  kReject,
  // Oldest unconsumed element is evicted (counted + dead-lettered) to
  // admit the new one.
  kShedOldest,
};

inline const char* OverflowPolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kReject:
      return "reject";
    case OverflowPolicy::kShedOldest:
      return "shed_oldest";
  }
  return "unknown";
}

// Parses "block" / "reject" / "shed_oldest"; returns false on anything else.
inline bool ParseOverflowPolicy(const std::string& text, OverflowPolicy* out) {
  if (text == "block") {
    *out = OverflowPolicy::kBlock;
    return true;
  }
  if (text == "reject") {
    *out = OverflowPolicy::kReject;
    return true;
  }
  if (text == "shed_oldest") {
    *out = OverflowPolicy::kShedOldest;
    return true;
  }
  return false;
}

}  // namespace seraph

#endif  // SERAPH_STREAM_OVERFLOW_POLICY_H_
