#include "stream/graph_stream.h"

#include <algorithm>

namespace seraph {

Status PropertyGraphStream::Append(PropertyGraph graph, Timestamp timestamp,
                                   int64_t arrival_micros) {
  return Append(std::make_shared<const PropertyGraph>(std::move(graph)),
                timestamp, arrival_micros);
}

Status PropertyGraphStream::Append(std::shared_ptr<const PropertyGraph> graph,
                                   Timestamp timestamp,
                                   int64_t arrival_micros) {
  if (has_elements_ && timestamp < last_timestamp_) {
    return Status::OutOfRange(
        "stream timestamps must be non-decreasing: got " +
        timestamp.ToString() + " after " + last_timestamp_.ToString());
  }
  elements_.push_back(StreamElement{std::move(graph), timestamp,
                                    arrival_micros});
  last_timestamp_ = timestamp;
  has_elements_ = true;
  return Status::OK();
}

void PropertyGraphStream::DropFront(size_t n) {
  if (n == 0) return;
  if (n >= elements_.size()) {
    elements_.clear();
    return;
  }
  elements_.erase(elements_.begin(),
                  elements_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::vector<StreamElement> PropertyGraphStream::Substream(
    const TimeInterval& interval, IntervalBounds bounds) const {
  std::vector<StreamElement> out;
  for (size_t i = LowerBound(interval.start); i < elements_.size(); ++i) {
    const StreamElement& e = elements_[i];
    if (e.timestamp > interval.end) break;
    if (interval.Contains(e.timestamp, bounds)) out.push_back(e);
  }
  return out;
}

size_t PropertyGraphStream::LowerBound(Timestamp t) const {
  auto it = std::lower_bound(
      elements_.begin(), elements_.end(), t,
      [](const StreamElement& e, Timestamp v) { return e.timestamp < v; });
  return static_cast<size_t>(it - elements_.begin());
}

}  // namespace seraph
