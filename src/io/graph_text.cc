#include "io/graph_text.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace seraph {
namespace io {

namespace {

const char kEscapable[] = "%|=,\n\r";

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (std::string_view(kEscapable).find(c) != std::string_view::npos) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out += text[i];
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status::InvalidArgument("truncated escape in '" + text + "'");
    }
    int hi = std::isdigit(static_cast<unsigned char>(text[i + 1]))
                 ? text[i + 1] - '0'
                 : std::toupper(static_cast<unsigned char>(text[i + 1])) -
                       'A' + 10;
    int lo = std::isdigit(static_cast<unsigned char>(text[i + 2]))
                 ? text[i + 2] - '0'
                 : std::toupper(static_cast<unsigned char>(text[i + 2])) -
                       'A' + 10;
    if (hi < 0 || hi > 15 || lo < 0 || lo > 15) {
      return Status::InvalidArgument("bad escape in '" + text + "'");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

// Splits a line on unescaped '|'.
std::vector<std::string> SplitFields(const std::string& line) {
  return StrSplit(line, '|');
}

Result<std::pair<std::string, Value>> DecodeProperty(
    const std::string& field) {
  size_t eq = field.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("malformed property field '" + field +
                                   "'");
  }
  SERAPH_ASSIGN_OR_RETURN(std::string key, Unescape(field.substr(0, eq)));
  SERAPH_ASSIGN_OR_RETURN(Value value, DecodeValue(field.substr(eq + 1)));
  return std::make_pair(std::move(key), std::move(value));
}

}  // namespace

std::string EncodeValue(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return value.AsBool() ? "b:true" : "b:false";
    case ValueKind::kInt:
      return "i:" + std::to_string(value.AsInt());
    case ValueKind::kFloat: {
      std::ostringstream os;
      os.precision(17);
      os << value.AsFloat();
      return "f:" + os.str();
    }
    case ValueKind::kString:
      return "s:" + Escape(value.AsString());
    case ValueKind::kDateTime:
      return "d:" + value.AsDateTime().ToString();
    case ValueKind::kDuration:
      return "p:" + value.AsDuration().ToString();
    default:
      // Container / entity values do not occur as stored properties.
      return "s:" + Escape(value.ToString());
  }
}

Result<Value> DecodeValue(const std::string& text) {
  if (text == "null") return Value::Null();
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("malformed value '" + text + "'");
  }
  std::string body = text.substr(2);
  switch (text[0]) {
    case 'i': {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(body.c_str(), &end, 10);
      if (end != body.c_str() + body.size() || body.empty()) {
        return Status::InvalidArgument("bad integer '" + body + "'");
      }
      return Value::Int(v);
    }
    case 'f': {
      char* end = nullptr;
      double v = std::strtod(body.c_str(), &end);
      if (end != body.c_str() + body.size() || body.empty()) {
        return Status::InvalidArgument("bad float '" + body + "'");
      }
      return Value::Float(v);
    }
    case 's': {
      SERAPH_ASSIGN_OR_RETURN(std::string s, Unescape(body));
      return Value::String(std::move(s));
    }
    case 'b':
      if (body == "true") return Value::Bool(true);
      if (body == "false") return Value::Bool(false);
      return Status::InvalidArgument("bad boolean '" + body + "'");
    case 'd': {
      SERAPH_ASSIGN_OR_RETURN(Timestamp t, Timestamp::Parse(body));
      return Value::DateTime(t);
    }
    case 'p': {
      SERAPH_ASSIGN_OR_RETURN(Duration d, Duration::Parse(body));
      return Value::Dur(d);
    }
    default:
      return Status::InvalidArgument("unknown value tag in '" + text + "'");
  }
}

std::string EncodeGraph(const PropertyGraph& graph) {
  std::string out;
  for (NodeId id : graph.NodeIds()) {
    const NodeData* node = graph.node(id);
    out += "node|" + std::to_string(id.value) + "|";
    bool first = true;
    for (const std::string& label : node->labels) {
      if (!first) out += ',';
      first = false;
      out += Escape(label);
    }
    for (const auto& [key, value] : node->properties) {
      out += "|" + Escape(key) + "=" + EncodeValue(value);
    }
    out += "\n";
  }
  for (RelId id : graph.RelationshipIds()) {
    const RelData* rel = graph.relationship(id);
    out += "rel|" + std::to_string(id.value) + "|" + Escape(rel->type) + "|" +
           std::to_string(rel->src.value) + "|" +
           std::to_string(rel->trg.value);
    for (const auto& [key, value] : rel->properties) {
      out += "|" + Escape(key) + "=" + EncodeValue(value);
    }
    out += "\n";
  }
  return out;
}

namespace {

Status ApplyGraphLine(const std::string& line, PropertyGraph* graph) {
  std::vector<std::string> fields = SplitFields(line);
  if (fields.empty()) return Status::InvalidArgument("empty line");
  if (fields[0] == "node") {
    if (fields.size() < 3) {
      return Status::InvalidArgument("node line needs id and labels: '" +
                                     line + "'");
    }
    NodeData data;
    for (const std::string& label : StrSplit(fields[2], ',')) {
      if (label.empty()) continue;
      SERAPH_ASSIGN_OR_RETURN(std::string unescaped, Unescape(label));
      data.labels.insert(std::move(unescaped));
    }
    for (size_t i = 3; i < fields.size(); ++i) {
      SERAPH_ASSIGN_OR_RETURN(auto kv, DecodeProperty(fields[i]));
      data.properties[kv.first] = std::move(kv.second);
    }
    graph->MergeNode(NodeId{std::stoll(fields[1])}, data);
    return Status::OK();
  }
  if (fields[0] == "rel") {
    if (fields.size() < 5) {
      return Status::InvalidArgument(
          "rel line needs id, type, src, trg: '" + line + "'");
    }
    RelData data;
    SERAPH_ASSIGN_OR_RETURN(data.type, Unescape(fields[2]));
    data.src = NodeId{std::stoll(fields[3])};
    data.trg = NodeId{std::stoll(fields[4])};
    for (size_t i = 5; i < fields.size(); ++i) {
      SERAPH_ASSIGN_OR_RETURN(auto kv, DecodeProperty(fields[i]));
      data.properties[kv.first] = std::move(kv.second);
    }
    return graph->MergeRelationship(RelId{std::stoll(fields[1])}, data);
  }
  return Status::InvalidArgument("unknown line kind '" + fields[0] + "'");
}

}  // namespace

Result<PropertyGraph> DecodeGraph(const std::string& text) {
  PropertyGraph graph;
  for (const std::string& line : StrSplit(text, '\n')) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    SERAPH_RETURN_IF_ERROR(ApplyGraphLine(std::string(trimmed), &graph));
  }
  return graph;
}

void WriteEventLog(const std::vector<StreamElement>& events,
                   std::ostream* os) {
  for (const StreamElement& event : events) {
    *os << "@ " << event.timestamp.ToString() << "\n"
        << EncodeGraph(*event.graph) << "\n";
  }
}

Result<std::vector<StreamElement>> ReadEventLog(std::istream* is) {
  std::vector<StreamElement> events;
  PropertyGraph current;
  bool in_event = false;
  Timestamp current_ts;
  auto flush = [&]() {
    if (in_event) {
      events.push_back(StreamElement{
          std::make_shared<const PropertyGraph>(std::move(current)),
          current_ts});
      current = PropertyGraph();
    }
  };
  std::string line;
  while (std::getline(*is, line)) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed[0] == '@') {
      flush();
      std::string_view ts_text = StripWhitespace(trimmed.substr(1));
      SERAPH_ASSIGN_OR_RETURN(current_ts, Timestamp::Parse(ts_text));
      in_event = true;
      continue;
    }
    if (!in_event) {
      return Status::InvalidArgument(
          "graph line before any '@ <timestamp>' header");
    }
    SERAPH_RETURN_IF_ERROR(ApplyGraphLine(std::string(trimmed), &current));
  }
  flush();
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].timestamp < events[i - 1].timestamp) {
      return Status::OutOfRange("event log timestamps must be ordered");
    }
  }
  return events;
}

}  // namespace io
}  // namespace seraph
