// A line-based text serialization for property graphs and graph-event
// logs — the on-disk interchange format used by the seraph_run CLI and
// usable for replaying captured streams.
//
// Graph lines (one entity per line, '|'-separated fields):
//   node|<id>|<label,label,...>|<key>=<value>|...
//   rel|<id>|<type>|<src>|<trg>|<key>=<value>|...
//
// Values are typed by prefix: i:42, f:1.5, s:text, b:true/false,
// d:<ISO datetime>, p:<ISO duration>, null. Strings percent-escape
// '%', '|', '=', ',' and newlines.
//
// Event logs are sequences of events:
//   @ <ISO datetime>
//   <graph lines...>
// with '#' comment lines and blank lines ignored.
#ifndef SERAPH_IO_GRAPH_TEXT_H_
#define SERAPH_IO_GRAPH_TEXT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"
#include "stream/graph_stream.h"

namespace seraph {
namespace io {

// ---- Values ----

// "i:42", "s:hello", ... (see header comment).
std::string EncodeValue(const Value& value);
Result<Value> DecodeValue(const std::string& text);

// ---- Graphs ----

// Serializes nodes then relationships, sorted by id (deterministic).
std::string EncodeGraph(const PropertyGraph& graph);
Result<PropertyGraph> DecodeGraph(const std::string& text);

// ---- Event logs ----

// Serializes a stream of timestamped graphs.
void WriteEventLog(const std::vector<StreamElement>& events,
                   std::ostream* os);

// Parses an event log; events must be timestamp-ordered.
Result<std::vector<StreamElement>> ReadEventLog(std::istream* is);

}  // namespace io
}  // namespace seraph

#endif  // SERAPH_IO_GRAPH_TEXT_H_
