// JSON (RFC 8259) serialization for values, records, tables, and
// evaluation results — the machine-readable counterpart of the CSV sink.
//
// Mapping: null/bool/int/float → native JSON; strings escaped; lists →
// arrays; maps → objects; datetime → ISO-8601 string; duration →
// ISO-8601 duration string; node/relationship references → {"$node": id}
// / {"$rel": id}; paths → {"$path": {"nodes": [...], "rels": [...]}}.
// Non-finite floats serialize as null (JSON has no NaN/Inf).
#ifndef SERAPH_IO_JSON_H_
#define SERAPH_IO_JSON_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "table/record.h"
#include "table/table.h"
#include "table/time_table.h"
#include "value/value.h"

namespace seraph {
namespace io {

// Appends the JSON encoding of `value` to `*out`.
void AppendJsonValue(const Value& value, std::string* out);
std::string ToJson(const Value& value);

// Parses one JSON document into the Value domain, inverting the mapping
// above where it is invertible: objects shaped {"$node": id} /
// {"$rel": id} / {"$path": {...}} decode back to entity references;
// numbers containing '.', 'e', or 'E' decode as floats, bare integers as
// ints. The lossy directions stay lossy by design — datetimes and
// durations were exported as ISO strings and re-import as strings (their
// re-export is byte-identical, which is the dead-letter round-trip
// contract). Trailing non-whitespace after the document is an error.
Result<Value> ParseJson(std::string_view text);

// {"a": 1, "b": "x"} — fields in name order.
std::string ToJson(const Record& record);

// Array of row objects, in row order.
std::string ToJson(const Table& table);

// {"win_start": "...", "win_end": "...", "rows": [...]}.
std::string ToJson(const TimeAnnotatedTable& table);

}  // namespace io
}  // namespace seraph

#endif  // SERAPH_IO_JSON_H_
