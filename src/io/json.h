// JSON (RFC 8259) serialization for values, records, tables, and
// evaluation results — the machine-readable counterpart of the CSV sink.
//
// Mapping: null/bool/int/float → native JSON; strings escaped; lists →
// arrays; maps → objects; datetime → ISO-8601 string; duration →
// ISO-8601 duration string; node/relationship references → {"$node": id}
// / {"$rel": id}; paths → {"$path": {"nodes": [...], "rels": [...]}}.
// Non-finite floats serialize as null (JSON has no NaN/Inf).
#ifndef SERAPH_IO_JSON_H_
#define SERAPH_IO_JSON_H_

#include <string>

#include "table/record.h"
#include "table/table.h"
#include "table/time_table.h"
#include "value/value.h"

namespace seraph {
namespace io {

// Appends the JSON encoding of `value` to `*out`.
void AppendJsonValue(const Value& value, std::string* out);
std::string ToJson(const Value& value);

// {"a": 1, "b": "x"} — fields in name order.
std::string ToJson(const Record& record);

// Array of row objects, in row order.
std::string ToJson(const Table& table);

// {"win_start": "...", "win_end": "...", "rows": [...]}.
std::string ToJson(const TimeAnnotatedTable& table);

}  // namespace io
}  // namespace seraph

#endif  // SERAPH_IO_JSON_H_
