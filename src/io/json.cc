#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace seraph {
namespace io {

namespace {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void AppendJsonValue(const Value& value, std::string* out) {
  switch (value.kind()) {
    case ValueKind::kNull:
      *out += "null";
      return;
    case ValueKind::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case ValueKind::kInt:
      *out += std::to_string(value.AsInt());
      return;
    case ValueKind::kFloat: {
      double d = value.AsFloat();
      if (!std::isfinite(d)) {
        *out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      return;
    }
    case ValueKind::kString:
      AppendJsonString(value.AsString(), out);
      return;
    case ValueKind::kList: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : value.AsList()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonValue(item, out);
      }
      out->push_back(']');
      return;
    }
    case ValueKind::kMap: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, item] : value.AsMap()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(key, out);
        out->push_back(':');
        AppendJsonValue(item, out);
      }
      out->push_back('}');
      return;
    }
    case ValueKind::kDateTime:
      AppendJsonString(value.AsDateTime().ToString(), out);
      return;
    case ValueKind::kDuration:
      AppendJsonString(value.AsDuration().ToString(), out);
      return;
    case ValueKind::kNode:
      *out += "{\"$node\":" + std::to_string(value.AsNode().value) + "}";
      return;
    case ValueKind::kRelationship:
      *out += "{\"$rel\":" + std::to_string(value.AsRelationship().value) +
              "}";
      return;
    case ValueKind::kPath: {
      const PathValue& path = value.AsPath();
      *out += "{\"$path\":{\"nodes\":[";
      for (size_t i = 0; i < path.nodes.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += std::to_string(path.nodes[i].value);
      }
      *out += "],\"rels\":[";
      for (size_t i = 0; i < path.rels.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += std::to_string(path.rels[i].value);
      }
      *out += "]}}";
      return;
    }
  }
}

std::string ToJson(const Value& value) {
  std::string out;
  AppendJsonValue(value, &out);
  return out;
}

std::string ToJson(const Record& record) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : record) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendJsonValue(value, &out);
  }
  out.push_back('}');
  return out;
}

std::string ToJson(const Table& table) {
  std::string out = "[";
  bool first = true;
  for (const Record& row : table.rows()) {
    if (!first) out.push_back(',');
    first = false;
    out += ToJson(row);
  }
  out.push_back(']');
  return out;
}

std::string ToJson(const TimeAnnotatedTable& table) {
  std::string out = "{\"win_start\":";
  AppendJsonString(table.window.start.ToString(), &out);
  out += ",\"win_end\":";
  AppendJsonString(table.window.end.ToString(), &out);
  out += ",\"rows\":" + ToJson(table.table) + "}";
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

// Recursive-descent parser over the RFC 8259 grammar, producing Values.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SERAPH_ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ == text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        return Value::Null();
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        return Value::Bool(true);
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        return Value::Bool(false);
      case '"': {
        SERAPH_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value::String(std::move(s));
      }
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  Result<std::string> ParseString() {
    if (text_[pos_] != '"') return Error("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        switch (text_[pos_]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            SERAPH_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Combine a surrogate pair when one follows.
            if (cp >= 0xD800 && cp <= 0xDBFF &&
                text_.substr(pos_ + 1, 2) == "\\u") {
              size_t saved = pos_;
              pos_ += 2;
              SERAPH_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                pos_ = saved;  // Lone surrogate: encode as-is.
              }
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Error("bad escape character");
        }
        ++pos_;
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
  }

  // Parses the 4 hex digits after "\u"; leaves pos_ on the last digit.
  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
    uint32_t cp = 0;
    for (int i = 1; i <= 4; ++i) {
      char h = text_[pos_ + i];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<uint32_t>(h - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    pos_ += 4;
    return cp;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected value");
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (!is_float) {
      long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value::Int(static_cast<int64_t>(i));
      }
      // Out-of-range integers degrade to float below.
    }
    errno = 0;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Error("malformed number");
    }
    return Value::Float(d);
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value::List items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value::MakeList(std::move(items));
    }
    while (true) {
      SERAPH_ASSIGN_OR_RETURN(Value item, ParseValue());
      items.push_back(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Value::MakeList(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value::Map entries;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return DecodeObject(std::move(entries));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SERAPH_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SERAPH_ASSIGN_OR_RETURN(Value value, ParseValue());
      entries.insert_or_assign(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return DecodeObject(std::move(entries));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  // Inverts the entity-reference encodings; any other object stays a map.
  static Result<Value> DecodeObject(Value::Map entries) {
    if (entries.size() == 1) {
      const auto& [key, value] = *entries.begin();
      if (key == "$node" && value.is_int()) {
        return Value::Node(NodeId{value.AsInt()});
      }
      if (key == "$rel" && value.is_int()) {
        return Value::Relationship(RelId{value.AsInt()});
      }
      if (key == "$path" && value.is_map()) {
        const Value::Map& body = value.AsMap();
        auto nodes_it = body.find("nodes");
        auto rels_it = body.find("rels");
        if (nodes_it != body.end() && rels_it != body.end() &&
            nodes_it->second.is_list() && rels_it->second.is_list()) {
          PathValue path;
          for (const Value& node : nodes_it->second.AsList()) {
            if (!node.is_int()) {
              return Status::ParseError("json: $path node id is not an int");
            }
            path.nodes.push_back(NodeId{node.AsInt()});
          }
          for (const Value& rel : rels_it->second.AsList()) {
            if (!rel.is_int()) {
              return Status::ParseError("json: $path rel id is not an int");
            }
            path.rels.push_back(RelId{rel.AsInt()});
          }
          return Value::Path(std::move(path));
        }
      }
    }
    return Value::MakeMap(std::move(entries));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> ParseJson(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace io
}  // namespace seraph
