#include "io/json.h"

#include <cmath>
#include <cstdio>

namespace seraph {
namespace io {

namespace {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void AppendJsonValue(const Value& value, std::string* out) {
  switch (value.kind()) {
    case ValueKind::kNull:
      *out += "null";
      return;
    case ValueKind::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case ValueKind::kInt:
      *out += std::to_string(value.AsInt());
      return;
    case ValueKind::kFloat: {
      double d = value.AsFloat();
      if (!std::isfinite(d)) {
        *out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
      return;
    }
    case ValueKind::kString:
      AppendJsonString(value.AsString(), out);
      return;
    case ValueKind::kList: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : value.AsList()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonValue(item, out);
      }
      out->push_back(']');
      return;
    }
    case ValueKind::kMap: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, item] : value.AsMap()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonString(key, out);
        out->push_back(':');
        AppendJsonValue(item, out);
      }
      out->push_back('}');
      return;
    }
    case ValueKind::kDateTime:
      AppendJsonString(value.AsDateTime().ToString(), out);
      return;
    case ValueKind::kDuration:
      AppendJsonString(value.AsDuration().ToString(), out);
      return;
    case ValueKind::kNode:
      *out += "{\"$node\":" + std::to_string(value.AsNode().value) + "}";
      return;
    case ValueKind::kRelationship:
      *out += "{\"$rel\":" + std::to_string(value.AsRelationship().value) +
              "}";
      return;
    case ValueKind::kPath: {
      const PathValue& path = value.AsPath();
      *out += "{\"$path\":{\"nodes\":[";
      for (size_t i = 0; i < path.nodes.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += std::to_string(path.nodes[i].value);
      }
      *out += "],\"rels\":[";
      for (size_t i = 0; i < path.rels.size(); ++i) {
        if (i > 0) out->push_back(',');
        *out += std::to_string(path.rels[i].value);
      }
      *out += "]}}";
      return;
    }
  }
}

std::string ToJson(const Value& value) {
  std::string out;
  AppendJsonValue(value, &out);
  return out;
}

std::string ToJson(const Record& record) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : record) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendJsonValue(value, &out);
  }
  out.push_back('}');
  return out;
}

std::string ToJson(const Table& table) {
  std::string out = "[";
  bool first = true;
  for (const Record& row : table.rows()) {
    if (!first) out.push_back(',');
    first = false;
    out += ToJson(row);
  }
  out.push_back(']');
  return out;
}

std::string ToJson(const TimeAnnotatedTable& table) {
  std::string out = "{\"win_start\":";
  AppendJsonString(table.window.start.ToString(), &out);
  out += ",\"win_end\":";
  AppendJsonString(table.window.end.ToString(), &out);
  out += ",\"rows\":" + ToJson(table.table) + "}";
  return out;
}

}  // namespace io
}  // namespace seraph
