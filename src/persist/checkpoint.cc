#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"
#include "persist/codec.h"

namespace seraph {
namespace persist {
namespace {

namespace fs = std::filesystem;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Unavailable("checkpoint io: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

// fsync a path (file or directory). Directory fsync makes the rename
// itself durable, not just the file contents.
Status SyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open for fsync", path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync", path);
  return Status::OK();
}

std::string SegmentFileName(SegmentRole role, size_t stream_index,
                            uint64_t seq) {
  switch (role) {
    case SegmentRole::kQueries:
      return "queries-" + std::to_string(seq) + ".seg";
    case SegmentRole::kOffsets:
      return "offsets-" + std::to_string(seq) + ".seg";
    case SegmentRole::kDeadLetters:
      return "dlq-" + std::to_string(seq) + ".seg";
    case SegmentRole::kStream:
      return "stream-" + std::to_string(stream_index) + "-" +
             std::to_string(seq) + ".seg";
  }
  return "unknown-" + std::to_string(seq) + ".seg";
}

// One finished segment awaiting its manifest entry.
struct PendingSegment {
  SegmentRole role;
  std::string file;  // Name within the checkpoint dir.
  std::string contents;
};

std::string EncodeQueriesSegment(const EngineCheckpoint& image) {
  std::string out;
  AppendFileHeader(&out);
  Encoder meta;
  meta.PutI64(image.clock.millis());
  meta.PutBool(image.clock_started);
  meta.PutI64(image.evaluations_run);
  meta.PutU32(static_cast<uint32_t>(image.queries.size()));
  AppendFrame(meta.buffer(), &out);
  for (const QueryCheckpoint& query : image.queries) {
    Encoder enc;
    WriteQueryCheckpoint(query, &enc);
    AppendFrame(enc.buffer(), &out);
  }
  return out;
}

std::string EncodeStreamSegment(const std::string& name,
                                const std::vector<StreamElement>& elements) {
  std::string out;
  AppendFileHeader(&out);
  Encoder meta;
  meta.PutString(name);
  meta.PutU32(static_cast<uint32_t>(elements.size()));
  AppendFrame(meta.buffer(), &out);
  // Frame-per-element: a torn tail corrupts one frame, and the CRC of
  // every earlier element still verifies (recovery rejects the file
  // either way — the manifest is the commit point — but inspection can
  // localize the damage).
  for (const StreamElement& element : elements) {
    Encoder enc;
    WriteStreamElement(element, &enc);
    AppendFrame(enc.buffer(), &out);
  }
  return out;
}

}  // namespace

std::string ManifestFileName(uint64_t seq) {
  return "MANIFEST-" + std::to_string(seq);
}

bool ParseManifestFileName(const std::string& name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "MANIFEST-";
  if (name.size() <= kPrefix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {
  if (options_.keep < 1) options_.keep = 1;
}

void CheckpointManager::BindQueue(std::string consumer,
                                  const EventQueue* queue) {
  queues_.emplace_back(std::move(consumer), queue);
}

void CheckpointManager::BindDeadLetter(const DeadLetterQueue* dead_letter) {
  dead_letter_ = dead_letter;
}

void CheckpointManager::ManageRetention(EventQueue* queue) {
  retention_queues_.push_back(queue);
  // Until the next commit nothing new is durable. The horizon starts at
  // the position the newest restored checkpoint already covers — the
  // minimum bound-consumer offset (zero on a cold start, so a fresh
  // replay from generation 0 stays possible; the restore point after
  // RecoverAll, so a restored run need not retain the prefix it will
  // never read again). Call this AFTER Subscribe/RecoverAll.
  size_t horizon = static_cast<size_t>(-1);
  bool any_consumer = false;
  for (const auto& [consumer, bound] : queues_) {
    if (bound != queue) continue;
    any_consumer = true;
    horizon = std::min(horizon, queue->OffsetOf(consumer).value_or(0));
  }
  if (!any_consumer) horizon = 0;
  queue->SetCheckpointHorizon(horizon);
}

void CheckpointManager::AdvanceRetention() {
  for (EventQueue* queue : retention_queues_) {
    // The horizon is the smallest offset the just-committed generation
    // recorded for this queue's consumers: recovery re-seeks there, so
    // everything below it is never read again. Offsets were captured by
    // CommitImage on this same (batch-barrier) thread, so re-reading
    // them here observes the committed values.
    size_t horizon = static_cast<size_t>(-1);
    bool any_consumer = false;
    for (const auto& [consumer, bound] : queues_) {
      if (bound != queue) continue;
      any_consumer = true;
      horizon = std::min(horizon, queue->OffsetOf(consumer).value_or(0));
    }
    if (!any_consumer) horizon = 0;
    queue->SetCheckpointHorizon(horizon);
    queue->TrimCommitted();
  }
}

void CheckpointManager::AttachTo(ContinuousEngine* engine) {
  engine->SetCheckpointCallback(
      [this, engine]() { return Checkpoint(engine); });
}

Status CheckpointManager::WriteFileAtomic(const std::string& final_path,
                                          const std::string& contents) {
  SERAPH_FAULT_POINT("checkpoint.write");
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return IoError("open", tmp_path);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return IoError("write", tmp_path);
  }
  if (options_.fsync) SERAPH_RETURN_IF_ERROR(SyncPath(tmp_path));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return IoError("rename", final_path);
  }
  if (options_.fsync) {
    SERAPH_RETURN_IF_ERROR(SyncPath(options_.dir));
  }
  return Status::OK();
}

Status CheckpointManager::CommitImage(const EngineCheckpoint& image,
                                      uint64_t seq, uint64_t* bytes_written) {
  std::vector<PendingSegment> segments;
  segments.push_back({SegmentRole::kQueries,
                      SegmentFileName(SegmentRole::kQueries, 0, seq),
                      EncodeQueriesSegment(image)});
  size_t stream_index = 0;
  for (const auto& [name, elements] : image.streams) {
    segments.push_back(
        {SegmentRole::kStream,
         SegmentFileName(SegmentRole::kStream, stream_index, seq),
         EncodeStreamSegment(name, elements)});
    ++stream_index;
  }
  {
    std::string out;
    AppendFileHeader(&out);
    Encoder meta;
    meta.PutU32(static_cast<uint32_t>(queues_.size()));
    AppendFrame(meta.buffer(), &out);
    for (const auto& [consumer, queue] : queues_) {
      Encoder enc;
      enc.PutString(consumer);
      // An unbound consumer (never polled) has no committed position;
      // recovery re-subscribes it at 0, which is what a fresh consumer
      // would do anyway. The has-offset bit preserves the distinction.
      std::optional<size_t> offset = queue->OffsetOf(consumer);
      enc.PutBool(offset.has_value());
      enc.PutU64(static_cast<uint64_t>(offset.value_or(0)));
      AppendFrame(enc.buffer(), &out);
    }
    segments.push_back({SegmentRole::kOffsets,
                        SegmentFileName(SegmentRole::kOffsets, 0, seq),
                        std::move(out)});
  }
  {
    std::string out;
    AppendFileHeader(&out);
    Encoder meta;
    const size_t entries =
        dead_letter_ == nullptr ? 0 : dead_letter_->entries().size();
    meta.PutU32(static_cast<uint32_t>(entries));
    AppendFrame(meta.buffer(), &out);
    if (dead_letter_ != nullptr) {
      for (const DeadLetterEntry& entry : dead_letter_->entries()) {
        Encoder enc;
        WriteDeadLetterEntry(entry, &enc);
        AppendFrame(enc.buffer(), &out);
      }
    }
    segments.push_back({SegmentRole::kDeadLetters,
                        SegmentFileName(SegmentRole::kDeadLetters, 0, seq),
                        std::move(out)});
  }

  uint64_t total_bytes = 0;
  for (const PendingSegment& segment : segments) {
    SERAPH_RETURN_IF_ERROR(
        WriteFileAtomic(options_.dir + "/" + segment.file, segment.contents));
    total_bytes += segment.contents.size();
  }

  // The manifest commits the generation: it lists every segment with its
  // size and whole-file CRC, so recovery can validate a generation
  // without trusting anything but the manifest frame's own checksum.
  std::string manifest;
  AppendFileHeader(&manifest);
  Encoder enc;
  enc.PutU64(seq);
  enc.PutU32(static_cast<uint32_t>(segments.size()));
  for (const PendingSegment& segment : segments) {
    enc.PutU8(static_cast<uint8_t>(segment.role));
    enc.PutString(segment.file);
    enc.PutU64(segment.contents.size());
    enc.PutU32(Crc32(segment.contents));
  }
  AppendFrame(enc.buffer(), &manifest);
  total_bytes += manifest.size();

  SERAPH_FAULT_POINT("checkpoint.rename");
  SERAPH_RETURN_IF_ERROR(
      WriteFileAtomic(options_.dir + "/" + ManifestFileName(seq), manifest));
  *bytes_written = total_bytes;
  return Status::OK();
}

void CheckpointManager::GarbageCollect(uint64_t newest_seq) {
  // Keep the newest `keep` generations; older segments and manifests go.
  // Manifests are deleted first so a GC crash can only leave orphaned
  // segments (harmless), never a manifest whose segments are gone.
  if (newest_seq < static_cast<uint64_t>(options_.keep)) return;
  const uint64_t min_kept = newest_seq - static_cast<uint64_t>(options_.keep)
                            + 1;
  std::error_code ec;
  std::vector<fs::path> doomed_manifests;
  std::vector<fs::path> doomed_segments;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (ParseManifestFileName(name, &seq)) {
      if (seq < min_kept) doomed_manifests.push_back(entry.path());
      continue;
    }
    // Segments end with "-<seq>.seg"; orphaned .tmp files from a crashed
    // writer are always removable.
    if (name.size() > 4 && name.ends_with(".tmp")) {
      doomed_segments.push_back(entry.path());
      continue;
    }
    if (name.size() > 4 && name.ends_with(".seg")) {
      size_t dash = name.rfind('-');
      if (dash == std::string::npos) continue;
      uint64_t file_seq = 0;
      bool numeric = dash + 1 < name.size() - 4;
      for (size_t i = dash + 1; numeric && i < name.size() - 4; ++i) {
        if (name[i] < '0' || name[i] > '9') numeric = false;
        else file_seq = file_seq * 10 + static_cast<uint64_t>(name[i] - '0');
      }
      if (numeric && file_seq < min_kept) {
        doomed_segments.push_back(entry.path());
      }
    }
  }
  for (const fs::path& path : doomed_manifests) fs::remove(path, ec);
  for (const fs::path& path : doomed_segments) fs::remove(path, ec);
}

Status CheckpointManager::Checkpoint(ContinuousEngine* engine) {
  MetricsRegistry& registry = engine->metrics();
  Histogram* duration =
      registry.HistogramFor("seraph_checkpoint_duration_micros");
  Histogram* bytes = registry.HistogramFor("seraph_checkpoint_bytes");
  Counter* total = registry.CounterFor("seraph_checkpoint_total");
  Counter* failures = registry.CounterFor("seraph_checkpoint_failures_total");
  // Checkpoint-age health surface: the generation on disk and when it was
  // committed, so a scraper can alert on a stalling checkpoint cadence
  // (age = now − last_write).
  Gauge* last_seq_gauge = registry.GaugeFor("seraph_checkpoint_last_seq");
  Gauge* last_write_gauge =
      registry.GaugeFor("seraph_checkpoint_last_write_micros");

  const int64_t start = TraceRecorder::NowMicros();
  Status written = [&]() -> Status {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (ec) {
      return Status::Unavailable("checkpoint io: create dir '" +
                                 options_.dir + "': " + ec.message());
    }
    if (!seq_initialized_) {
      // Resume the sequence past any generations already in the dir (a
      // restarted process must not overwrite its predecessor's files).
      uint64_t max_seq = 0;
      for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
        uint64_t seq = 0;
        if (ParseManifestFileName(entry.path().filename().string(), &seq)) {
          max_seq = std::max(max_seq, seq);
        }
      }
      next_seq_ = max_seq + 1;
      seq_initialized_ = true;
    }
    const uint64_t seq = next_seq_;
    uint64_t bytes_written = 0;
    SERAPH_RETURN_IF_ERROR(
        CommitImage(engine->CaptureCheckpoint(), seq, &bytes_written));
    ++next_seq_;
    last_seq_ = seq;
    bytes->Record(static_cast<int64_t>(bytes_written));
    GarbageCollect(seq);
    return Status::OK();
  }();
  duration->Record(TraceRecorder::NowMicros() - start);
  if (written.ok()) {
    ++checkpoints_written_;
    total->Increment();
    last_seq_gauge->Set(static_cast<int64_t>(last_seq_));
    last_write_gauge->Set(TraceRecorder::NowMicros());
    // The new generation is the commit point: offsets below it are now
    // durably covered, so managed queues may trim up to them.
    AdvanceRetention();
  } else {
    ++checkpoint_failures_;
    failures->Increment();
  }
  return written;
}

}  // namespace persist
}  // namespace seraph
