#include "persist/recovery.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "persist/codec.h"

namespace seraph {
namespace persist {
namespace {

namespace fs = std::filesystem;

Status IoError(const std::string& what, const std::string& path) {
  return Status::Unavailable("recovery io: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("open", path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return IoError("read", path);
  return contents;
}

// One manifest entry, as promised by the commit point.
struct ManifestEntry {
  SegmentRole role;
  std::string file;
  uint64_t size = 0;
  uint32_t crc = 0;
};

struct Manifest {
  uint64_t seq = 0;
  std::vector<ManifestEntry> entries;
};

Result<Manifest> DecodeManifest(std::string_view contents) {
  FrameReader reader(contents);
  SERAPH_RETURN_IF_ERROR(reader.ReadHeader());
  SERAPH_ASSIGN_OR_RETURN(std::string_view payload, reader.Next());
  Decoder dec(payload);
  Manifest manifest;
  SERAPH_ASSIGN_OR_RETURN(manifest.seq, dec.U64());
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, dec.U32());
  manifest.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ManifestEntry entry;
    SERAPH_ASSIGN_OR_RETURN(uint8_t role, dec.U8());
    if (role > static_cast<uint8_t>(SegmentRole::kStream)) {
      return Status::InvalidArgument("checkpoint decode: bad segment role " +
                                     std::to_string(role));
    }
    entry.role = static_cast<SegmentRole>(role);
    SERAPH_ASSIGN_OR_RETURN(entry.file, dec.String());
    SERAPH_ASSIGN_OR_RETURN(entry.size, dec.U64());
    SERAPH_ASSIGN_OR_RETURN(entry.crc, dec.U32());
    manifest.entries.push_back(std::move(entry));
  }
  if (!dec.done()) {
    return Status::InvalidArgument(
        "checkpoint decode: trailing bytes in manifest");
  }
  return manifest;
}

// Decodes queries-<seq>.seg into the engine image (clock meta + queries).
Status DecodeQueriesSegment(std::string_view contents,
                            EngineCheckpoint* engine) {
  FrameReader reader(contents);
  SERAPH_RETURN_IF_ERROR(reader.ReadHeader());
  SERAPH_ASSIGN_OR_RETURN(std::string_view meta_payload, reader.Next());
  Decoder meta(meta_payload);
  SERAPH_ASSIGN_OR_RETURN(int64_t clock_millis, meta.I64());
  engine->clock = Timestamp::FromMillis(clock_millis);
  SERAPH_ASSIGN_OR_RETURN(engine->clock_started, meta.Bool());
  SERAPH_ASSIGN_OR_RETURN(engine->evaluations_run, meta.I64());
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, meta.U32());
  engine->queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string_view payload, reader.Next());
    Decoder dec(payload);
    SERAPH_ASSIGN_OR_RETURN(QueryCheckpoint query, ReadQueryCheckpoint(&dec));
    engine->queries.push_back(std::move(query));
  }
  return Status::OK();
}

Status DecodeStreamSegment(std::string_view contents,
                           EngineCheckpoint* engine) {
  FrameReader reader(contents);
  SERAPH_RETURN_IF_ERROR(reader.ReadHeader());
  SERAPH_ASSIGN_OR_RETURN(std::string_view meta_payload, reader.Next());
  Decoder meta(meta_payload);
  SERAPH_ASSIGN_OR_RETURN(std::string name, meta.String());
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, meta.U32());
  std::vector<StreamElement> elements;
  elements.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string_view payload, reader.Next());
    Decoder dec(payload);
    SERAPH_ASSIGN_OR_RETURN(StreamElement element, ReadStreamElement(&dec));
    elements.push_back(std::move(element));
  }
  if (engine->streams.contains(name)) {
    return Status::InvalidArgument("checkpoint decode: duplicate stream '" +
                                   name + "'");
  }
  engine->streams.emplace(std::move(name), std::move(elements));
  return Status::OK();
}

Status DecodeOffsetsSegment(std::string_view contents,
                            std::map<std::string, uint64_t>* offsets) {
  FrameReader reader(contents);
  SERAPH_RETURN_IF_ERROR(reader.ReadHeader());
  SERAPH_ASSIGN_OR_RETURN(std::string_view meta_payload, reader.Next());
  Decoder meta(meta_payload);
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, meta.U32());
  for (uint32_t i = 0; i < count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string_view payload, reader.Next());
    Decoder dec(payload);
    SERAPH_ASSIGN_OR_RETURN(std::string consumer, dec.String());
    SERAPH_ASSIGN_OR_RETURN(bool has_offset, dec.Bool());
    SERAPH_ASSIGN_OR_RETURN(uint64_t offset, dec.U64());
    if (has_offset) offsets->insert_or_assign(std::move(consumer), offset);
  }
  return Status::OK();
}

Status DecodeDeadLetterSegment(std::string_view contents,
                               std::vector<DeadLetterEntry>* entries) {
  FrameReader reader(contents);
  SERAPH_RETURN_IF_ERROR(reader.ReadHeader());
  SERAPH_ASSIGN_OR_RETURN(std::string_view meta_payload, reader.Next());
  Decoder meta(meta_payload);
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, meta.U32());
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string_view payload, reader.Next());
    Decoder dec(payload);
    SERAPH_ASSIGN_OR_RETURN(DeadLetterEntry entry, ReadDeadLetterEntry(&dec));
    entries->push_back(std::move(entry));
  }
  return Status::OK();
}

// All manifest sequence numbers present in `dir`, descending.
Result<std::vector<uint64_t>> ListManifestSeqs(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("no checkpoint directory '" + dir + "'");
  }
  std::vector<uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    if (ParseManifestFileName(entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  if (ec) return IoError("scan", dir);
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

// Validates a segment against its manifest entry and decodes it into the
// image. `summary` (optional) records per-segment status for inspection.
Status LoadSegment(const std::string& dir, const ManifestEntry& entry,
                   CheckpointImage* image, SegmentSummary* summary) {
  const std::string path = dir + "/" + entry.file;
  if (summary != nullptr) {
    summary->role = entry.role;
    summary->file = entry.file;
    summary->manifest_size = entry.size;
  }
  auto contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  if (summary != nullptr) {
    summary->present = true;
    summary->actual_size = contents->size();
  }
  if (contents->size() != entry.size) {
    return Status::InvalidArgument(
        "checkpoint decode: '" + entry.file + "' is " +
        std::to_string(contents->size()) + " bytes, manifest promised " +
        std::to_string(entry.size));
  }
  if (Crc32(*contents) != entry.crc) {
    return Status::InvalidArgument("checkpoint decode: '" + entry.file +
                                   "' fails its manifest CRC");
  }
  if (summary != nullptr) summary->crc_ok = true;
  switch (entry.role) {
    case SegmentRole::kQueries:
      return DecodeQueriesSegment(*contents, &image->engine);
    case SegmentRole::kStream:
      return DecodeStreamSegment(*contents, &image->engine);
    case SegmentRole::kOffsets:
      return DecodeOffsetsSegment(*contents, &image->offsets);
    case SegmentRole::kDeadLetters:
      return DecodeDeadLetterSegment(*contents, &image->dead_letters);
  }
  return Status::InvalidArgument("checkpoint decode: unknown segment role");
}

// Loads one generation; fills `summary` segments when requested.
Result<CheckpointImage> LoadGeneration(const std::string& dir, uint64_t seq,
                                       std::vector<SegmentSummary>* segments) {
  SERAPH_ASSIGN_OR_RETURN(
      std::string manifest_bytes,
      ReadWholeFile(dir + "/" + ManifestFileName(seq)));
  SERAPH_ASSIGN_OR_RETURN(Manifest manifest, DecodeManifest(manifest_bytes));
  if (manifest.seq != seq) {
    return Status::InvalidArgument(
        "checkpoint decode: manifest claims seq " +
        std::to_string(manifest.seq) + ", filename says " +
        std::to_string(seq));
  }
  CheckpointImage image;
  image.seq = seq;
  bool saw_queries = false;
  for (const ManifestEntry& entry : manifest.entries) {
    SegmentSummary* summary = nullptr;
    if (segments != nullptr) {
      segments->emplace_back();
      summary = &segments->back();
    }
    SERAPH_RETURN_IF_ERROR(LoadSegment(dir, entry, &image, summary));
    if (entry.role == SegmentRole::kQueries) saw_queries = true;
  }
  if (!saw_queries) {
    return Status::InvalidArgument(
        "checkpoint decode: manifest lists no queries segment");
  }
  return image;
}

}  // namespace

Result<CheckpointImage> LoadCheckpoint(const std::string& dir, uint64_t seq) {
  return LoadGeneration(dir, seq, nullptr);
}

Result<CheckpointImage> LoadLatestCheckpoint(const std::string& dir) {
  SERAPH_FAULT_POINT("recovery.read");
  SERAPH_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListManifestSeqs(dir));
  Status last_error = Status::OK();
  for (uint64_t seq : seqs) {
    auto image = LoadGeneration(dir, seq, nullptr);
    if (image.ok()) return image;
    // Corruption can only touch the newest generation after a crash
    // mid-commit (or bit rot anywhere): log it and fall back.
    SERAPH_LOG(WARNING) << "checkpoint generation " << seq
                        << " unusable: " << image.status().ToString();
    last_error = image.status();
  }
  if (last_error.ok()) {
    return Status::NotFound("no checkpoint in '" + dir + "'");
  }
  return Status::NotFound("no valid checkpoint in '" + dir +
                          "' (newest failure: " + last_error.ToString() + ")");
}

Status RestoreEngine(const CheckpointImage& image, ContinuousEngine* engine) {
  return engine->RestoreFrom(image.engine);
}

Status RestoreConsumer(const CheckpointImage& image,
                       const std::string& consumer, EventQueue* queue) {
  queue->Subscribe(consumer);
  auto it = image.offsets.find(consumer);
  if (it == image.offsets.end()) return Status::OK();
  // RestoreOffset, not Seek: a bounded tool restores before re-producing
  // the log, so the checkpointed offset may lead the still-empty queue.
  return queue->RestoreOffset(consumer, static_cast<size_t>(it->second));
}

Status RestoreDeadLetters(const CheckpointImage& image,
                          DeadLetterQueue* dead_letter) {
  for (const DeadLetterEntry& entry : image.dead_letters) {
    dead_letter->Add(entry);
  }
  return Status::OK();
}

Result<RecoveryReport> RecoverAll(const std::string& dir,
                                  ContinuousEngine* engine,
                                  EventQueue* queue,
                                  const std::vector<std::string>& consumers,
                                  DeadLetterQueue* dead_letter) {
  SERAPH_ASSIGN_OR_RETURN(CheckpointImage image, LoadLatestCheckpoint(dir));
  SERAPH_RETURN_IF_ERROR(RestoreEngine(image, engine));
  // Complete the batch the crash interrupted. The checkpoint barrier
  // fires per evaluation batch *inside* AdvanceTo(now), so a mid-batch
  // generation records clock = t while instants in (t, now] were still
  // pending — and `now` (the delivered horizon) is exactly the max
  // timestamp of the restored streams, which is what Drain advances to.
  // Running the catch-up here, BEFORE consumers replay the queue suffix,
  // reproduces the original evaluation schedule: those instants fire on
  // the restored window contents, not contents polluted by later
  // replayed elements. When the cut was a final barrier, no instant is
  // pending and Drain fires nothing.
  SERAPH_RETURN_IF_ERROR(engine->Drain());
  RecoveryReport report;
  report.seq = image.seq;
  report.queries = image.engine.queries.size();
  report.streams = image.engine.streams.size();
  for (const auto& [name, elements] : image.engine.streams) {
    report.stream_elements += elements.size();
  }
  int64_t replayed = 0;
  for (const std::string& consumer : consumers) {
    SERAPH_RETURN_IF_ERROR(RestoreConsumer(image, consumer, queue));
    const size_t offset = queue->OffsetOf(consumer).value_or(0);
    const size_t backlog = queue->size() > offset ? queue->size() - offset : 0;
    report.replay_backlog[consumer] = backlog;
    replayed += static_cast<int64_t>(backlog);
  }
  if (dead_letter != nullptr) {
    SERAPH_RETURN_IF_ERROR(RestoreDeadLetters(image, dead_letter));
    report.dead_letters = image.dead_letters.size();
  }
  engine->metrics()
      .CounterFor("seraph_recovery_replayed_elements")
      ->Increment(replayed);
  return report;
}

Result<std::vector<ManifestSummary>> InspectCheckpoints(
    const std::string& dir) {
  SERAPH_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListManifestSeqs(dir));
  std::vector<ManifestSummary> summaries;
  summaries.reserve(seqs.size());
  for (uint64_t seq : seqs) {
    ManifestSummary summary;
    summary.seq = seq;
    auto image = LoadGeneration(dir, seq, &summary.segments);
    if (image.ok()) {
      summary.valid = true;
      summary.image = std::move(*image);
    } else {
      summary.error = image.status().ToString();
    }
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

}  // namespace persist
}  // namespace seraph
