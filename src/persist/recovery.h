// Crash recovery for the durability subsystem (docs/INTERNALS.md,
// "Durability & recovery").
//
// Recovery scans the checkpoint directory for MANIFEST-<seq> files in
// descending sequence order and loads the newest generation whose
// manifest AND every listed segment validate (size, whole-file CRC,
// frame CRCs, clean decode). A torn, truncated, or bit-flipped file
// fails validation and recovery falls back to the previous generation —
// the manifest-last write protocol (persist/checkpoint.h) guarantees at
// most the newest generation can be damaged by a crash mid-write.
//
// The replay-exactness contract: after RestoreEngine + RestoreConsumer,
// a fresh StreamDriver pumping the queue suffix past the committed
// offset produces sink output bit-identical (content and order) to an
// uninterrupted run — the crash-recovery equivalence test proves it for
// crashes at every fault point.
#ifndef SERAPH_PERSIST_RECOVERY_H_
#define SERAPH_PERSIST_RECOVERY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "persist/checkpoint.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "stream/event_queue.h"

namespace seraph {
namespace persist {

// One fully decoded checkpoint generation.
struct CheckpointImage {
  uint64_t seq = 0;
  EngineCheckpoint engine;
  // Consumer → committed offset (consumers without a committed position
  // at checkpoint time are absent).
  std::map<std::string, uint64_t> offsets;
  std::vector<DeadLetterEntry> dead_letters;
};

// Loads and validates the generation committed by MANIFEST-<seq>.
Result<CheckpointImage> LoadCheckpoint(const std::string& dir, uint64_t seq);

// Loads the newest valid generation, falling back across corrupted ones;
// kNotFound when the directory holds no loadable checkpoint. Carries the
// "recovery.read" fault point (fired once per call, before any file is
// read) so chaos tests can kill a process mid-recovery and assert the
// retry succeeds.
Result<CheckpointImage> LoadLatestCheckpoint(const std::string& dir);

// Applies the image's engine state via ContinuousEngine::RestoreFrom.
// The engine must be fresh, with all checkpointed queries already
// re-registered. Callers composing recovery manually must follow this
// with ContinuousEngine::Drain() BEFORE replaying any queue backlog:
// the checkpoint barrier fires per batch inside AdvanceTo, so a
// mid-batch cut leaves instants up to the delivered horizon (= the max
// restored stream timestamp, what Drain advances to) still pending.
// RecoverAll does this automatically.
Status RestoreEngine(const CheckpointImage& image, ContinuousEngine* engine);

// Re-seeks `consumer` on `queue` to its committed offset (subscribing it
// first). A consumer absent from the image is subscribed at 0 — the
// position a fresh consumer would start from anyway.
Status RestoreConsumer(const CheckpointImage& image,
                       const std::string& consumer, EventQueue* queue);

// Re-adds the image's dead letters to `dead_letter`.
Status RestoreDeadLetters(const CheckpointImage& image,
                          DeadLetterQueue* dead_letter);

// What RecoverAll did, for logs and the seraph_run --restore banner.
struct RecoveryReport {
  uint64_t seq = 0;
  size_t queries = 0;
  size_t streams = 0;
  size_t stream_elements = 0;
  size_t dead_letters = 0;
  // Consumer → elements past its restored offset (the replay backlog).
  std::map<std::string, size_t> replay_backlog;
};

// Convenience composition: load latest → restore engine → complete the
// interrupted evaluation batch (Drain to the restored horizon) →
// re-seek every consumer → restore dead letters (skipped when
// `dead_letter` is null).
// Records `seraph_recovery_replayed_elements` on the engine's registry —
// the total queue backlog past the restored offsets that drivers will
// re-deliver on the next pump.
Result<RecoveryReport> RecoverAll(const std::string& dir,
                                  ContinuousEngine* engine,
                                  EventQueue* queue,
                                  const std::vector<std::string>& consumers,
                                  DeadLetterQueue* dead_letter);

// ---- Inspection (seraph_run --inspect-checkpoint) ----

struct SegmentSummary {
  SegmentRole role;
  std::string file;
  uint64_t manifest_size = 0;  // Size the manifest promises.
  uint64_t actual_size = 0;    // Size on disk (0 if missing).
  bool present = false;
  bool crc_ok = false;
};

struct ManifestSummary {
  uint64_t seq = 0;
  bool valid = false;     // The whole generation loads cleanly.
  std::string error;      // Why not, when !valid.
  std::vector<SegmentSummary> segments;
  // Filled when valid:
  std::optional<CheckpointImage> image;
};

// Summarizes every manifest in the directory, newest first. Unlike
// LoadLatestCheckpoint this never gives up on corruption — damaged
// generations are reported with their per-segment CRC status.
Result<std::vector<ManifestSummary>> InspectCheckpoints(
    const std::string& dir);

}  // namespace persist
}  // namespace seraph

#endif  // SERAPH_PERSIST_RECOVERY_H_
