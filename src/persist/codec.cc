#include "persist/codec.h"

#include <array>
#include <cstring>
#include <utility>
#include <vector>

namespace seraph {
namespace persist {
namespace {

Status DecodeError(std::string what) {
  return Status::InvalidArgument("checkpoint decode: " + std::move(what));
}

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Encoder / Decoder
// ---------------------------------------------------------------------------

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

Status Decoder::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return DecodeError("truncated input (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(data_.size() - pos_) +
                       ")");
  }
  return Status::OK();
}

Result<uint8_t> Decoder::U8() {
  SERAPH_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<bool> Decoder::Bool() {
  SERAPH_ASSIGN_OR_RETURN(uint8_t v, U8());
  if (v > 1) return DecodeError("bool byte out of range");
  return v == 1;
}

Result<uint32_t> Decoder::U32() {
  SERAPH_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::U64() {
  SERAPH_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Decoder::I64() {
  SERAPH_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Decoder::Double() {
  SERAPH_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Decoder::String() {
  SERAPH_ASSIGN_OR_RETURN(uint32_t len, U32());
  SERAPH_RETURN_IF_ERROR(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

void AppendFrame(std::string_view payload, std::string* out) {
  Encoder header;
  header.PutU32(static_cast<uint32_t>(payload.size()));
  header.PutU32(Crc32(payload));
  out->append(header.buffer());
  out->append(payload.data(), payload.size());
}

void AppendFileHeader(std::string* out) {
  Encoder header;
  header.PutU32(kMagic);
  header.PutU32(kFormatVersion);
  out->append(header.buffer());
}

Status FrameReader::ReadHeader() {
  Decoder dec(data_.substr(pos_));
  SERAPH_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kMagic) return DecodeError("bad magic (not a checkpoint file)");
  SERAPH_ASSIGN_OR_RETURN(uint32_t version, dec.U32());
  if (version != kFormatVersion) {
    return DecodeError("unsupported format version " +
                       std::to_string(version));
  }
  pos_ += 8;
  return Status::OK();
}

Result<std::string_view> FrameReader::Next() {
  if (pos_ == data_.size()) {
    return Status::NotFound("checkpoint file: no more frames");
  }
  Decoder dec(data_.substr(pos_));
  SERAPH_ASSIGN_OR_RETURN(uint32_t len, dec.U32());
  SERAPH_ASSIGN_OR_RETURN(uint32_t crc, dec.U32());
  if (data_.size() - pos_ - 8 < len) {
    return DecodeError("torn frame (payload extends past end of file)");
  }
  std::string_view payload = data_.substr(pos_ + 8, len);
  if (Crc32(payload) != crc) {
    return DecodeError("frame checksum mismatch (corrupted payload)");
  }
  pos_ += 8 + len;
  return payload;
}

// ---------------------------------------------------------------------------
// Values / records / tables
// ---------------------------------------------------------------------------

void WriteValue(const Value& value, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(value.kind()));
  switch (value.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      enc->PutBool(value.AsBool());
      break;
    case ValueKind::kInt:
      enc->PutI64(value.AsInt());
      break;
    case ValueKind::kFloat:
      enc->PutDouble(value.AsFloat());
      break;
    case ValueKind::kString:
      enc->PutString(value.AsString());
      break;
    case ValueKind::kList: {
      const Value::List& items = value.AsList();
      enc->PutU32(static_cast<uint32_t>(items.size()));
      for (const Value& item : items) WriteValue(item, enc);
      break;
    }
    case ValueKind::kMap: {
      const Value::Map& entries = value.AsMap();
      enc->PutU32(static_cast<uint32_t>(entries.size()));
      for (const auto& [key, entry] : entries) {
        enc->PutString(key);
        WriteValue(entry, enc);
      }
      break;
    }
    case ValueKind::kDateTime:
      enc->PutI64(value.AsDateTime().millis());
      break;
    case ValueKind::kDuration:
      enc->PutI64(value.AsDuration().millis());
      break;
    case ValueKind::kNode:
      enc->PutI64(value.AsNode().value);
      break;
    case ValueKind::kRelationship:
      enc->PutI64(value.AsRelationship().value);
      break;
    case ValueKind::kPath: {
      const PathValue& path = value.AsPath();
      enc->PutU32(static_cast<uint32_t>(path.nodes.size()));
      for (NodeId id : path.nodes) enc->PutI64(id.value);
      enc->PutU32(static_cast<uint32_t>(path.rels.size()));
      for (RelId id : path.rels) enc->PutI64(id.value);
      break;
    }
  }
}

Result<Value> ReadValue(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(uint8_t tag, dec->U8());
  if (tag > static_cast<uint8_t>(ValueKind::kPath)) {
    return DecodeError("unknown value kind tag " + std::to_string(tag));
  }
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kNull:
      return Value::Null();
    case ValueKind::kBool: {
      SERAPH_ASSIGN_OR_RETURN(bool b, dec->Bool());
      return Value::Bool(b);
    }
    case ValueKind::kInt: {
      SERAPH_ASSIGN_OR_RETURN(int64_t i, dec->I64());
      return Value::Int(i);
    }
    case ValueKind::kFloat: {
      SERAPH_ASSIGN_OR_RETURN(double d, dec->Double());
      return Value::Float(d);
    }
    case ValueKind::kString: {
      SERAPH_ASSIGN_OR_RETURN(std::string s, dec->String());
      return Value::String(std::move(s));
    }
    case ValueKind::kList: {
      SERAPH_ASSIGN_OR_RETURN(uint32_t count, dec->U32());
      Value::List items;
      items.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        SERAPH_ASSIGN_OR_RETURN(Value item, ReadValue(dec));
        items.push_back(std::move(item));
      }
      return Value::MakeList(std::move(items));
    }
    case ValueKind::kMap: {
      SERAPH_ASSIGN_OR_RETURN(uint32_t count, dec->U32());
      Value::Map entries;
      for (uint32_t i = 0; i < count; ++i) {
        SERAPH_ASSIGN_OR_RETURN(std::string key, dec->String());
        SERAPH_ASSIGN_OR_RETURN(Value entry, ReadValue(dec));
        entries.emplace(std::move(key), std::move(entry));
      }
      return Value::MakeMap(std::move(entries));
    }
    case ValueKind::kDateTime: {
      SERAPH_ASSIGN_OR_RETURN(int64_t millis, dec->I64());
      return Value::DateTime(Timestamp::FromMillis(millis));
    }
    case ValueKind::kDuration: {
      SERAPH_ASSIGN_OR_RETURN(int64_t millis, dec->I64());
      return Value::Dur(Duration::FromMillis(millis));
    }
    case ValueKind::kNode: {
      SERAPH_ASSIGN_OR_RETURN(int64_t id, dec->I64());
      return Value::Node(NodeId{id});
    }
    case ValueKind::kRelationship: {
      SERAPH_ASSIGN_OR_RETURN(int64_t id, dec->I64());
      return Value::Relationship(RelId{id});
    }
    case ValueKind::kPath: {
      PathValue path;
      SERAPH_ASSIGN_OR_RETURN(uint32_t nodes, dec->U32());
      path.nodes.reserve(nodes);
      for (uint32_t i = 0; i < nodes; ++i) {
        SERAPH_ASSIGN_OR_RETURN(int64_t id, dec->I64());
        path.nodes.push_back(NodeId{id});
      }
      SERAPH_ASSIGN_OR_RETURN(uint32_t rels, dec->U32());
      path.rels.reserve(rels);
      for (uint32_t i = 0; i < rels; ++i) {
        SERAPH_ASSIGN_OR_RETURN(int64_t id, dec->I64());
        path.rels.push_back(RelId{id});
      }
      return Value::Path(std::move(path));
    }
  }
  return DecodeError("unreachable value kind");
}

void WriteRecord(const Record& record, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(record.size()));
  for (const auto& [name, value] : record) {
    enc->PutString(name);
    WriteValue(value, enc);
  }
}

Result<Record> ReadRecord(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, dec->U32());
  Record record;
  for (uint32_t i = 0; i < count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string name, dec->String());
    SERAPH_ASSIGN_OR_RETURN(Value value, ReadValue(dec));
    record.Set(std::move(name), std::move(value));
  }
  return record;
}

void WriteTable(const Table& table, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(table.fields().size()));
  for (const std::string& field : table.fields()) enc->PutString(field);
  enc->PutU32(static_cast<uint32_t>(table.rows().size()));
  for (const Record& row : table.rows()) WriteRecord(row, enc);
}

Result<Table> ReadTable(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(uint32_t field_count, dec->U32());
  std::set<std::string> fields;
  for (uint32_t i = 0; i < field_count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string field, dec->String());
    fields.insert(std::move(field));
  }
  Table table(std::move(fields));
  SERAPH_ASSIGN_OR_RETURN(uint32_t row_count, dec->U32());
  for (uint32_t i = 0; i < row_count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(Record row, ReadRecord(dec));
    // Unchecked: the writer serialized a well-formed table; rows keep
    // their original (possibly partial) domains.
    table.AppendUnchecked(std::move(row));
  }
  return table;
}

void WriteInterval(const TimeInterval& interval, Encoder* enc) {
  enc->PutI64(interval.start.millis());
  enc->PutI64(interval.end.millis());
}

Result<TimeInterval> ReadInterval(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(int64_t start, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(int64_t end, dec->I64());
  return TimeInterval{Timestamp::FromMillis(start), Timestamp::FromMillis(end)};
}

void WriteAnnotatedTable(const TimeAnnotatedTable& table, Encoder* enc) {
  WriteInterval(table.window, enc);
  WriteTable(table.table, enc);
}

Result<TimeAnnotatedTable> ReadAnnotatedTable(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(TimeInterval window, ReadInterval(dec));
  SERAPH_ASSIGN_OR_RETURN(Table table, ReadTable(dec));
  return TimeAnnotatedTable{std::move(table), window};
}

void WriteStatus(const Status& status, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(status.code()));
  enc->PutString(status.message());
}

Status ReadStatus(Decoder* dec, Status* out) {
  SERAPH_ASSIGN_OR_RETURN(uint8_t code, dec->U8());
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return DecodeError("unknown status code " + std::to_string(code));
  }
  SERAPH_ASSIGN_OR_RETURN(std::string message, dec->String());
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Graphs / stream elements
// ---------------------------------------------------------------------------

namespace {

void WriteProperties(const Value::Map& properties, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(properties.size()));
  for (const auto& [key, value] : properties) {
    enc->PutString(key);
    WriteValue(value, enc);
  }
}

Result<Value::Map> ReadProperties(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(uint32_t count, dec->U32());
  Value::Map properties;
  for (uint32_t i = 0; i < count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(std::string key, dec->String());
    SERAPH_ASSIGN_OR_RETURN(Value value, ReadValue(dec));
    properties.emplace(std::move(key), std::move(value));
  }
  return properties;
}

}  // namespace

void WriteGraph(const PropertyGraph& graph, Encoder* enc) {
  const std::vector<NodeId> node_ids = graph.NodeIds();
  enc->PutU32(static_cast<uint32_t>(node_ids.size()));
  for (NodeId id : node_ids) {
    const NodeData* data = graph.node(id);
    enc->PutI64(id.value);
    enc->PutU32(static_cast<uint32_t>(data->labels.size()));
    for (const std::string& label : data->labels) enc->PutString(label);
    WriteProperties(data->properties, enc);
  }
  const std::vector<RelId> rel_ids = graph.RelationshipIds();
  enc->PutU32(static_cast<uint32_t>(rel_ids.size()));
  for (RelId id : rel_ids) {
    const RelData* data = graph.relationship(id);
    enc->PutI64(id.value);
    enc->PutString(data->type);
    enc->PutI64(data->src.value);
    enc->PutI64(data->trg.value);
    WriteProperties(data->properties, enc);
  }
}

Result<PropertyGraph> ReadGraph(Decoder* dec) {
  PropertyGraph graph;
  SERAPH_ASSIGN_OR_RETURN(uint32_t node_count, dec->U32());
  for (uint32_t i = 0; i < node_count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(int64_t id, dec->I64());
    NodeData data;
    SERAPH_ASSIGN_OR_RETURN(uint32_t label_count, dec->U32());
    for (uint32_t j = 0; j < label_count; ++j) {
      SERAPH_ASSIGN_OR_RETURN(std::string label, dec->String());
      data.labels.insert(std::move(label));
    }
    SERAPH_ASSIGN_OR_RETURN(data.properties, ReadProperties(dec));
    SERAPH_RETURN_IF_ERROR(graph.AddNode(NodeId{id}, std::move(data)));
  }
  SERAPH_ASSIGN_OR_RETURN(uint32_t rel_count, dec->U32());
  for (uint32_t i = 0; i < rel_count; ++i) {
    SERAPH_ASSIGN_OR_RETURN(int64_t id, dec->I64());
    RelData data;
    SERAPH_ASSIGN_OR_RETURN(data.type, dec->String());
    SERAPH_ASSIGN_OR_RETURN(int64_t src, dec->I64());
    SERAPH_ASSIGN_OR_RETURN(int64_t trg, dec->I64());
    data.src = NodeId{src};
    data.trg = NodeId{trg};
    SERAPH_ASSIGN_OR_RETURN(data.properties, ReadProperties(dec));
    SERAPH_RETURN_IF_ERROR(graph.AddRelationship(RelId{id}, std::move(data)));
  }
  return graph;
}

void WriteStreamElement(const StreamElement& element, Encoder* enc) {
  enc->PutI64(element.timestamp.millis());
  WriteGraph(*element.graph, enc);
}

Result<StreamElement> ReadStreamElement(Decoder* dec) {
  SERAPH_ASSIGN_OR_RETURN(int64_t millis, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(PropertyGraph graph, ReadGraph(dec));
  return StreamElement{
      std::make_shared<const PropertyGraph>(std::move(graph)),
      Timestamp::FromMillis(millis)};
}

// ---------------------------------------------------------------------------
// Query execution state
// ---------------------------------------------------------------------------

void WriteQueryStats(const QueryStats& stats, Encoder* enc) {
  enc->PutI64(stats.evaluations);
  enc->PutI64(stats.reused_results);
  enc->PutI64(stats.rows_emitted);
  enc->PutI64(stats.result_rows);
  enc->PutI64(stats.snapshots_incremental);
  enc->PutI64(stats.snapshots_rebuilt);
  enc->PutI64(stats.window_elements_added);
  enc->PutI64(stats.window_elements_evicted);
  enc->PutI64(stats.fresh_executions);
  enc->PutI64(stats.window_micros);
  enc->PutI64(stats.snapshot_micros);
  enc->PutI64(stats.match_micros);
  enc->PutI64(stats.policy_micros);
  enc->PutI64(stats.sink_micros);
  enc->PutI64(stats.eval_failures);
  WriteStatus(stats.last_error, enc);
}

Result<QueryStats> ReadQueryStats(Decoder* dec) {
  QueryStats stats;
  SERAPH_ASSIGN_OR_RETURN(stats.evaluations, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.reused_results, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.rows_emitted, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.result_rows, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.snapshots_incremental, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.snapshots_rebuilt, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.window_elements_added, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.window_elements_evicted, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.fresh_executions, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.window_micros, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.snapshot_micros, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.match_micros, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.policy_micros, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.sink_micros, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(stats.eval_failures, dec->I64());
  SERAPH_RETURN_IF_ERROR(ReadStatus(dec, &stats.last_error));
  return stats;
}

void WriteQueryCheckpoint(const QueryCheckpoint& query, Encoder* enc) {
  enc->PutString(query.name);
  enc->PutI64(query.next_eval.millis());
  enc->PutBool(query.done);
  enc->PutBool(query.disabled);
  enc->PutI64(query.consecutive_failures);
  enc->PutBool(query.has_previous);
  WriteTable(query.previous_result, enc);
  WriteQueryStats(query.stats, enc);
}

Result<QueryCheckpoint> ReadQueryCheckpoint(Decoder* dec) {
  QueryCheckpoint query;
  SERAPH_ASSIGN_OR_RETURN(query.name, dec->String());
  SERAPH_ASSIGN_OR_RETURN(int64_t next_eval, dec->I64());
  query.next_eval = Timestamp::FromMillis(next_eval);
  SERAPH_ASSIGN_OR_RETURN(query.done, dec->Bool());
  SERAPH_ASSIGN_OR_RETURN(query.disabled, dec->Bool());
  SERAPH_ASSIGN_OR_RETURN(int64_t failures, dec->I64());
  query.consecutive_failures = static_cast<int>(failures);
  SERAPH_ASSIGN_OR_RETURN(query.has_previous, dec->Bool());
  SERAPH_ASSIGN_OR_RETURN(query.previous_result, ReadTable(dec));
  SERAPH_ASSIGN_OR_RETURN(query.stats, ReadQueryStats(dec));
  return query;
}

// ---------------------------------------------------------------------------
// Dead letters
// ---------------------------------------------------------------------------

void WriteDeadLetterEntry(const DeadLetterEntry& entry, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(entry.kind));
  enc->PutString(entry.source);
  enc->PutString(entry.query);
  enc->PutI64(entry.timestamp.millis());
  WriteStatus(entry.error, enc);
  enc->PutI64(entry.attempts);
  enc->PutBool(entry.result.has_value());
  if (entry.result.has_value()) WriteAnnotatedTable(*entry.result, enc);
  enc->PutBool(entry.element != nullptr);
  if (entry.element != nullptr) WriteGraph(*entry.element, enc);
}

Result<DeadLetterEntry> ReadDeadLetterEntry(Decoder* dec) {
  DeadLetterEntry entry;
  SERAPH_ASSIGN_OR_RETURN(uint8_t kind, dec->U8());
  if (kind > static_cast<uint8_t>(DeadLetterEntry::Kind::kEvaluation)) {
    return DecodeError("unknown dead-letter kind " + std::to_string(kind));
  }
  entry.kind = static_cast<DeadLetterEntry::Kind>(kind);
  SERAPH_ASSIGN_OR_RETURN(entry.source, dec->String());
  SERAPH_ASSIGN_OR_RETURN(entry.query, dec->String());
  SERAPH_ASSIGN_OR_RETURN(int64_t millis, dec->I64());
  entry.timestamp = Timestamp::FromMillis(millis);
  SERAPH_RETURN_IF_ERROR(ReadStatus(dec, &entry.error));
  SERAPH_ASSIGN_OR_RETURN(entry.attempts, dec->I64());
  SERAPH_ASSIGN_OR_RETURN(bool has_result, dec->Bool());
  if (has_result) {
    SERAPH_ASSIGN_OR_RETURN(TimeAnnotatedTable result,
                            ReadAnnotatedTable(dec));
    entry.result = std::move(result);
  }
  SERAPH_ASSIGN_OR_RETURN(bool has_element, dec->Bool());
  if (has_element) {
    SERAPH_ASSIGN_OR_RETURN(PropertyGraph graph, ReadGraph(dec));
    entry.element = std::make_shared<const PropertyGraph>(std::move(graph));
  }
  return entry;
}

}  // namespace persist
}  // namespace seraph
