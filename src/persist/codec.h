// Binary snapshot codec for the durability subsystem (docs/INTERNALS.md,
// "Durability & recovery").
//
// The paper's planned substrate (§6: Neo4j + Kafka) gets durability for
// free from Kafka's replayable log; our in-memory substitution
// (DESIGN.md §5) has to persist engine state itself. This header defines
// the on-disk encoding used by persist/checkpoint: a versioned,
// little-endian, length-prefixed format in which every frame carries a
// CRC-32 of its payload, so torn writes (truncation) and bit rot both
// surface as explicit decode errors instead of silently corrupt state.
//
// Layout of every persisted file:
//
//   [u32 magic "SRPH"][u32 format version]
//   frame*            where frame = [u32 payload len][u32 crc32][payload]
//
// Values, records, tables, property graphs, stream elements, query
// execution state, and dead-letter entries all encode into frame
// payloads via the Write*/Read* pairs below. Encoding is deterministic
// (map iteration orders, sorted entity ids), so equal states produce
// byte-identical checkpoints — the property the crash-recovery
// equivalence test leans on.
#ifndef SERAPH_PERSIST_CODEC_H_
#define SERAPH_PERSIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/property_graph.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "stream/graph_stream.h"
#include "table/table.h"
#include "table/time_table.h"
#include "value/value.h"

namespace seraph {
namespace persist {

// "SRPH" in little-endian byte order, followed by the format version.
inline constexpr uint32_t kMagic = 0x48505253;
inline constexpr uint32_t kFormatVersion = 1;

// CRC-32 (IEEE 802.3 polynomial, the Kafka/zlib convention) of `data`.
uint32_t Crc32(std::string_view data);

// Appends little-endian primitives to a growing byte buffer.
class Encoder {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  // Exact bit pattern — floats round-trip without text formatting loss.
  void PutDouble(double v);
  // u32 length + raw bytes.
  void PutString(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Reads the Encoder's encoding back; every accessor fails with
// kInvalidArgument ("checkpoint decode: ...") on truncated input instead
// of reading past the end.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<bool> Bool();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> Double();
  Result<std::string> String();

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Frames ----

// Appends [u32 len][u32 crc32(payload)][payload] to `*out`.
void AppendFrame(std::string_view payload, std::string* out);

// Appends the file header (magic + version) to `*out`.
void AppendFileHeader(std::string* out);

// Iterates the frames of a persisted file, verifying the header once and
// each frame's length and CRC as it goes. Any mismatch (truncation, bit
// flip, bad magic, future version) is a decode error.
class FrameReader {
 public:
  explicit FrameReader(std::string_view file) : data_(file) {}

  // Validates magic + version; must be called (and succeed) before Next.
  Status ReadHeader();

  // The next frame's payload (valid while the backing file buffer lives),
  // or kNotFound when the file ended cleanly on a frame boundary.
  Result<std::string_view> Next();

  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Domain writers/readers ----
// Each Write* produces bytes only Read* consumes; all composites are
// length-prefixed so decoders never scan.

void WriteValue(const Value& value, Encoder* enc);
Result<Value> ReadValue(Decoder* dec);

void WriteRecord(const Record& record, Encoder* enc);
Result<Record> ReadRecord(Decoder* dec);

void WriteTable(const Table& table, Encoder* enc);
Result<Table> ReadTable(Decoder* dec);

void WriteInterval(const TimeInterval& interval, Encoder* enc);
Result<TimeInterval> ReadInterval(Decoder* dec);

void WriteAnnotatedTable(const TimeAnnotatedTable& table, Encoder* enc);
Result<TimeAnnotatedTable> ReadAnnotatedTable(Decoder* dec);

void WriteStatus(const Status& status, Encoder* enc);
// Out-param rather than Result<Status>: Result cannot hold a Status value
// (an OK payload would be indistinguishable from an OK wrapper).
Status ReadStatus(Decoder* dec, Status* out);

// Nodes then relationships, ascending id order (deterministic bytes).
void WriteGraph(const PropertyGraph& graph, Encoder* enc);
Result<PropertyGraph> ReadGraph(Decoder* dec);

void WriteStreamElement(const StreamElement& element, Encoder* enc);
Result<StreamElement> ReadStreamElement(Decoder* dec);

void WriteQueryStats(const QueryStats& stats, Encoder* enc);
Result<QueryStats> ReadQueryStats(Decoder* dec);

void WriteQueryCheckpoint(const QueryCheckpoint& query, Encoder* enc);
Result<QueryCheckpoint> ReadQueryCheckpoint(Decoder* dec);

void WriteDeadLetterEntry(const DeadLetterEntry& entry, Encoder* enc);
Result<DeadLetterEntry> ReadDeadLetterEntry(Decoder* dec);

}  // namespace persist
}  // namespace seraph

#endif  // SERAPH_PERSIST_CODEC_H_
