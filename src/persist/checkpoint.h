// Checkpoint writing for the durability subsystem (docs/INTERNALS.md,
// "Durability & recovery").
//
// A checkpoint is a directory generation numbered by a monotonically
// increasing sequence:
//
//   <dir>/queries-<seq>.seg    engine meta + one frame per query state
//   <dir>/stream-<i>-<seq>.seg one file per stream (name + elements)
//   <dir>/offsets-<seq>.seg    committed consumer offsets
//   <dir>/dlq-<seq>.seg        dead-letter entries
//   <dir>/MANIFEST-<seq>       list of the above with sizes + CRCs
//
// Every segment is written to a temp file, fsync'ed, and renamed into
// place; the MANIFEST — written last, with the same protocol — is the
// commit point. A crash anywhere before the manifest rename leaves the
// previous generation's manifest as the newest valid one, so recovery
// (persist/recovery.h) never observes a half-written checkpoint. Old
// generations are garbage-collected after a successful commit, keeping
// `CheckpointOptions::keep` manifests as corruption fallback.
//
// Fault points (common/fault.h): "checkpoint.write" fires before each
// file write, "checkpoint.rename" before the manifest rename — the chaos
// test kills the writer at both and proves recovery equivalence.
#ifndef SERAPH_PERSIST_CHECKPOINT_H_
#define SERAPH_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "stream/event_queue.h"

namespace seraph {
namespace persist {

// Segment roles recorded in the manifest (stable on-disk values).
enum class SegmentRole : uint8_t {
  kQueries = 0,
  kOffsets = 1,
  kDeadLetters = 2,
  kStream = 3,
};

struct CheckpointOptions {
  // Checkpoint directory; created on first write if absent.
  std::string dir;
  // Manifests (generations) retained after a successful commit. At least
  // 1; 2 (default) keeps one fallback generation for corruption recovery.
  int keep = 2;
  // fsync files and the directory around renames. Disable only in tests
  // where the extra syscalls dominate runtime.
  bool fsync = true;
};

// Writes checkpoints of a ContinuousEngine (plus bound consumer offsets
// and dead letters) on demand or on the engine's batch-barrier cadence.
// Not thread-safe, like the engine it serves.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options);

  // Registers a consumer whose committed offset on `queue` is captured in
  // every checkpoint (the StreamDriver's position). Not owned.
  void BindQueue(std::string consumer, const EventQueue* queue);

  // Couples `queue`'s retention trim to the checkpoint horizon
  // (docs/INTERNALS.md, "Overload & backpressure" / "Durability &
  // recovery"): entries not yet covered by a committed checkpoint are
  // never trimmed — recovery re-seeks consumers to the last checkpointed
  // offsets, so the replay suffix must stay retained. The horizon starts
  // at 0 (nothing durable yet) and, after each successful commit,
  // advances to the minimum offset the new generation recorded for this
  // queue's bound consumers (BindQueue the consumers first), followed by
  // a proactive trim. Not owned.
  void ManageRetention(EventQueue* queue);

  // Registers the dead-letter queue to persist. Not owned.
  void BindDeadLetter(const DeadLetterQueue* dead_letter);

  // Installs `Checkpoint(engine)` as the engine's batch-barrier callback
  // (the engine fires it every EngineOptions::checkpoint_every batches).
  // The manager must outlive the engine's use of the callback.
  void AttachTo(ContinuousEngine* engine);

  // Captures and atomically commits one checkpoint generation. On failure
  // nothing of the new generation is visible to recovery; the previous
  // manifest stays the newest valid one.
  Status Checkpoint(ContinuousEngine* engine);

  int64_t checkpoints_written() const { return checkpoints_written_; }
  int64_t checkpoint_failures() const { return checkpoint_failures_; }
  // Sequence number of the last committed generation (0 before any).
  uint64_t last_seq() const { return last_seq_; }

 private:
  Status WriteFileAtomic(const std::string& final_path,
                         const std::string& contents);
  Status CommitImage(const EngineCheckpoint& image, uint64_t seq,
                     uint64_t* bytes_written);
  void GarbageCollect(uint64_t newest_seq);

  // Advances the checkpoint horizon of every retention-managed queue to
  // the offsets the just-committed generation captured, then trims.
  void AdvanceRetention();

  CheckpointOptions options_;
  std::vector<std::pair<std::string, const EventQueue*>> queues_;
  std::vector<EventQueue*> retention_queues_;
  const DeadLetterQueue* dead_letter_ = nullptr;
  bool seq_initialized_ = false;
  uint64_t next_seq_ = 1;
  uint64_t last_seq_ = 0;
  int64_t checkpoints_written_ = 0;
  int64_t checkpoint_failures_ = 0;
};

// Filename helpers shared with recovery/inspection.
std::string ManifestFileName(uint64_t seq);
// Parses "MANIFEST-<seq>"; returns false for other names.
bool ParseManifestFileName(const std::string& name, uint64_t* seq);

}  // namespace persist
}  // namespace seraph

#endif  // SERAPH_PERSIST_CHECKPOINT_H_
