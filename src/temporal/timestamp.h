// Time instants (Def. 5.1): the library models time as a discrete domain of
// milliseconds since the Unix epoch (UTC). A `Timestamp` is one time
// instant; arithmetic with `Duration` (duration.h) moves along the domain.
//
// Parsing accepts the ISO-8601 subset used throughout the paper, e.g.
// "2022-10-14T14:45", "2022-10-14T14:45:30", "2022-10-14T14:45:30.250",
// and tolerates the paper's informal trailing "h" ("...T14:45h").
#ifndef SERAPH_TEMPORAL_TIMESTAMP_H_
#define SERAPH_TEMPORAL_TIMESTAMP_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/result.h"

namespace seraph {

class Duration;

// A time instant ω ∈ Ω, with millisecond resolution.
class Timestamp {
 public:
  // The epoch (1970-01-01T00:00:00Z).
  constexpr Timestamp() : millis_(0) {}

  // Constructs from a raw millisecond count since the epoch.
  static constexpr Timestamp FromMillis(int64_t millis) {
    return Timestamp(millis);
  }

  // Constructs from UTC civil fields. Fields outside their natural ranges
  // are rejected.
  static Result<Timestamp> FromCivil(int year, int month, int day, int hour,
                                     int minute, int second = 0,
                                     int millisecond = 0);

  // Parses the ISO-8601 subset described in the file comment.
  static Result<Timestamp> Parse(std::string_view text);

  constexpr int64_t millis() const { return millis_; }

  // Formats as "YYYY-MM-DDTHH:MM" (extending to seconds / milliseconds only
  // when they are non-zero).
  std::string ToString() const;

  // Formats the time-of-day as "HH:MM" — the shape used in the paper's
  // tables (e.g. "14:40").
  std::string ToClockString() const;

  friend constexpr bool operator==(Timestamp a, Timestamp b) {
    return a.millis_ == b.millis_;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) {
    return a.millis_ != b.millis_;
  }
  friend constexpr bool operator<(Timestamp a, Timestamp b) {
    return a.millis_ < b.millis_;
  }
  friend constexpr bool operator<=(Timestamp a, Timestamp b) {
    return a.millis_ <= b.millis_;
  }
  friend constexpr bool operator>(Timestamp a, Timestamp b) {
    return a.millis_ > b.millis_;
  }
  friend constexpr bool operator>=(Timestamp a, Timestamp b) {
    return a.millis_ >= b.millis_;
  }

 private:
  explicit constexpr Timestamp(int64_t millis) : millis_(millis) {}

  int64_t millis_;
};

Timestamp operator+(Timestamp t, Duration d);
Timestamp operator-(Timestamp t, Duration d);
// The duration from `b` to `a` (may be negative).
Duration operator-(Timestamp a, Timestamp b);

inline std::ostream& operator<<(std::ostream& os, Timestamp t) {
  return os << t.ToString();
}

}  // namespace seraph

template <>
struct std::hash<seraph::Timestamp> {
  size_t operator()(seraph::Timestamp t) const {
    return std::hash<int64_t>{}(t.millis());
  }
};

#endif  // SERAPH_TEMPORAL_TIMESTAMP_H_
