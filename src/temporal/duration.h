// Time-unit spans (window widths α, slides β, report periods).
//
// Parsing accepts the ISO-8601 duration subset the paper uses: "PT5M",
// "PT1H", "PT30S", "P2D", "PT1H30M", "PT0.5S", "P1DT12H". Year/month
// components are rejected: they have no fixed length, and Seraph windows
// are defined "in time units" (Def. 5.9).
#ifndef SERAPH_TEMPORAL_DURATION_H_
#define SERAPH_TEMPORAL_DURATION_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/result.h"

namespace seraph {

// A signed span of time with millisecond resolution.
class Duration {
 public:
  constexpr Duration() : millis_(0) {}

  static constexpr Duration FromMillis(int64_t ms) { return Duration(ms); }
  static constexpr Duration FromSeconds(int64_t s) {
    return Duration(s * 1000);
  }
  static constexpr Duration FromMinutes(int64_t m) {
    return Duration(m * 60 * 1000);
  }
  static constexpr Duration FromHours(int64_t h) {
    return Duration(h * 60 * 60 * 1000);
  }
  static constexpr Duration FromDays(int64_t d) {
    return Duration(d * 24 * 60 * 60 * 1000);
  }

  // Parses the ISO-8601 duration subset described above.
  static Result<Duration> Parse(std::string_view text);

  constexpr int64_t millis() const { return millis_; }
  constexpr double seconds() const { return millis_ / 1000.0; }
  constexpr double minutes() const { return millis_ / 60000.0; }

  constexpr bool is_zero() const { return millis_ == 0; }
  constexpr bool is_negative() const { return millis_ < 0; }

  // Canonical ISO-8601 rendering, e.g. "PT5M", "P1DT2H30M", "PT0S".
  std::string ToString() const;

  friend constexpr bool operator==(Duration a, Duration b) {
    return a.millis_ == b.millis_;
  }
  friend constexpr bool operator!=(Duration a, Duration b) {
    return a.millis_ != b.millis_;
  }
  friend constexpr bool operator<(Duration a, Duration b) {
    return a.millis_ < b.millis_;
  }
  friend constexpr bool operator<=(Duration a, Duration b) {
    return a.millis_ <= b.millis_;
  }
  friend constexpr bool operator>(Duration a, Duration b) {
    return a.millis_ > b.millis_;
  }
  friend constexpr bool operator>=(Duration a, Duration b) {
    return a.millis_ >= b.millis_;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.millis_ + b.millis_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.millis_ - b.millis_);
  }
  friend constexpr Duration operator*(Duration a, int64_t k) {
    return Duration(a.millis_ * k);
  }
  friend constexpr Duration operator*(int64_t k, Duration a) {
    return Duration(a.millis_ * k);
  }
  friend constexpr Duration operator-(Duration a) {
    return Duration(-a.millis_);
  }

 private:
  explicit constexpr Duration(int64_t millis) : millis_(millis) {}

  int64_t millis_;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToString();
}

}  // namespace seraph

#endif  // SERAPH_TEMPORAL_DURATION_H_
