#include "temporal/duration.h"

#include <cctype>
#include <string>

namespace seraph {

namespace {

// Parses an unsigned decimal number (optionally with a fraction) starting at
// `*pos`; yields the value scaled by `unit_millis`.
bool ParseComponent(std::string_view text, size_t* pos, int64_t unit_millis,
                    int64_t* out_millis) {
  size_t start = *pos;
  int64_t whole = 0;
  while (*pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[*pos]))) {
    whole = whole * 10 + (text[*pos] - '0');
    ++(*pos);
  }
  if (*pos == start) return false;
  double fraction = 0.0;
  if (*pos < text.size() && (text[*pos] == '.' || text[*pos] == ',')) {
    ++(*pos);
    double scale = 0.1;
    size_t frac_start = *pos;
    while (*pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[*pos]))) {
      fraction += (text[*pos] - '0') * scale;
      scale *= 0.1;
      ++(*pos);
    }
    if (*pos == frac_start) return false;
  }
  *out_millis = whole * unit_millis +
                static_cast<int64_t>(fraction * unit_millis + 0.5);
  return true;
}

}  // namespace

Result<Duration> Duration::Parse(std::string_view text) {
  auto fail = [&text]() {
    return Status::InvalidArgument("malformed ISO-8601 duration: '" +
                                   std::string(text) + "'");
  };
  size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && text[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos >= text.size() || (text[pos] != 'P' && text[pos] != 'p')) {
    return fail();
  }
  ++pos;
  int64_t total = 0;
  bool in_time = false;
  bool any_component = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == 'T' || c == 't') {
      in_time = true;
      ++pos;
      continue;
    }
    int64_t component = 0;
    size_t num_start = pos;
    // Peek the number, then dispatch on the unit designator.
    {
      size_t probe = pos;
      while (probe < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[probe])) ||
              text[probe] == '.' || text[probe] == ',')) {
        ++probe;
      }
      if (probe == pos || probe >= text.size()) return fail();
      char unit = text[probe];
      int64_t unit_millis = 0;
      if (!in_time) {
        switch (unit) {
          case 'D':
          case 'd':
            unit_millis = 24LL * 60 * 60 * 1000;
            break;
          case 'W':
          case 'w':
            unit_millis = 7LL * 24 * 60 * 60 * 1000;
            break;
          case 'Y':
          case 'y':
          case 'M':
          case 'm':
            return Status::InvalidArgument(
                "calendar (year/month) durations are not fixed-length and "
                "are not supported in window specifications: '" +
                std::string(text) + "'");
          default:
            return fail();
        }
      } else {
        switch (unit) {
          case 'H':
          case 'h':
            unit_millis = 60LL * 60 * 1000;
            break;
          case 'M':
          case 'm':
            unit_millis = 60LL * 1000;
            break;
          case 'S':
          case 's':
            unit_millis = 1000;
            break;
          default:
            return fail();
        }
      }
      if (!ParseComponent(text, &pos, unit_millis, &component)) return fail();
      if (pos != probe) return fail();
      ++pos;  // Consume the unit designator.
    }
    (void)num_start;
    total += component;
    any_component = true;
  }
  if (!any_component) return fail();
  return Duration::FromMillis(negative ? -total : total);
}

std::string Duration::ToString() const {
  int64_t ms = millis_;
  std::string out;
  if (ms < 0) {
    out += '-';
    ms = -ms;
  }
  out += 'P';
  int64_t days = ms / (24LL * 60 * 60 * 1000);
  ms %= 24LL * 60 * 60 * 1000;
  if (days > 0) out += std::to_string(days) + "D";
  if (ms > 0 || days == 0) {
    out += 'T';
    int64_t hours = ms / (60LL * 60 * 1000);
    ms %= 60LL * 60 * 1000;
    int64_t minutes = ms / (60LL * 1000);
    ms %= 60LL * 1000;
    int64_t seconds = ms / 1000;
    int64_t milliseconds = ms % 1000;
    if (hours > 0) out += std::to_string(hours) + "H";
    if (minutes > 0) out += std::to_string(minutes) + "M";
    if (milliseconds > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(seconds),
                    static_cast<long long>(milliseconds));
      out += buf;
      out += 'S';
    } else if (seconds > 0 || (hours == 0 && minutes == 0)) {
      out += std::to_string(seconds) + "S";
    }
  }
  return out;
}

}  // namespace seraph
