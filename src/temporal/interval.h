// Time intervals τ = [ω_l, ω_r) (Def. 5.1) and the bounds policies used to
// test stream-element membership (see DESIGN.md §2 on the paper's
// formal-vs-example discrepancy).
#ifndef SERAPH_TEMPORAL_INTERVAL_H_
#define SERAPH_TEMPORAL_INTERVAL_H_

#include <ostream>
#include <string>

#include "temporal/duration.h"
#include "temporal/timestamp.h"

namespace seraph {

// Which endpoints of an interval include a stream element's timestamp.
enum class IntervalBounds {
  kLeftClosedRightOpen,  // [l, r)  — literal Def. 5.1 / 5.9.
  kLeftOpenRightClosed,  // (l, r]  — matches all worked examples (§5.4).
};

// A bounded span of the time domain with start/end instants. Membership is
// interpreted under an explicit IntervalBounds policy.
struct TimeInterval {
  Timestamp start;
  Timestamp end;

  Duration width() const { return end - start; }

  bool Contains(Timestamp t, IntervalBounds bounds) const {
    switch (bounds) {
      case IntervalBounds::kLeftClosedRightOpen:
        return start <= t && t < end;
      case IntervalBounds::kLeftOpenRightClosed:
        return start < t && t <= end;
    }
    return false;
  }

  bool empty() const { return !(start < end); }

  std::string ToString() const {
    return "[" + start.ToString() + ", " + end.ToString() + ")";
  }

  friend bool operator==(const TimeInterval& a, const TimeInterval& b) {
    return a.start == b.start && a.end == b.end;
  }
};

inline std::ostream& operator<<(std::ostream& os, const TimeInterval& t) {
  return os << t.ToString();
}

}  // namespace seraph

#endif  // SERAPH_TEMPORAL_INTERVAL_H_
