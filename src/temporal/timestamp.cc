#include "temporal/timestamp.h"

#include <cctype>
#include <cstdio>

#include "temporal/duration.h"

namespace seraph {

namespace {

constexpr int64_t kMillisPerSecond = 1000;
constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;

// Days from the civil epoch 1970-01-01 (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                           // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;   // [0, 146096]
  return era * 146097 + doe - 719468;
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                        // [0, 146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;   // [0, 399]
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

// Parses exactly `width` decimal digits starting at `*pos`; advances `*pos`.
bool ParseDigits(std::string_view text, size_t* pos, int width, int* out) {
  if (*pos + width > text.size()) return false;
  int v = 0;
  for (int i = 0; i < width; ++i) {
    char c = text[*pos + i];
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  *pos += width;
  *out = v;
  return true;
}

}  // namespace

Result<Timestamp> Timestamp::FromCivil(int year, int month, int day, int hour,
                                       int minute, int second,
                                       int millisecond) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range");
  }
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59 || millisecond < 0 || millisecond > 999) {
    return Status::InvalidArgument("time-of-day out of range");
  }
  int64_t days = DaysFromCivil(year, month, day);
  int64_t ms = days * kMillisPerDay + hour * kMillisPerHour +
               minute * kMillisPerMinute + second * kMillisPerSecond +
               millisecond;
  return Timestamp::FromMillis(ms);
}

Result<Timestamp> Timestamp::Parse(std::string_view text) {
  size_t pos = 0;
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  int millisecond = 0;
  auto fail = [&text]() {
    return Status::InvalidArgument("malformed ISO-8601 datetime: '" +
                                   std::string(text) + "'");
  };
  if (!ParseDigits(text, &pos, 4, &year)) return fail();
  if (pos >= text.size() || text[pos] != '-') return fail();
  ++pos;
  if (!ParseDigits(text, &pos, 2, &month)) return fail();
  if (pos >= text.size() || text[pos] != '-') return fail();
  ++pos;
  if (!ParseDigits(text, &pos, 2, &day)) return fail();
  if (pos < text.size()) {
    if (text[pos] != 'T' && text[pos] != ' ') return fail();
    ++pos;
    if (!ParseDigits(text, &pos, 2, &hour)) return fail();
    if (pos >= text.size() || text[pos] != ':') return fail();
    ++pos;
    if (!ParseDigits(text, &pos, 2, &minute)) return fail();
    if (pos < text.size() && text[pos] == ':') {
      ++pos;
      if (!ParseDigits(text, &pos, 2, &second)) return fail();
      if (pos < text.size() && text[pos] == '.') {
        ++pos;
        if (!ParseDigits(text, &pos, 3, &millisecond)) return fail();
      }
    }
    // The paper writes instants like "2022-10-14T14:45h"; tolerate the
    // trailing hour marker and an explicit UTC 'Z'.
    if (pos < text.size() && (text[pos] == 'h' || text[pos] == 'Z')) ++pos;
  }
  if (pos != text.size()) return fail();
  return FromCivil(year, month, day, hour, minute, second, millisecond);
}

std::string Timestamp::ToString() const {
  int64_t ms = millis_;
  int64_t days = ms / kMillisPerDay;
  int64_t rem = ms % kMillisPerDay;
  if (rem < 0) {
    rem += kMillisPerDay;
    --days;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  int hour = static_cast<int>(rem / kMillisPerHour);
  int minute = static_cast<int>((rem / kMillisPerMinute) % 60);
  int second = static_cast<int>((rem / kMillisPerSecond) % 60);
  int milli = static_cast<int>(rem % kMillisPerSecond);
  char buf[40];
  if (milli != 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d", y, m,
                  d, hour, minute, second, milli);
  } else if (second != 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d", y, m, d,
                  hour, minute, second);
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d", y, m, d, hour,
                  minute);
  }
  return buf;
}

std::string Timestamp::ToClockString() const {
  int64_t rem = millis_ % kMillisPerDay;
  if (rem < 0) rem += kMillisPerDay;
  int hour = static_cast<int>(rem / kMillisPerHour);
  int minute = static_cast<int>((rem / kMillisPerMinute) % 60);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d:%02d", hour, minute);
  return buf;
}

Timestamp operator+(Timestamp t, Duration d) {
  return Timestamp::FromMillis(t.millis() + d.millis());
}

Timestamp operator-(Timestamp t, Duration d) {
  return Timestamp::FromMillis(t.millis() - d.millis());
}

Duration operator-(Timestamp a, Timestamp b) {
  return Duration::FromMillis(a.millis() - b.millis());
}

}  // namespace seraph
