// Pluggable element partitioners for the sharded serving tier
// (docs/INTERNALS.md, "Sharded serving tier").
//
// A Partitioner answers two questions about one logical stream of a
// sharded fleet:
//  * dynamically — which shards must receive this element (ShardsFor);
//  * statically — where the stream's elements can live at all
//    (placement), which is what query placement consumes: a query
//    windowing over a broadcast stream can run on any single shard, over
//    a fixed-shard stream only on that shard, and over a scattered
//    (hash-partitioned) stream must run on every shard — its results are
//    then a per-shard union, outside the bit-identity contract.
//
// The label/type-predicate partitioning named in the roadmap composes a
// StreamRouter predicate (HasLabel / HasRelationshipType) selecting the
// logical stream with FixedShard pinning that stream to one engine.
#ifndef SERAPH_SHARD_PARTITIONER_H_
#define SERAPH_SHARD_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "temporal/timestamp.h"

namespace seraph {
namespace shard {

enum class PlacementKind {
  kBroadcast,  // Every shard holds the stream's full contents.
  kFixed,      // Every element lands on one statically known shard.
  kScattered,  // Elements spread across shards by content.
};

struct StreamPlacement {
  PlacementKind kind = PlacementKind::kBroadcast;
  int fixed_shard = -1;  // Meaningful only for kFixed.
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // Shard indices in [0, num_shards) that must receive this element,
  // deduplicated and ascending. Must be deterministic in (graph,
  // timestamp, num_shards) — routing is part of the replay-exactness
  // contract.
  virtual std::vector<int> ShardsFor(const PropertyGraph& graph,
                                     Timestamp timestamp,
                                     int num_shards) const = 0;

  // The static shape of the assignment ShardsFor produces.
  virtual StreamPlacement placement(int num_shards) const = 0;

  // Human-readable name for logs and status JSON.
  virtual const char* name() const = 0;
};

// Stable 64-bit FNV-1a. std::hash is not pinned across standard
// libraries, but shard assignment must survive restarts and match across
// builds, so hash routing and query homing use this.
uint64_t StableHash64(const void* data, size_t size);
uint64_t StableHash64(const std::string& text);

// Every shard receives every element (queries that must see the whole
// stream).
std::shared_ptr<const Partitioner> Broadcast();

// Every element lands on `shard_index`. Combined with a route predicate
// (HasLabel / HasRelationshipType / NodePropertyEquals) this is the
// label/type-partitioned placement.
std::shared_ptr<const Partitioner> FixedShard(int shard_index);

// Hash-partitions by the element's smallest node id (an element's
// entities co-locate; elements touching the same anchor node land on the
// same shard). Elements with no nodes hash to shard 0.
std::shared_ptr<const Partitioner> HashByNodeId();

}  // namespace shard
}  // namespace seraph

#endif  // SERAPH_SHARD_PARTITIONER_H_
