#include "shard/partitioner.h"

#include <algorithm>
#include <cstring>

namespace seraph {
namespace shard {

uint64_t StableHash64(const void* data, size_t size) {
  // FNV-1a, 64-bit (public-domain constants).
  uint64_t h = 14695981039346656037ull;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t StableHash64(const std::string& text) {
  return StableHash64(text.data(), text.size());
}

namespace {

class BroadcastPartitioner final : public Partitioner {
 public:
  std::vector<int> ShardsFor(const PropertyGraph&, Timestamp,
                             int num_shards) const override {
    std::vector<int> all(static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) all[static_cast<size_t>(i)] = i;
    return all;
  }
  StreamPlacement placement(int) const override {
    return StreamPlacement{PlacementKind::kBroadcast, -1};
  }
  const char* name() const override { return "broadcast"; }
};

class FixedShardPartitioner final : public Partitioner {
 public:
  explicit FixedShardPartitioner(int shard_index) : shard_(shard_index) {}
  std::vector<int> ShardsFor(const PropertyGraph&, Timestamp,
                             int num_shards) const override {
    // Clamp defensively so a mis-sized fleet still routes somewhere
    // deterministic; placement() reports the same clamped index.
    return {Clamped(num_shards)};
  }
  StreamPlacement placement(int num_shards) const override {
    return StreamPlacement{PlacementKind::kFixed, Clamped(num_shards)};
  }
  const char* name() const override { return "fixed"; }

 private:
  int Clamped(int num_shards) const {
    if (num_shards <= 0) return 0;
    return std::clamp(shard_, 0, num_shards - 1);
  }
  int shard_;
};

class HashByNodeIdPartitioner final : public Partitioner {
 public:
  std::vector<int> ShardsFor(const PropertyGraph& graph, Timestamp,
                             int num_shards) const override {
    if (num_shards <= 1) return {0};
    int64_t anchor = 0;
    bool any = false;
    for (NodeId id : graph.NodeIds()) {
      if (!any || id.value < anchor) {
        anchor = id.value;
        any = true;
      }
    }
    if (!any) return {0};
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(anchor));
    std::memcpy(&bits, &anchor, sizeof(bits));
    uint64_t h = StableHash64(&bits, sizeof(bits));
    return {static_cast<int>(h % static_cast<uint64_t>(num_shards))};
  }
  StreamPlacement placement(int num_shards) const override {
    if (num_shards <= 1) return StreamPlacement{PlacementKind::kFixed, 0};
    return StreamPlacement{PlacementKind::kScattered, -1};
  }
  const char* name() const override { return "hash_by_node_id"; }
};

}  // namespace

std::shared_ptr<const Partitioner> Broadcast() {
  static const auto kInstance = std::make_shared<const BroadcastPartitioner>();
  return kInstance;
}

std::shared_ptr<const Partitioner> FixedShard(int shard_index) {
  return std::make_shared<const FixedShardPartitioner>(shard_index);
}

std::shared_ptr<const Partitioner> HashByNodeId() {
  static const auto kInstance =
      std::make_shared<const HashByNodeIdPartitioner>();
  return kInstance;
}

}  // namespace shard
}  // namespace seraph
