// The sharded serving tier (docs/INTERNALS.md, "Sharded serving tier"):
// a ShardedEngine owns N per-shard ContinuousEngine instances, each with
// its own bounded EventQueues, StreamDrivers, thread pool, and checkpoint
// generation directory. The coordinator routes ingest through pluggable
// partitioners (shard/partitioner.h), lets every shard's batch barrier
// advance independently, and merges EMIT results back into one
// deterministic (t, query, shard)-ordered output stream:
//
//   ShardedEngine fleet({.shards = 4});
//   fleet.AddRoute("rentals", HasRelationshipType("rentedAt"),
//                  shard::FixedShard(1));
//   fleet.RegisterText("REGISTER QUERY q ...");   // placed by its streams
//   fleet.AddSink(&sink);                         // merged, ordered output
//   fleet.Ingest(graph, t);                       // partitioned fan-out
//   fleet.PumpAll();                              // pump shards + merge
//   fleet.Finish();                               // flush everything
//
// Determinism contract: a query whose MATCH streams are all broadcast (or
// pinned to one fixed shard) runs on exactly one shard, and the merged
// output is bit-identical — content and order — to a single-engine run
// over the same routed streams (proven by tests/sharded_equivalence_test).
// Queries over scattered (hash-partitioned) streams run on every shard
// and produce the per-shard union, outside that contract.
//
// Emissions are held back per shard until the fleet watermark — the
// slowest shard's delivered horizon — passes their evaluation time, so
// merged order never depends on pump interleaving. Finish() (and
// Checkpoint()) flush the buffers, releasing everything in merged order.
#ifndef SERAPH_SHARD_SHARDED_ENGINE_H_
#define SERAPH_SHARD_SHARDED_ENGINE_H_

#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "persist/checkpoint.h"
#include "seraph/continuous_engine.h"
#include "seraph/stream_driver.h"
#include "seraph/stream_router.h"
#include "shard/partitioner.h"
#include "stream/event_queue.h"

namespace seraph {
namespace shard {

struct ShardedEngineOptions {
  // Number of shards (clamped to >= 1).
  int shards = 1;
  // Per-shard engine configuration (thread pools, delta matching,
  // deadlines, ...). `dead_letter` is overridden per shard;
  // `checkpoint_every` below overrides the engine cadence.
  EngineOptions engine;
  // Per-lane ingest queue bound + overflow policy.
  EventQueue::Options queue;
  // Elements fetched per driver poll.
  size_t poll_batch = 64;
  // Durability root; empty = in-memory only. Shard i's checkpoint
  // generations live in <checkpoint_dir>/shard-<i>, alongside per-lane
  // ingest event logs (ingest-<stream>.log) that Restore() replays to
  // refill the queues, so a serving restart resumes replay-exact.
  std::string checkpoint_dir;
  // Generations retained per shard.
  int checkpoint_keep = 2;
  bool checkpoint_fsync = true;
  // When > 0 (and checkpoint_dir is set), every shard checkpoints at its
  // own batch barrier each N completed batches — barriers stay
  // independent; no fleet-wide freeze.
  int64_t checkpoint_every = 0;
};

// Where a query was placed (the shard set its partitioners imply).
struct QueryPlacement {
  std::string name;
  std::vector<int> shards;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // ---- Routing ----

  // Routes elements matching `predicate` into logical stream `stream` on
  // the shards `partitioner` selects. One element may match any number
  // of routes; re-adding a stream replaces its route. Lanes (queue +
  // driver per (shard, stream)) are created eagerly on every shard the
  // partitioner can reach. Routes must be configured before Ingest and
  // identically re-declared before Restore().
  //
  // A fresh ShardedEngine starts with the default route: every element →
  // default stream ("") on every shard (broadcast), mirroring
  // ContinuousEngine::Ingest. AddRoute("") replaces it.
  void AddRoute(std::string stream, StreamRouter::Predicate predicate,
                std::shared_ptr<const Partitioner> partitioner);

  // ---- Query registry ----

  // Parses and registers Seraph query text on the shard set its MATCH
  // streams imply: all-broadcast streams → one home shard (stable hash of
  // the query name); a fixed-shard stream → that shard; a scattered
  // stream → every shard (union semantics). Mixing two different fixed
  // shards, or scattered with fixed, fails with kInvalidArgument.
  Result<QueryPlacement> RegisterText(std::string_view seraph_text);

  Result<QueryPlacement> PlacementFor(const std::string& name) const;
  std::vector<std::string> QueryNames() const;
  bool QueryDisabled(const std::string& name) const;
  Status ReviveQuery(const std::string& name);
  // Stats summed across the query's placement shards.
  Result<QueryStats> StatsFor(const std::string& name) const;
  // The /queries status document (same shape as the single-engine one,
  // plus each query's shard set).
  std::string QueriesStatusJson() const;

  // ---- Sinks ----

  // Receives the merged fleet output in deterministic (t, query, shard)
  // order. Sink failures are counted, never fatal. Not owned; add before
  // pumping.
  void AddSink(EmitSink* sink);

  // ---- Ingest + evaluation ----

  // Routes one element through every matching route's partitioner into
  // the selected shards' lane queues (appending to the durable ingest log
  // when configured). Timestamps must be non-decreasing across calls.
  // Bounded lanes exert backpressure: a full queue pumps its own shard
  // (never freezing the others) and retries. Returns the number of
  // (shard, stream) deliveries; unrouted elements count into
  // seraph_router_dropped_total.
  Result<int> Ingest(std::shared_ptr<const PropertyGraph> graph,
                     Timestamp timestamp);
  Result<int> Ingest(PropertyGraph graph, Timestamp timestamp);

  // Pumps every shard's drivers (each advancing its own engine clock /
  // batch barrier independently), then releases merged emissions up to
  // the fleet watermark.
  Status PumpAll();

  // Finishes every driver and flushes all buffered emissions in merged
  // order. The fleet stays usable afterwards.
  Status Finish();

  // ---- Durability ----

  // Flushes buffered emissions, then commits one checkpoint generation
  // per shard (requires checkpoint_dir).
  Status Checkpoint();

  // Restores every shard from its newest valid checkpoint generation and
  // replays its ingest logs to refill the lane queues; shards without a
  // checkpoint cold-start from their logs alone. Call on a fresh
  // ShardedEngine with the same routes declared and all queries
  // re-registered (recovery re-creates definitions first, like
  // persist::RecoverAll). The next PumpAll replays each shard's suffix.
  Status Restore();

  // In-memory capture/restore (coordinated across shards; the sharded
  // mirror of ContinuousEngine::CaptureCheckpoint/RestoreFrom). Capture
  // flushes buffered emissions first, so a run split at a capture point
  // concatenates exactly. RestoreFrom requires a fresh fleet with
  // identical routes and queries re-registered.
  std::vector<EngineCheckpoint> CaptureCheckpoints();
  Status RestoreFrom(const std::vector<EngineCheckpoint>& images);

  // ---- Introspection ----

  int num_shards() const { return static_cast<int>(shards_.size()); }
  // The per-shard engine (tests / metrics aggregation). Valid index only.
  ContinuousEngine* shard_engine(int shard_index);
  const ContinuousEngine* shard_engine(int shard_index) const;
  // Coordinator registry: fleet watermark, per-shard health gauges,
  // router counters, merge counters.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // The slowest shard's watermark (event-time millis; 0 before ingest).
  int64_t FleetWatermarkMillis() const;
  // Merged emissions released to sinks so far.
  int64_t released_total() const { return released_total_; }

 private:
  struct Lane {
    std::unique_ptr<EventQueue> queue;
    std::unique_ptr<StreamDriver> driver;
    std::string consumer;
    std::string log_path;  // Empty when not durable.
    std::ofstream log;     // Lazily opened append handle for log_path.
  };

  struct RouteEntry {
    std::string stream;
    StreamRouter::Predicate predicate;
    std::shared_ptr<const Partitioner> partitioner;
    Counter* routed = nullptr;
  };

  // Buffered, not-yet-released emission of one shard.
  struct PendingEmit {
    Timestamp t;
    std::string query;
    int shard = 0;
    TimeAnnotatedTable table;
  };

  class BufferSink;

  struct Shard {
    std::unique_ptr<ContinuousEngine> engine;
    DeadLetterQueue dead_letters;
    std::unique_ptr<persist::CheckpointManager> manager;
    std::unique_ptr<BufferSink> sink;
    std::deque<PendingEmit> buffered;
    // Lanes keyed by logical stream name.
    std::map<std::string, std::unique_ptr<Lane>> lanes;
    // Max event timestamp produced to any lane; PumpShard advances the
    // shard engine's clock to this once every lane is drained.
    int64_t watermark_millis = 0;
    bool any_ingested = false;
    Gauge* watermark_gauge = nullptr;
    Gauge* queue_depth_gauge = nullptr;
    Gauge* buffered_gauge = nullptr;
  };

  std::string ShardDir(int shard_index) const;
  bool durable() const { return !options_.checkpoint_dir.empty(); }
  Lane* EnsureLane(int shard_index, const std::string& stream);
  Status ProduceWithBackpressure(int shard_index, Lane* lane,
                                 std::shared_ptr<const PropertyGraph> graph,
                                 Timestamp timestamp);
  Status AppendIngestLog(Lane* lane,
                         const std::shared_ptr<const PropertyGraph>& graph,
                         Timestamp timestamp);
  Status ReplayIngestLog(int shard_index, Lane* lane);
  // Drains one shard's lanes into its engine; lane drivers never touch
  // the shard clock, so with `advance` the coordinator then advances it
  // once, to the shard watermark (the single-engine ingest-then-advance
  // cadence). Backpressure pumps pass false: the element awaiting queue
  // space may share its timestamp with a queued sibling.
  Status PumpShard(int shard_index, bool advance);
  // Releases buffered emissions: everything when `flush_all`, else those
  // at or below the fleet watermark; delivers in (t, query, shard) order.
  void MergeAndRelease(bool flush_all);
  void RefreshGauges();
  int HomeShard(const std::string& query_name) const;
  const RouteEntry* FindRoute(const std::string& stream) const;

  ShardedEngineOptions options_;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RouteEntry> routes_;
  std::vector<EmitSink*> sinks_;
  std::map<std::string, std::vector<int>> placements_;
  // Query definitions in registration order (what Restore re-registers
  // from; the serving tier's source of truth for definitions).
  std::vector<std::string> query_texts_;
  int64_t released_total_ = 0;
  Counter* dropped_counter_ = nullptr;
  Counter* released_counter_ = nullptr;
  Counter* sink_failures_ = nullptr;
  Gauge* fleet_watermark_gauge_ = nullptr;
};

}  // namespace shard
}  // namespace seraph

#endif  // SERAPH_SHARD_SHARDED_ENGINE_H_
