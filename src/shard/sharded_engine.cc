#include "shard/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "io/graph_text.h"
#include "persist/recovery.h"
#include "seraph/seraph_parser.h"

namespace seraph {
namespace shard {

namespace {

// "ingest-<sanitized>-<hash>.log": readable for humans, collision-safe
// for streams whose names only differ in escaped characters.
std::string IngestLogFileName(const std::string& stream) {
  std::string sanitized;
  for (char c : stream) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    sanitized.push_back(safe ? c : '_');
  }
  if (sanitized.empty()) sanitized = "default";
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(StableHash64(stream)));
  return "ingest-" + sanitized + "-" + hex + ".log";
}

std::string StreamLabel(const std::string& stream) {
  return stream.empty() ? "<default>" : stream;
}

}  // namespace

// Buffers one shard's emissions for the coordinator merge. Runs on the
// coordinator thread (driver pumps are coordinator-driven), so plain
// deque access is safe.
class ShardedEngine::BufferSink final : public EmitSink {
 public:
  BufferSink(std::deque<PendingEmit>* buffer, int shard_index)
      : buffer_(buffer), shard_(shard_index) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override {
    buffer_->push_back(PendingEmit{evaluation_time, query_name, shard_, table});
    return Status::OK();
  }

 private:
  std::deque<PendingEmit>* buffer_;
  int shard_;
};

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(std::move(options)) {
  if (options_.shards < 1) options_.shards = 1;
  dropped_counter_ = metrics_.CounterFor("seraph_router_dropped_total");
  released_counter_ = metrics_.CounterFor("seraph_sharded_released_total");
  sink_failures_ =
      metrics_.CounterFor("seraph_sharded_sink_failures_total");
  fleet_watermark_gauge_ = metrics_.GaugeFor("seraph_fleet_watermark_millis");
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    EngineOptions engine_options = options_.engine;
    engine_options.dead_letter = &shard->dead_letters;
    engine_options.checkpoint_every = durable() ? options_.checkpoint_every : 0;
    shard->engine = std::make_unique<ContinuousEngine>(engine_options);
    shard->sink = std::make_unique<BufferSink>(&shard->buffered, i);
    shard->engine->AddSink(shard->sink.get(), "shard-buffer");
    const std::string label = std::to_string(i);
    shard->watermark_gauge =
        metrics_.GaugeFor("seraph_shard_watermark_millis", {{"shard", label}});
    shard->queue_depth_gauge =
        metrics_.GaugeFor("seraph_shard_queue_depth", {{"shard", label}});
    shard->buffered_gauge =
        metrics_.GaugeFor("seraph_shard_buffered_emits", {{"shard", label}});
    if (durable()) {
      persist::CheckpointOptions checkpoint_options;
      checkpoint_options.dir = ShardDir(i);
      checkpoint_options.keep = options_.checkpoint_keep;
      checkpoint_options.fsync = options_.checkpoint_fsync;
      shard->manager =
          std::make_unique<persist::CheckpointManager>(checkpoint_options);
      shard->manager->BindDeadLetter(&shard->dead_letters);
      shard->manager->AttachTo(shard->engine.get());
    }
    shards_.push_back(std::move(shard));
  }
  AddRoute("", AcceptAll(), Broadcast());
}

ShardedEngine::~ShardedEngine() = default;

std::string ShardedEngine::ShardDir(int shard_index) const {
  return options_.checkpoint_dir + "/shard-" + std::to_string(shard_index);
}

ShardedEngine::Lane* ShardedEngine::EnsureLane(int shard_index,
                                               const std::string& stream) {
  Shard* shard = shards_[static_cast<size_t>(shard_index)].get();
  std::unique_ptr<Lane>& slot = shard->lanes[stream];
  if (slot == nullptr) {
    slot = std::make_unique<Lane>();
    Lane* lane = slot.get();
    lane->queue = std::make_unique<EventQueue>(options_.queue);
    lane->consumer = "shard-" + std::to_string(shard_index) + "/" +
                     StreamLabel(stream);
    lane->queue->Subscribe(lane->consumer);
    StreamDriver::Options driver_options;
    driver_options.consumer = lane->consumer;
    driver_options.target_stream = stream;
    driver_options.poll_batch = options_.poll_batch;
    driver_options.dead_letter = &shard->dead_letters;
    // Lane drivers deliver only; the coordinator owns the shard clock
    // (PumpShard advances it once per pump, to the shard watermark), so
    // equal-timestamp elements split across lanes are all delivered
    // before any evaluation at their instant fires.
    driver_options.advance_engine_clock = false;
    lane->driver = std::make_unique<StreamDriver>(
        lane->queue.get(), shard->engine.get(), driver_options);
    // Shed elements stay observable (the overload partition invariant).
    DeadLetterQueue* dead_letters = &shard->dead_letters;
    const std::string consumer = lane->consumer;
    lane->queue->SetShedCallback(
        [dead_letters, consumer](const StreamElement& element) {
          dead_letters->AddElement(
              consumer, element,
              Status::Unavailable("shed by bounded shard queue"), 0);
        });
    if (durable()) {
      shard->manager->BindQueue(lane->consumer, lane->queue.get());
      shard->manager->ManageRetention(lane->queue.get());
      lane->log_path = ShardDir(shard_index) + "/" + IngestLogFileName(stream);
    }
  }
  return slot.get();
}

void ShardedEngine::AddRoute(std::string stream,
                             StreamRouter::Predicate predicate,
                             std::shared_ptr<const Partitioner> partitioner) {
  RouteEntry* entry = nullptr;
  for (RouteEntry& route : routes_) {
    if (route.stream == stream) {
      route.predicate = std::move(predicate);
      route.partitioner = std::move(partitioner);
      entry = &route;
      break;
    }
  }
  if (entry == nullptr) {
    Counter* routed = metrics_.CounterFor("seraph_router_routed_total",
                                          {{"stream", StreamLabel(stream)}});
    routes_.push_back(RouteEntry{std::move(stream), std::move(predicate),
                                 std::move(partitioner), routed});
    entry = &routes_.back();
  }
  // Lanes are created eagerly on every shard the partitioner can reach,
  // so the (shard, stream) topology — and with it the durable consumer
  // names — is a pure function of the declared routes.
  StreamPlacement placement = entry->partitioner->placement(num_shards());
  if (placement.kind == PlacementKind::kFixed) {
    EnsureLane(placement.fixed_shard, entry->stream);
  } else {
    for (int s = 0; s < num_shards(); ++s) EnsureLane(s, entry->stream);
  }
}

const ShardedEngine::RouteEntry* ShardedEngine::FindRoute(
    const std::string& stream) const {
  for (const RouteEntry& route : routes_) {
    if (route.stream == stream) return &route;
  }
  return nullptr;
}

int ShardedEngine::HomeShard(const std::string& query_name) const {
  return static_cast<int>(StableHash64(query_name) %
                          static_cast<uint64_t>(num_shards()));
}

Result<QueryPlacement> ShardedEngine::RegisterText(
    std::string_view seraph_text) {
  SERAPH_ASSIGN_OR_RETURN(RegisteredQuery parsed,
                          ParseSeraphQuery(seraph_text));
  if (placements_.contains(parsed.name)) {
    return Status::AlreadyExists("query '" + parsed.name +
                                 "' already registered");
  }
  bool scattered = false;
  int fixed = -1;
  for (const Clause& clause : parsed.clauses) {
    const auto* match = std::get_if<MatchClause>(&clause);
    if (match == nullptr) continue;
    const RouteEntry* route = FindRoute(match->from_stream);
    // A stream nothing routes into is empty on every shard; treat it as
    // broadcast so the query still gets a home.
    StreamPlacement placement =
        route != nullptr ? route->partitioner->placement(num_shards())
                         : StreamPlacement{};
    switch (placement.kind) {
      case PlacementKind::kBroadcast:
        break;
      case PlacementKind::kFixed:
        if (fixed >= 0 && fixed != placement.fixed_shard) {
          return Status::InvalidArgument(
              "query '" + parsed.name +
              "' windows over streams pinned to different shards (" +
              std::to_string(fixed) + " vs " +
              std::to_string(placement.fixed_shard) + ")");
        }
        fixed = placement.fixed_shard;
        break;
      case PlacementKind::kScattered:
        scattered = true;
        break;
    }
  }
  if (scattered && fixed >= 0) {
    return Status::InvalidArgument(
        "query '" + parsed.name +
        "' mixes a scattered stream with a fixed-shard stream; no single "
        "shard sees both");
  }
  std::vector<int> where;
  if (scattered) {
    for (int s = 0; s < num_shards(); ++s) where.push_back(s);
  } else if (fixed >= 0) {
    where.push_back(fixed);
  } else {
    where.push_back(HomeShard(parsed.name));
  }
  for (size_t i = 0; i < where.size(); ++i) {
    Status status = shards_[static_cast<size_t>(where[i])]->engine->RegisterText(
        seraph_text);
    if (!status.ok()) {
      // Keep registration atomic across the placement set.
      for (size_t j = 0; j < i; ++j) {
        shards_[static_cast<size_t>(where[j])]->engine->Unregister(parsed.name);
      }
      return status;
    }
  }
  placements_[parsed.name] = where;
  query_texts_.push_back(std::string(seraph_text));
  return QueryPlacement{parsed.name, where};
}

Result<QueryPlacement> ShardedEngine::PlacementFor(
    const std::string& name) const {
  auto it = placements_.find(name);
  if (it == placements_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  return QueryPlacement{name, it->second};
}

std::vector<std::string> ShardedEngine::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(placements_.size());
  for (const auto& [name, shards] : placements_) names.push_back(name);
  return names;
}

bool ShardedEngine::QueryDisabled(const std::string& name) const {
  auto it = placements_.find(name);
  if (it == placements_.end()) return false;
  for (int s : it->second) {
    if (shards_[static_cast<size_t>(s)]->engine->QueryDisabled(name)) {
      return true;
    }
  }
  return false;
}

Status ShardedEngine::ReviveQuery(const std::string& name) {
  auto it = placements_.find(name);
  if (it == placements_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  for (int s : it->second) {
    SERAPH_RETURN_IF_ERROR(
        shards_[static_cast<size_t>(s)]->engine->ReviveQuery(name));
  }
  return Status::OK();
}

Result<QueryStats> ShardedEngine::StatsFor(const std::string& name) const {
  auto it = placements_.find(name);
  if (it == placements_.end()) {
    return Status::NotFound("query '" + name + "' is not registered");
  }
  QueryStats total;
  for (int s : it->second) {
    SERAPH_ASSIGN_OR_RETURN(
        QueryStats stats,
        shards_[static_cast<size_t>(s)]->engine->StatsFor(name));
    total.evaluations += stats.evaluations;
    total.reused_results += stats.reused_results;
    total.rows_emitted += stats.rows_emitted;
    total.result_rows += stats.result_rows;
    total.snapshots_incremental += stats.snapshots_incremental;
    total.snapshots_rebuilt += stats.snapshots_rebuilt;
    total.window_elements_added += stats.window_elements_added;
    total.window_elements_evicted += stats.window_elements_evicted;
    total.fresh_executions += stats.fresh_executions;
    total.window_micros += stats.window_micros;
    total.snapshot_micros += stats.snapshot_micros;
    total.match_micros += stats.match_micros;
    total.policy_micros += stats.policy_micros;
    total.sink_micros += stats.sink_micros;
    total.eval_failures += stats.eval_failures;
    if (!stats.last_error.ok()) total.last_error = stats.last_error;
  }
  return total;
}

std::string ShardedEngine::QueriesStatusJson() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& [name, shard_set] : placements_) {
    if (!first) os << ",";
    first = false;
    int64_t evaluations = 0;
    auto stats = StatsFor(name);
    if (stats.ok()) evaluations = stats->evaluations;
    os << "{\"name\":\"" << name << "\",\"disabled\":"
       << (QueryDisabled(name) ? "true" : "false") << ",\"evaluations\":"
       << evaluations << ",\"shards\":[";
    for (size_t i = 0; i < shard_set.size(); ++i) {
      if (i > 0) os << ",";
      os << shard_set[i];
    }
    os << "]}";
  }
  os << "]";
  return os.str();
}

void ShardedEngine::AddSink(EmitSink* sink) { sinks_.push_back(sink); }

Result<int> ShardedEngine::Ingest(std::shared_ptr<const PropertyGraph> graph,
                                  Timestamp timestamp) {
  int deliveries = 0;
  bool matched = false;
  for (RouteEntry& route : routes_) {
    if (!route.predicate(*graph, timestamp)) continue;
    matched = true;
    for (int s : route.partitioner->ShardsFor(*graph, timestamp,
                                              num_shards())) {
      if (s < 0 || s >= num_shards()) {
        return Status::Internal("partitioner returned out-of-range shard " +
                                std::to_string(s));
      }
      Lane* lane = EnsureLane(s, route.stream);
      SERAPH_RETURN_IF_ERROR(
          ProduceWithBackpressure(s, lane, graph, timestamp));
      SERAPH_RETURN_IF_ERROR(AppendIngestLog(lane, graph, timestamp));
      Shard* shard = shards_[static_cast<size_t>(s)].get();
      shard->watermark_millis =
          std::max(shard->watermark_millis, timestamp.millis());
      shard->any_ingested = true;
      route.routed->Increment();
      ++deliveries;
    }
  }
  if (!matched) dropped_counter_->Increment();
  return deliveries;
}

Result<int> ShardedEngine::Ingest(PropertyGraph graph, Timestamp timestamp) {
  return Ingest(std::make_shared<const PropertyGraph>(std::move(graph)),
                timestamp);
}

Status ShardedEngine::ProduceWithBackpressure(
    int shard_index, Lane* lane, std::shared_ptr<const PropertyGraph> graph,
    Timestamp timestamp) {
  constexpr int kMaxAttempts = 64;
  Status status;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    status = lane->queue->Produce(graph, timestamp);
    if (status.ok() || !status.IsTransient()) return status;
    // Backpressure: drain only this shard's lanes so retention can trim
    // the queue — the other shards keep running untouched. No clock
    // advance here: the element being produced may share its timestamp
    // with an already-queued sibling, and advancing now would evaluate
    // that instant before this element arrives.
    SERAPH_RETURN_IF_ERROR(PumpShard(shard_index, /*advance=*/false));
  }
  return status;
}

Status ShardedEngine::AppendIngestLog(
    Lane* lane, const std::shared_ptr<const PropertyGraph>& graph,
    Timestamp timestamp) {
  if (lane->log_path.empty()) return Status::OK();
  if (!lane->log.is_open()) {
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(lane->log_path).parent_path(), ec);
    lane->log.open(lane->log_path, std::ios::app);
    if (!lane->log) {
      return Status::Internal("cannot open ingest log " + lane->log_path);
    }
  }
  std::vector<StreamElement> one;
  one.push_back(StreamElement{graph, timestamp, 0});
  io::WriteEventLog(one, &lane->log);
  lane->log.flush();
  if (!lane->log) {
    return Status::Internal("ingest log write failed: " + lane->log_path);
  }
  return Status::OK();
}

Status ShardedEngine::PumpShard(int shard_index, bool advance) {
  Shard* shard = shards_[static_cast<size_t>(shard_index)].get();
  // Lane drivers deliver without advancing the shard clock (EnsureLane
  // sets advance_engine_clock = false), so the pump order across lanes
  // is irrelevant: every queued element lands in its window first, then
  // the coordinator advances the clock once, to the shard watermark —
  // the same ingest-then-advance cadence a single engine sees. Windows
  // select by element timestamp, so delivering "ahead" of the clock
  // never pollutes earlier evaluations.
  for (auto& [stream, lane] : shard->lanes) {
    Result<int64_t> pumped = lane->driver->PumpAll();
    if (!pumped.ok()) return pumped.status();
  }
  if (advance && shard->any_ingested) {
    SERAPH_RETURN_IF_ERROR(shard->engine->AdvanceTo(
        Timestamp::FromMillis(shard->watermark_millis)));
  }
  return Status::OK();
}

Status ShardedEngine::PumpAll() {
  for (int s = 0; s < num_shards(); ++s) {
    SERAPH_RETURN_IF_ERROR(PumpShard(s, /*advance=*/true));
  }
  MergeAndRelease(/*flush_all=*/false);
  RefreshGauges();
  return Status::OK();
}

Status ShardedEngine::Finish() {
  for (int s = 0; s < num_shards(); ++s) {
    // Drain every lane (queues + parked pending elements) before the
    // single clock advance, so no element is left behind the clock.
    SERAPH_RETURN_IF_ERROR(PumpShard(s, /*advance=*/false));
    Shard* shard = shards_[static_cast<size_t>(s)].get();
    for (auto& [stream, lane] : shard->lanes) {
      SERAPH_RETURN_IF_ERROR(lane->driver->Finish());
    }
    if (shard->any_ingested) {
      SERAPH_RETURN_IF_ERROR(shard->engine->AdvanceTo(
          Timestamp::FromMillis(shard->watermark_millis)));
    }
  }
  MergeAndRelease(/*flush_all=*/true);
  RefreshGauges();
  return Status::OK();
}

void ShardedEngine::MergeAndRelease(bool flush_all) {
  int64_t cut = std::numeric_limits<int64_t>::max();
  if (!flush_all) {
    bool any = false;
    for (const auto& shard : shards_) {
      if (!shard->any_ingested) continue;  // Cannot have emitted yet.
      cut = any ? std::min(cut, shard->watermark_millis)
                : shard->watermark_millis;
      any = true;
    }
    if (!any) return;
  }
  std::vector<PendingEmit> ready;
  for (const auto& shard : shards_) {
    if (shard->buffered.empty()) continue;
    if (flush_all) {
      for (PendingEmit& emit : shard->buffered) {
        ready.push_back(std::move(emit));
      }
      shard->buffered.clear();
    } else {
      // Usually time-ordered, but late registration can interleave, so
      // scan the whole buffer instead of popping a sorted prefix.
      std::deque<PendingEmit> keep;
      for (PendingEmit& emit : shard->buffered) {
        if (emit.t.millis() <= cut) {
          ready.push_back(std::move(emit));
        } else {
          keep.push_back(std::move(emit));
        }
      }
      shard->buffered.swap(keep);
    }
  }
  if (ready.empty()) return;
  std::sort(ready.begin(), ready.end(),
            [](const PendingEmit& a, const PendingEmit& b) {
              if (a.t.millis() != b.t.millis()) {
                return a.t.millis() < b.t.millis();
              }
              if (a.query != b.query) return a.query < b.query;
              return a.shard < b.shard;
            });
  for (const PendingEmit& emit : ready) {
    for (EmitSink* sink : sinks_) {
      Status status = sink->OnResult(emit.query, emit.t, emit.table);
      if (!status.ok()) sink_failures_->Increment();
    }
  }
  released_total_ += static_cast<int64_t>(ready.size());
  released_counter_->Increment(static_cast<int64_t>(ready.size()));
}

void ShardedEngine::RefreshGauges() {
  int64_t fleet = 0;
  bool any = false;
  for (const auto& shard : shards_) {
    shard->watermark_gauge->Set(shard->watermark_millis);
    int64_t depth = 0;
    for (const auto& [stream, lane] : shard->lanes) {
      depth += static_cast<int64_t>(lane->queue->depth());
    }
    shard->queue_depth_gauge->Set(depth);
    shard->buffered_gauge->Set(static_cast<int64_t>(shard->buffered.size()));
    if (shard->any_ingested) {
      fleet = any ? std::min(fleet, shard->watermark_millis)
                  : shard->watermark_millis;
      any = true;
    }
  }
  fleet_watermark_gauge_->Set(any ? fleet : 0);
}

int64_t ShardedEngine::FleetWatermarkMillis() const {
  int64_t fleet = 0;
  bool any = false;
  for (const auto& shard : shards_) {
    if (!shard->any_ingested) continue;
    fleet = any ? std::min(fleet, shard->watermark_millis)
                : shard->watermark_millis;
    any = true;
  }
  return any ? fleet : 0;
}

ContinuousEngine* ShardedEngine::shard_engine(int shard_index) {
  if (shard_index < 0 || shard_index >= num_shards()) return nullptr;
  return shards_[static_cast<size_t>(shard_index)]->engine.get();
}

const ContinuousEngine* ShardedEngine::shard_engine(int shard_index) const {
  if (shard_index < 0 || shard_index >= num_shards()) return nullptr;
  return shards_[static_cast<size_t>(shard_index)]->engine.get();
}

Status ShardedEngine::Checkpoint() {
  if (!durable()) {
    return Status::InvalidArgument(
        "Checkpoint() requires ShardedEngineOptions::checkpoint_dir");
  }
  // Flush first so buffered emissions are never stranded behind a
  // checkpoint cut (the recovered life re-emits from the cut forward).
  MergeAndRelease(/*flush_all=*/true);
  RefreshGauges();
  for (const auto& shard : shards_) {
    SERAPH_RETURN_IF_ERROR(shard->manager->Checkpoint(shard->engine.get()));
  }
  return Status::OK();
}

Status ShardedEngine::ReplayIngestLog(int shard_index, Lane* lane) {
  if (lane->log_path.empty()) return Status::OK();
  std::ifstream is(lane->log_path);
  if (!is.is_open()) return Status::OK();  // Nothing durably ingested yet.
  SERAPH_ASSIGN_OR_RETURN(std::vector<StreamElement> events,
                          io::ReadEventLog(&is));
  for (const StreamElement& event : events) {
    SERAPH_RETURN_IF_ERROR(ProduceWithBackpressure(shard_index, lane,
                                                   event.graph,
                                                   event.timestamp));
  }
  return Status::OK();
}

Status ShardedEngine::Restore() {
  if (!durable()) {
    return Status::InvalidArgument(
        "Restore() requires ShardedEngineOptions::checkpoint_dir");
  }
  for (int i = 0; i < num_shards(); ++i) {
    Shard* shard = shards_[static_cast<size_t>(i)].get();
    Result<persist::CheckpointImage> image =
        persist::LoadLatestCheckpoint(ShardDir(i));
    if (!image.ok()) {
      if (image.status().code() != StatusCode::kNotFound) {
        return image.status();
      }
      // Cold shard: no committed generation; replay its logs from zero.
    } else {
      SERAPH_RETURN_IF_ERROR(persist::RestoreEngine(*image,
                                                    shard->engine.get()));
      // Complete the interrupted evaluation batch before any replay (the
      // RestoreEngine contract).
      SERAPH_RETURN_IF_ERROR(shard->engine->Drain());
      for (auto& [stream, lane] : shard->lanes) {
        SERAPH_RETURN_IF_ERROR(persist::RestoreConsumer(
            *image, lane->consumer, lane->queue.get()));
      }
      SERAPH_RETURN_IF_ERROR(
          persist::RestoreDeadLetters(*image, &shard->dead_letters));
    }
    for (auto& [stream, lane] : shard->lanes) {
      SERAPH_RETURN_IF_ERROR(ReplayIngestLog(i, lane.get()));
    }
    int64_t watermark = 0;
    bool any = false;
    for (const auto& [stream, lane] : shard->lanes) {
      if (lane->queue->size() == 0) continue;
      watermark = std::max(watermark, lane->queue->MaxTimestamp().millis());
      any = true;
    }
    shard->watermark_millis = watermark;
    shard->any_ingested = any;
  }
  RefreshGauges();
  return Status::OK();
}

std::vector<EngineCheckpoint> ShardedEngine::CaptureCheckpoints() {
  MergeAndRelease(/*flush_all=*/true);
  std::vector<EngineCheckpoint> images;
  images.reserve(shards_.size());
  for (const auto& shard : shards_) {
    images.push_back(shard->engine->CaptureCheckpoint());
  }
  return images;
}

Status ShardedEngine::RestoreFrom(const std::vector<EngineCheckpoint>& images) {
  if (static_cast<int>(images.size()) != num_shards()) {
    return Status::InvalidArgument(
        "checkpoint image count does not match shard count");
  }
  for (int i = 0; i < num_shards(); ++i) {
    Shard* shard = shards_[static_cast<size_t>(i)].get();
    SERAPH_RETURN_IF_ERROR(shard->engine->RestoreFrom(images[static_cast<size_t>(i)]));
    SERAPH_RETURN_IF_ERROR(shard->engine->Drain());
    if (images[static_cast<size_t>(i)].clock_started) {
      shard->watermark_millis = images[static_cast<size_t>(i)].clock.millis();
      shard->any_ingested = true;
    }
  }
  RefreshGauges();
  return Status::OK();
}

}  // namespace shard
}  // namespace seraph
