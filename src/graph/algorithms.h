// Graph algorithms over property graphs, supporting the network-
// monitoring use case (§4.1: "connections are redundant if ... no rack
// can become unreachable") and general snapshot introspection.
//
// All algorithms treat relationships as undirected unless stated
// otherwise and optionally restrict traversal to a relationship type.
#ifndef SERAPH_GRAPH_ALGORITHMS_H_
#define SERAPH_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"

namespace seraph {

// Traversal restriction: empty `type` means every relationship type.
struct TraversalOptions {
  std::string type;
};

// Connected components (undirected). Returns a map node → component id;
// component ids are the smallest node id in each component.
std::unordered_map<NodeId, int64_t> ConnectedComponents(
    const PropertyGraph& graph, const TraversalOptions& options = {});

// Number of connected components.
size_t CountConnectedComponents(const PropertyGraph& graph,
                                const TraversalOptions& options = {});

// BFS hop distance from `source` to every reachable node (undirected).
std::unordered_map<NodeId, int64_t> HopDistances(
    const PropertyGraph& graph, NodeId source,
    const TraversalOptions& options = {});

// True iff `target` is reachable from `source` (undirected).
bool Reachable(const PropertyGraph& graph, NodeId source, NodeId target,
               const TraversalOptions& options = {});

// Degree statistics (in + out degree per node).
struct DegreeStats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  // degree → number of nodes with that degree.
  std::map<size_t, size_t> distribution;
};

DegreeStats ComputeDegreeStats(const PropertyGraph& graph);

}  // namespace seraph

#endif  // SERAPH_GRAPH_ALGORITHMS_H_
