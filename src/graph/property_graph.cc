#include "graph/property_graph.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace seraph {

namespace {
const std::vector<RelId>& EmptyRelList() {
  static const std::vector<RelId>* kEmpty = new std::vector<RelId>();
  return *kEmpty;
}
}  // namespace

Status PropertyGraph::AddNode(NodeId id, NodeData data) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id.value) +
                                 " already exists");
  }
  it->second.data = std::move(data);
  IndexNodeLabels(id, it->second.data);
  return Status::OK();
}

Status PropertyGraph::AddRelationship(RelId id, RelData data) {
  if (rels_.contains(id)) {
    return Status::AlreadyExists("relationship " + std::to_string(id.value) +
                                 " already exists");
  }
  auto src_it = nodes_.find(data.src);
  auto trg_it = nodes_.find(data.trg);
  if (src_it == nodes_.end() || trg_it == nodes_.end()) {
    return Status::InvalidArgument(
        "relationship " + std::to_string(id.value) +
        " references a missing endpoint node");
  }
  // Adjacency lists are kept sorted by relationship id, so incident-edge
  // traversal order is a function of graph *content*, not of insertion
  // history. Incrementally-maintained and from-scratch window snapshots
  // then enumerate matches in the same order — the invariant the delta
  // matcher's bit-identical-order guarantee rests on.
  auto sorted_insert = [id](std::vector<RelId>* list) {
    list->insert(std::lower_bound(list->begin(), list->end(), id), id);
  };
  sorted_insert(&src_it->second.out);
  sorted_insert(&trg_it->second.in);
  type_index_[data.type].insert(id);
  rels_.emplace(id, std::move(data));
  return Status::OK();
}

void PropertyGraph::MergeNode(NodeId id, const NodeData& data) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (inserted) {
    it->second.data = data;
    IndexNodeLabels(id, it->second.data);
    return;
  }
  NodeData& existing = it->second.data;
  for (const std::string& label : data.labels) {
    if (existing.labels.insert(label).second) {
      label_index_[label].insert(id);
    }
  }
  for (const auto& [key, value] : data.properties) {
    existing.properties[key] = value;  // Incoming value wins.
  }
}

Status PropertyGraph::MergeRelationship(RelId id, const RelData& data) {
  auto it = rels_.find(id);
  if (it != rels_.end()) {
    RelData& existing = it->second;
    if (existing.src != data.src || existing.trg != data.trg ||
        existing.type != data.type) {
      return Status::Inconsistent(
          "relationship " + std::to_string(id.value) +
          " merged with conflicting endpoints or type");
    }
    for (const auto& [key, value] : data.properties) {
      existing.properties[key] = value;
    }
    return Status::OK();
  }
  if (!nodes_.contains(data.src)) MergeNode(data.src, NodeData{});
  if (!nodes_.contains(data.trg)) MergeNode(data.trg, NodeData{});
  return AddRelationship(id, data);
}

void PropertyGraph::SetNodeData(NodeId id, NodeData data) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (!inserted) UnindexNodeLabels(id, it->second.data);
  it->second.data = std::move(data);
  IndexNodeLabels(id, it->second.data);
}

Status PropertyGraph::SetRelationshipData(RelId id, RelData data) {
  auto it = rels_.find(id);
  if (it == rels_.end()) return AddRelationship(id, std::move(data));
  RelData& existing = it->second;
  if (existing.src != data.src || existing.trg != data.trg ||
      existing.type != data.type) {
    return Status::Inconsistent(
        "relationship " + std::to_string(id.value) +
        " payload replaced with conflicting endpoints or type");
  }
  existing.properties = std::move(data.properties);
  return Status::OK();
}

void PropertyGraph::RemoveNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  // Copy: RemoveRelationship mutates the adjacency vectors.
  std::vector<RelId> incident = it->second.out;
  incident.insert(incident.end(), it->second.in.begin(), it->second.in.end());
  for (RelId rid : incident) RemoveRelationship(rid);
  UnindexNodeLabels(id, it->second.data);
  nodes_.erase(id);
}

void PropertyGraph::RemoveRelationship(RelId id) {
  auto it = rels_.find(id);
  if (it == rels_.end()) return;
  const RelData& data = it->second;
  auto erase_from = [id](std::vector<RelId>* list) {
    list->erase(std::remove(list->begin(), list->end(), id), list->end());
  };
  if (auto src_it = nodes_.find(data.src); src_it != nodes_.end()) {
    erase_from(&src_it->second.out);
  }
  if (auto trg_it = nodes_.find(data.trg); trg_it != nodes_.end()) {
    erase_from(&trg_it->second.in);
  }
  auto type_it = type_index_.find(data.type);
  if (type_it != type_index_.end()) {
    type_it->second.erase(id);
    if (type_it->second.empty()) type_index_.erase(type_it);
  }
  rels_.erase(it);
}

void PropertyGraph::Clear() {
  nodes_.clear();
  rels_.clear();
  label_index_.clear();
  type_index_.clear();
}

const NodeData* PropertyGraph::node(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second.data;
}

const RelData* PropertyGraph::relationship(RelId id) const {
  auto it = rels_.find(id);
  return it == rels_.end() ? nullptr : &it->second;
}

std::vector<NodeId> PropertyGraph::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<RelId> PropertyGraph::RelationshipIds() const {
  std::vector<RelId> ids;
  ids.reserve(rels_.size());
  for (const auto& [id, data] : rels_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const std::vector<RelId>& PropertyGraph::OutRelationships(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? EmptyRelList() : it->second.out;
}

const std::vector<RelId>& PropertyGraph::InRelationships(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? EmptyRelList() : it->second.in;
}

std::vector<NodeId> PropertyGraph::NodesWithLabel(
    const std::string& label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return {};
  return std::vector<NodeId>(it->second.begin(), it->second.end());
}

size_t PropertyGraph::CountNodesWithLabel(const std::string& label) const {
  auto it = label_index_.find(label);
  return it == label_index_.end() ? 0 : it->second.size();
}

const std::set<NodeId>& PropertyGraph::NodesWithLabelSet(
    const std::string& label) const {
  static const std::set<NodeId>* kEmpty = new std::set<NodeId>();
  auto it = label_index_.find(label);
  return it == label_index_.end() ? *kEmpty : it->second;
}

std::vector<RelId> PropertyGraph::RelationshipsWithType(
    const std::string& type) const {
  auto it = type_index_.find(type);
  if (it == type_index_.end()) return {};
  return std::vector<RelId>(it->second.begin(), it->second.end());
}

Value PropertyGraph::NodeProperty(NodeId id, const std::string& key) const {
  const NodeData* data = node(id);
  if (data == nullptr) return Value::Null();
  auto it = data->properties.find(key);
  return it == data->properties.end() ? Value::Null() : it->second;
}

Value PropertyGraph::RelationshipProperty(RelId id,
                                          const std::string& key) const {
  const RelData* data = relationship(id);
  if (data == nullptr) return Value::Null();
  auto it = data->properties.find(key);
  return it == data->properties.end() ? Value::Null() : it->second;
}

void PropertyGraph::IndexNodeLabels(NodeId id, const NodeData& data) {
  for (const std::string& label : data.labels) {
    label_index_[label].insert(id);
  }
}

void PropertyGraph::UnindexNodeLabels(NodeId id, const NodeData& data) {
  for (const std::string& label : data.labels) {
    auto it = label_index_.find(label);
    if (it == label_index_.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) label_index_.erase(it);
  }
}

std::string PropertyGraph::DebugString() const {
  std::ostringstream os;
  for (NodeId id : NodeIds()) {
    const NodeData& data = nodes_.at(id).data;
    os << "(" << id.value;
    for (const std::string& label : data.labels) os << ":" << label;
    if (!data.properties.empty()) {
      os << " " << Value::MakeMap(data.properties).ToString();
    }
    os << ")\n";
  }
  for (RelId id : RelationshipIds()) {
    const RelData& data = rels_.at(id);
    os << "(" << data.src.value << ")-[" << id.value << ":" << data.type;
    if (!data.properties.empty()) {
      os << " " << Value::MakeMap(data.properties).ToString();
    }
    os << "]->(" << data.trg.value << ")\n";
  }
  return os.str();
}

}  // namespace seraph
