#include "graph/graph_union.h"

namespace seraph {

namespace {

// Checks agreement of the partial property functions ι1 and ι2 on a shared
// entity: every key defined by both must map to the same value.
bool PropertiesAgree(const Value::Map& a, const Value::Map& b) {
  const Value::Map& small = a.size() <= b.size() ? a : b;
  const Value::Map& large = a.size() <= b.size() ? b : a;
  for (const auto& [key, value] : small) {
    auto it = large.find(key);
    if (it != large.end() && !(it->second == value)) return false;
  }
  return true;
}

Status CheckConsistent(const PropertyGraph& g1, const PropertyGraph& g2) {
  // Iterate over the smaller graph's entities for the overlap check.
  const PropertyGraph& small =
      g1.num_nodes() + g1.num_relationships() <=
              g2.num_nodes() + g2.num_relationships()
          ? g1
          : g2;
  const PropertyGraph& large = (&small == &g1) ? g2 : g1;
  for (NodeId id : small.NodeIds()) {
    const NodeData* a = small.node(id);
    const NodeData* b = large.node(id);
    if (b == nullptr) continue;
    if (a->labels != b->labels) {
      return Status::Inconsistent("node " + std::to_string(id.value) +
                                  ": conflicting label sets");
    }
    if (!PropertiesAgree(a->properties, b->properties)) {
      return Status::Inconsistent("node " + std::to_string(id.value) +
                                  ": conflicting property values");
    }
  }
  for (RelId id : small.RelationshipIds()) {
    const RelData* a = small.relationship(id);
    const RelData* b = large.relationship(id);
    if (b == nullptr) continue;
    if (a->src != b->src || a->trg != b->trg || a->type != b->type) {
      return Status::Inconsistent("relationship " + std::to_string(id.value) +
                                  ": conflicting endpoints or type");
    }
    if (!PropertiesAgree(a->properties, b->properties)) {
      return Status::Inconsistent("relationship " + std::to_string(id.value) +
                                  ": conflicting property values");
    }
  }
  return Status::OK();
}

}  // namespace

Result<PropertyGraph> StrictUnion(const PropertyGraph& g1,
                                  const PropertyGraph& g2) {
  SERAPH_RETURN_IF_ERROR(CheckConsistent(g1, g2));
  PropertyGraph out = g1;
  // Consistency was verified, so merge semantics coincide with function
  // union here.
  Status s = MergeInto(&out, g2);
  if (!s.ok()) return s;
  return out;
}

bool AreConsistent(const PropertyGraph& g1, const PropertyGraph& g2) {
  return CheckConsistent(g1, g2).ok();
}

Status MergeInto(PropertyGraph* target, const PropertyGraph& source) {
  for (NodeId id : source.NodeIds()) {
    target->MergeNode(id, *source.node(id));
  }
  for (RelId id : source.RelationshipIds()) {
    SERAPH_RETURN_IF_ERROR(
        target->MergeRelationship(id, *source.relationship(id)));
  }
  return Status::OK();
}

Result<PropertyGraph> MergeUnion(const PropertyGraph& g1,
                                 const PropertyGraph& g2) {
  PropertyGraph out = g1;
  Status s = MergeInto(&out, g2);
  if (!s.ok()) return s;
  return out;
}

}  // namespace seraph
