// The property graph data model (Def. 3.1): a graph
// Γ = (N, R, src, trg, ι, λ, κ) with node labels, relationship types, and
// key→value properties on both nodes and relationships.
//
// `PropertyGraph` is a mutable in-memory store with secondary indexes
// (label → nodes, type → relationships, per-node adjacency) maintained
// incrementally; it is the substrate both for one-time Cypher evaluation
// (Section 3) and for snapshot graphs built from stream windows (Def. 5.5).
#ifndef SERAPH_GRAPH_PROPERTY_GRAPH_H_
#define SERAPH_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "value/ids.h"
#include "value/value.h"

namespace seraph {

// Per-node payload: the label set λ(n) and property map ι(n, ·).
struct NodeData {
  std::set<std::string> labels;
  Value::Map properties;

  friend bool operator==(const NodeData& a, const NodeData& b) {
    return a.labels == b.labels && a.properties == b.properties;
  }
};

// Per-relationship payload: type κ(r), endpoints src(r)/trg(r), and
// property map ι(r, ·).
struct RelData {
  std::string type;
  NodeId src;
  NodeId trg;
  Value::Map properties;

  friend bool operator==(const RelData& a, const RelData& b) {
    return a.type == b.type && a.src == b.src && a.trg == b.trg &&
           a.properties == b.properties;
  }
};

class PropertyGraph {
 public:
  PropertyGraph() = default;

  PropertyGraph(const PropertyGraph&) = default;
  PropertyGraph& operator=(const PropertyGraph&) = default;
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;

  // ---- Mutation ----

  // Inserts a new node. Fails with kAlreadyExists if `id` is present.
  Status AddNode(NodeId id, NodeData data);

  // Inserts a new relationship. Fails with kAlreadyExists if `id` is
  // present, or kInvalidArgument if either endpoint node is missing.
  Status AddRelationship(RelId id, RelData data);

  // Upserts a node: creates it, or merges `data` into the existing one
  // (label-set union; per-key properties, incoming value wins). This is the
  // Neo4j-Kafka-connector-style MERGE ingestion of Listing 4.
  void MergeNode(NodeId id, const NodeData& data);

  // Upserts a relationship analogously. Endpoints that are not yet present
  // are created as empty nodes (they are expected to be merged later or by
  // the same event). Fails with kInconsistent if an existing relationship
  // with this id has different endpoints or type.
  Status MergeRelationship(RelId id, const RelData& data);

  // Replaces a node's payload entirely (labels and properties), creating
  // the node if absent. Adjacency is untouched. Used by incremental
  // snapshot maintenance when a contribution is evicted.
  void SetNodeData(NodeId id, NodeData data);

  // Replaces a relationship's payload entirely, creating it if absent
  // (endpoints must exist). Fails with kInconsistent if an existing
  // relationship has different endpoints or type.
  Status SetRelationshipData(RelId id, RelData data);

  // Removes a node and all incident relationships. No-op if absent.
  void RemoveNode(NodeId id);

  // Removes a relationship. No-op if absent.
  void RemoveRelationship(RelId id);

  void Clear();

  // ---- Lookup ----

  bool HasNode(NodeId id) const { return nodes_.contains(id); }
  bool HasRelationship(RelId id) const { return rels_.contains(id); }

  // Returns nullptr when absent.
  const NodeData* node(NodeId id) const;
  const RelData* relationship(RelId id) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_relationships() const { return rels_.size(); }

  // All node / relationship ids in ascending id order (deterministic
  // iteration for matching and printing).
  std::vector<NodeId> NodeIds() const;
  std::vector<RelId> RelationshipIds() const;

  // ---- Indexes ----

  // Relationships with src == id / trg == id, in ascending id order —
  // content-determined, not insertion-ordered, so any two graphs with
  // equal content traverse incident edges identically (the delta
  // matcher's order guarantee depends on this).
  const std::vector<RelId>& OutRelationships(NodeId id) const;
  const std::vector<RelId>& InRelationships(NodeId id) const;

  // Nodes carrying `label` (ascending id order).
  std::vector<NodeId> NodesWithLabel(const std::string& label) const;

  // Number of nodes carrying `label`, without materializing them — the
  // matcher's seed-cost estimates are on the hot path.
  size_t CountNodesWithLabel(const std::string& label) const;

  // The label-index entry itself (ascending id order; a shared empty set
  // for unknown labels). Copy-free iteration for seed enumeration; the
  // reference is invalidated by any mutation of the graph.
  const std::set<NodeId>& NodesWithLabelSet(const std::string& label) const;

  // Relationships of type `type` (ascending id order).
  std::vector<RelId> RelationshipsWithType(const std::string& type) const;

  // ---- Convenience ----

  // Property lookup returning null when the key (or entity) is absent —
  // matching Cypher's `x.key` semantics.
  Value NodeProperty(NodeId id, const std::string& key) const;
  Value RelationshipProperty(RelId id, const std::string& key) const;

  // Structural equality: same nodes, relationships, and payloads.
  friend bool operator==(const PropertyGraph& a, const PropertyGraph& b) {
    return a.nodes_ == b.nodes_ && a.rels_ == b.rels_;
  }

  // Multi-line debug rendering (nodes then relationships, sorted by id).
  std::string DebugString() const;

 private:
  struct NodeEntry {
    NodeData data;
    std::vector<RelId> out;
    std::vector<RelId> in;

    friend bool operator==(const NodeEntry& a, const NodeEntry& b) {
      // Adjacency is derived state; payload equality suffices.
      return a.data == b.data;
    }
  };

  void IndexNodeLabels(NodeId id, const NodeData& data);
  void UnindexNodeLabels(NodeId id, const NodeData& data);

  std::unordered_map<NodeId, NodeEntry> nodes_;
  std::unordered_map<RelId, RelData> rels_;
  std::unordered_map<std::string, std::set<NodeId>> label_index_;
  std::unordered_map<std::string, std::set<RelId>> type_index_;
};

}  // namespace seraph

#endif  // SERAPH_GRAPH_PROPERTY_GRAPH_H_
