// Fluent construction helper for property graphs, used by workload
// generators, examples, and tests:
//
//   PropertyGraph g = GraphBuilder()
//       .Node(1, {"Station"}, {{"id", Value::Int(1)}})
//       .Node(5, {"E-Bike"}, {{"id", Value::Int(5)}})
//       .Rel(1, 5, 1, "rentedAt", {{"user_id", Value::Int(1234)}})
//       .Build();
#ifndef SERAPH_GRAPH_GRAPH_BUILDER_H_
#define SERAPH_GRAPH_GRAPH_BUILDER_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/property_graph.h"

namespace seraph {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  // Adds (or merges) a node. Repeated ids merge, mirroring stream ingestion.
  GraphBuilder& Node(int64_t id, std::initializer_list<std::string> labels,
                     Value::Map properties = {}) {
    NodeData data;
    data.labels.insert(labels.begin(), labels.end());
    data.properties = std::move(properties);
    graph_.MergeNode(NodeId{id}, data);
    return *this;
  }

  // Vector overload for programmatic label sets (random generators).
  GraphBuilder& Node(int64_t id, const std::vector<std::string>& labels,
                     Value::Map properties = {}) {
    NodeData data;
    data.labels.insert(labels.begin(), labels.end());
    data.properties = std::move(properties);
    graph_.MergeNode(NodeId{id}, data);
    return *this;
  }

  // Adds a relationship `src -[type]-> trg`. Endpoints must already exist
  // (declare nodes first); a violation is a test-authoring bug and aborts.
  GraphBuilder& Rel(int64_t id, int64_t src, int64_t trg, std::string type,
                    Value::Map properties = {}) {
    RelData data;
    data.type = std::move(type);
    data.src = NodeId{src};
    data.trg = NodeId{trg};
    data.properties = std::move(properties);
    Status s = graph_.AddRelationship(RelId{id}, std::move(data));
    SERAPH_CHECK(s.ok()) << s.ToString();
    return *this;
  }

  // Consumes the builder; usable at the end of a chained temporary.
  PropertyGraph Build() { return std::move(graph_); }
  const PropertyGraph& graph() const { return graph_; }

 private:
  PropertyGraph graph_;
};

}  // namespace seraph

#endif  // SERAPH_GRAPH_GRAPH_BUILDER_H_
