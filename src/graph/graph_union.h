// Union of property graphs under the Unique Name Assumption (Def. 5.4).
//
// Two flavours are provided:
//  * `StrictUnion` — the paper's definition: the component-wise union of
//    (N, R, src, trg, ι, λ, κ) is a graph only if the operands are
//    *consistent*, i.e. agree wherever their partial functions overlap;
//    otherwise the union is undefined (reported as kInconsistent).
//  * `MergeUnion` / `MergeInto` — ingestion-style merge (Listing 4 /
//    Neo4j Kafka connector): label sets union, later property values win.
//    This is what snapshot-graph construction (Def. 5.5) uses, applying
//    stream elements in timestamp order.
#ifndef SERAPH_GRAPH_GRAPH_UNION_H_
#define SERAPH_GRAPH_GRAPH_UNION_H_

#include "common/result.h"
#include "graph/property_graph.h"

namespace seraph {

// Returns G1 ∪ G2 per Def. 5.4, or kInconsistent when the operands
// disagree on a shared node's labels/properties or a shared relationship's
// endpoints, type, or properties.
Result<PropertyGraph> StrictUnion(const PropertyGraph& g1,
                                  const PropertyGraph& g2);

// True iff StrictUnion(g1, g2) would succeed.
bool AreConsistent(const PropertyGraph& g1, const PropertyGraph& g2);

// Merges `source` into `*target` (label union; `source` property values
// win per key). Fails only when a shared relationship id has conflicting
// endpoints or type — property conflicts are resolved, not rejected.
Status MergeInto(PropertyGraph* target, const PropertyGraph& source);

// Convenience: copies `g1` and merges `g2` into it.
Result<PropertyGraph> MergeUnion(const PropertyGraph& g1,
                                 const PropertyGraph& g2);

}  // namespace seraph

#endif  // SERAPH_GRAPH_GRAPH_UNION_H_
