#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace seraph {

namespace {

// Applies `fn` to each neighbour of `at` (undirected, type-filtered).
template <typename Fn>
void ForEachNeighbor(const PropertyGraph& graph, NodeId at,
                     const TraversalOptions& options, Fn fn) {
  for (RelId rid : graph.OutRelationships(at)) {
    const RelData* rel = graph.relationship(rid);
    if (!options.type.empty() && rel->type != options.type) continue;
    fn(rel->trg);
  }
  for (RelId rid : graph.InRelationships(at)) {
    const RelData* rel = graph.relationship(rid);
    if (!options.type.empty() && rel->type != options.type) continue;
    fn(rel->src);
  }
}

}  // namespace

std::unordered_map<NodeId, int64_t> ConnectedComponents(
    const PropertyGraph& graph, const TraversalOptions& options) {
  std::unordered_map<NodeId, int64_t> component;
  component.reserve(graph.num_nodes());
  // NodeIds() is ascending, so the first unvisited node of a component is
  // also its smallest id.
  for (NodeId seed : graph.NodeIds()) {
    if (component.contains(seed)) continue;
    std::deque<NodeId> frontier{seed};
    component[seed] = seed.value;
    while (!frontier.empty()) {
      NodeId at = frontier.front();
      frontier.pop_front();
      ForEachNeighbor(graph, at, options, [&](NodeId next) {
        if (component.try_emplace(next, seed.value).second) {
          frontier.push_back(next);
        }
      });
    }
  }
  return component;
}

size_t CountConnectedComponents(const PropertyGraph& graph,
                                const TraversalOptions& options) {
  auto components = ConnectedComponents(graph, options);
  std::vector<int64_t> ids;
  ids.reserve(components.size());
  for (const auto& [node, id] : components) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

std::unordered_map<NodeId, int64_t> HopDistances(
    const PropertyGraph& graph, NodeId source,
    const TraversalOptions& options) {
  std::unordered_map<NodeId, int64_t> dist;
  if (!graph.HasNode(source)) return dist;
  dist[source] = 0;
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    NodeId at = frontier.front();
    frontier.pop_front();
    int64_t d = dist[at];
    ForEachNeighbor(graph, at, options, [&](NodeId next) {
      if (dist.try_emplace(next, d + 1).second) {
        frontier.push_back(next);
      }
    });
  }
  return dist;
}

bool Reachable(const PropertyGraph& graph, NodeId source, NodeId target,
               const TraversalOptions& options) {
  if (source == target) return graph.HasNode(source);
  auto dist = HopDistances(graph, source, options);
  return dist.contains(target);
}

DegreeStats ComputeDegreeStats(const PropertyGraph& graph) {
  DegreeStats stats;
  if (graph.num_nodes() == 0) return stats;
  size_t total = 0;
  bool first = true;
  for (NodeId id : graph.NodeIds()) {
    size_t degree =
        graph.OutRelationships(id).size() + graph.InRelationships(id).size();
    ++stats.distribution[degree];
    total += degree;
    if (first || degree < stats.min) stats.min = degree;
    if (first || degree > stats.max) stats.max = degree;
    first = false;
  }
  stats.mean = static_cast<double>(total) /
               static_cast<double>(graph.num_nodes());
  return stats;
}

}  // namespace seraph
