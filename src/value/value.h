// The Cypher value domain V (Section 3.1): null, booleans, integers,
// floats, strings, lists, maps, temporal values, and references to graph
// entities (nodes, relationships, paths).
//
// `Value` is an immutable-ish value type with deep copy semantics. Strict
// structural equality (`operator==`) treats null as equal to null — this is
// the "equivalence" notion used for bag/table operations (DISTINCT, bag
// difference, grouping). Cypher's *ternary* equality (where null = null is
// null) lives in the expression evaluator, not here.
#ifndef SERAPH_VALUE_VALUE_H_
#define SERAPH_VALUE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "temporal/duration.h"
#include "temporal/timestamp.h"
#include "value/ids.h"

namespace seraph {

class Value;

// An alternating node/relationship sequence bound to a path variable.
// `nodes` has exactly `rels.size() + 1` entries.
struct PathValue {
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;

  // Number of relationships (Cypher's length(p)).
  int64_t length() const { return static_cast<int64_t>(rels.size()); }

  friend bool operator==(const PathValue& a, const PathValue& b) {
    return a.nodes == b.nodes && a.rels == b.rels;
  }
};

// Discriminator for Value alternatives.
enum class ValueKind {
  kNull,
  kBool,
  kInt,
  kFloat,
  kString,
  kList,
  kMap,
  kDateTime,
  kDuration,
  kNode,
  kRelationship,
  kPath,
};

// Returns a printable name such as "INTEGER" or "NODE".
const char* ValueKindToString(ValueKind kind);

class Value {
 public:
  using List = std::vector<Value>;
  using Map = std::map<std::string, Value>;

  // Constructs null.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Float(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }
  static Value MakeList(List items) { return Value(Rep(std::move(items))); }
  static Value MakeMap(Map entries) { return Value(Rep(std::move(entries))); }
  static Value DateTime(Timestamp t) { return Value(Rep(t)); }
  static Value Dur(Duration d) { return Value(Rep(d)); }
  static Value Node(NodeId id) { return Value(Rep(id)); }
  static Value Relationship(RelId id) { return Value(Rep(id)); }
  static Value Path(PathValue p) {
    return Value(Rep(std::make_shared<const PathValue>(std::move(p))));
  }

  ValueKind kind() const;

  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_float() const { return kind() == ValueKind::kFloat; }
  bool is_number() const { return is_int() || is_float(); }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_map() const { return kind() == ValueKind::kMap; }
  bool is_datetime() const { return kind() == ValueKind::kDateTime; }
  bool is_duration() const { return kind() == ValueKind::kDuration; }
  bool is_node() const { return kind() == ValueKind::kNode; }
  bool is_relationship() const { return kind() == ValueKind::kRelationship; }
  bool is_path() const { return kind() == ValueKind::kPath; }

  // Typed accessors; calling the wrong accessor is a programming error and
  // aborts. Use kind() / is_*() to dispatch first.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsFloat() const;
  // Numeric value widened to double (valid for kInt and kFloat).
  double AsNumber() const;
  const std::string& AsString() const;
  const List& AsList() const;
  const Map& AsMap() const;
  Timestamp AsDateTime() const;
  Duration AsDuration() const;
  NodeId AsNode() const;
  RelId AsRelationship() const;
  const PathValue& AsPath() const;

  // Structural equality with null == null (see file comment). Int/float
  // values comparing numerically equal are equal (1 == 1.0).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  // Total order for ORDER BY and deterministic table rendering, following
  // Cypher orderability: lists < maps < entities < paths < strings < bools <
  // numbers < temporals < null (null sorts last, numbers compare
  // numerically across int/float).
  static int Compare(const Value& a, const Value& b);

  size_t Hash() const;

  // Cypher-style literal rendering: strings quoted inside containers,
  // unquoted at top level; lists as "[a, b]", maps as "{k: v}".
  std::string ToString() const;

 private:
  using Rep =
      std::variant<std::monostate, bool, int64_t, double, std::string, List,
                   Map, Timestamp, Duration, NodeId, RelId,
                   std::shared_ptr<const PathValue>>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace seraph

template <>
struct std::hash<seraph::Value> {
  size_t operator()(const seraph::Value& v) const { return v.Hash(); }
};

#endif  // SERAPH_VALUE_VALUE_H_
