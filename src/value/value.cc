#include "value/value.h"

#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace seraph {

namespace {

// Rank used by Value::Compare to order values of different kinds.
int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kList:
      return 0;
    case ValueKind::kMap:
      return 1;
    case ValueKind::kNode:
      return 2;
    case ValueKind::kRelationship:
      return 3;
    case ValueKind::kPath:
      return 4;
    case ValueKind::kString:
      return 5;
    case ValueKind::kBool:
      return 6;
    case ValueKind::kInt:
    case ValueKind::kFloat:
      return 7;
    case ValueKind::kDateTime:
      return 8;
    case ValueKind::kDuration:
      return 9;
    case ValueKind::kNull:
      return 10;  // null sorts last.
  }
  return 11;
}

int Sign(int64_t x) { return x < 0 ? -1 : (x > 0 ? 1 : 0); }

int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('\'');
  for (char c : s) {
    if (c == '\'' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('\'');
}

// Renders `v`; `nested` selects the quoted-string form used inside
// containers.
void ToStringImpl(const Value& v, bool nested, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kNull:
      *out += "null";
      return;
    case ValueKind::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case ValueKind::kInt:
      *out += std::to_string(v.AsInt());
      return;
    case ValueKind::kFloat: {
      std::ostringstream os;
      os << v.AsFloat();
      std::string s = os.str();
      // Keep floats visually distinct from ints.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      *out += s;
      return;
    }
    case ValueKind::kString:
      if (nested) {
        AppendQuoted(v.AsString(), out);
      } else {
        *out += v.AsString();
      }
      return;
    case ValueKind::kList: {
      *out += '[';
      const auto& items = v.AsList();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) *out += ", ";
        ToStringImpl(items[i], /*nested=*/true, out);
      }
      *out += ']';
      return;
    }
    case ValueKind::kMap: {
      *out += '{';
      bool first = true;
      for (const auto& [key, val] : v.AsMap()) {
        if (!first) *out += ", ";
        first = false;
        *out += key;
        *out += ": ";
        ToStringImpl(val, /*nested=*/true, out);
      }
      *out += '}';
      return;
    }
    case ValueKind::kDateTime:
      *out += v.AsDateTime().ToString();
      return;
    case ValueKind::kDuration:
      *out += v.AsDuration().ToString();
      return;
    case ValueKind::kNode:
      *out += "(#" + std::to_string(v.AsNode().value) + ")";
      return;
    case ValueKind::kRelationship:
      *out += "[#" + std::to_string(v.AsRelationship().value) + "]";
      return;
    case ValueKind::kPath: {
      const PathValue& p = v.AsPath();
      *out += "<path";
      for (size_t i = 0; i < p.nodes.size(); ++i) {
        *out += (i == 0 ? " (" : "-(");
        *out += std::to_string(p.nodes[i].value);
        *out += ')';
      }
      *out += '>';
      return;
    }
  }
}

}  // namespace

const char* ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return "BOOLEAN";
    case ValueKind::kInt:
      return "INTEGER";
    case ValueKind::kFloat:
      return "FLOAT";
    case ValueKind::kString:
      return "STRING";
    case ValueKind::kList:
      return "LIST";
    case ValueKind::kMap:
      return "MAP";
    case ValueKind::kDateTime:
      return "DATETIME";
    case ValueKind::kDuration:
      return "DURATION";
    case ValueKind::kNode:
      return "NODE";
    case ValueKind::kRelationship:
      return "RELATIONSHIP";
    case ValueKind::kPath:
      return "PATH";
  }
  return "UNKNOWN";
}

ValueKind Value::kind() const {
  switch (rep_.index()) {
    case 0:
      return ValueKind::kNull;
    case 1:
      return ValueKind::kBool;
    case 2:
      return ValueKind::kInt;
    case 3:
      return ValueKind::kFloat;
    case 4:
      return ValueKind::kString;
    case 5:
      return ValueKind::kList;
    case 6:
      return ValueKind::kMap;
    case 7:
      return ValueKind::kDateTime;
    case 8:
      return ValueKind::kDuration;
    case 9:
      return ValueKind::kNode;
    case 10:
      return ValueKind::kRelationship;
    case 11:
      return ValueKind::kPath;
  }
  SERAPH_CHECK(false) << "corrupt Value representation";
  return ValueKind::kNull;
}

bool Value::AsBool() const {
  SERAPH_CHECK(is_bool()) << "Value is " << ValueKindToString(kind());
  return std::get<bool>(rep_);
}

int64_t Value::AsInt() const {
  SERAPH_CHECK(is_int()) << "Value is " << ValueKindToString(kind());
  return std::get<int64_t>(rep_);
}

double Value::AsFloat() const {
  SERAPH_CHECK(is_float()) << "Value is " << ValueKindToString(kind());
  return std::get<double>(rep_);
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
  SERAPH_CHECK(is_float()) << "Value is " << ValueKindToString(kind());
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  SERAPH_CHECK(is_string()) << "Value is " << ValueKindToString(kind());
  return std::get<std::string>(rep_);
}

const Value::List& Value::AsList() const {
  SERAPH_CHECK(is_list()) << "Value is " << ValueKindToString(kind());
  return std::get<List>(rep_);
}

const Value::Map& Value::AsMap() const {
  SERAPH_CHECK(is_map()) << "Value is " << ValueKindToString(kind());
  return std::get<Map>(rep_);
}

Timestamp Value::AsDateTime() const {
  SERAPH_CHECK(is_datetime()) << "Value is " << ValueKindToString(kind());
  return std::get<Timestamp>(rep_);
}

Duration Value::AsDuration() const {
  SERAPH_CHECK(is_duration()) << "Value is " << ValueKindToString(kind());
  return std::get<Duration>(rep_);
}

NodeId Value::AsNode() const {
  SERAPH_CHECK(is_node()) << "Value is " << ValueKindToString(kind());
  return std::get<NodeId>(rep_);
}

RelId Value::AsRelationship() const {
  SERAPH_CHECK(is_relationship()) << "Value is " << ValueKindToString(kind());
  return std::get<RelId>(rep_);
}

const PathValue& Value::AsPath() const {
  SERAPH_CHECK(is_path()) << "Value is " << ValueKindToString(kind());
  return *std::get<std::shared_ptr<const PathValue>>(rep_);
}

bool operator==(const Value& a, const Value& b) {
  // Numbers compare numerically across int/float.
  if (a.is_number() && b.is_number()) {
    if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
    return a.AsNumber() == b.AsNumber();
  }
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      return a.AsBool() == b.AsBool();
    case ValueKind::kInt:
    case ValueKind::kFloat:
      return false;  // Handled above.
    case ValueKind::kString:
      return a.AsString() == b.AsString();
    case ValueKind::kList:
      return a.AsList() == b.AsList();
    case ValueKind::kMap:
      return a.AsMap() == b.AsMap();
    case ValueKind::kDateTime:
      return a.AsDateTime() == b.AsDateTime();
    case ValueKind::kDuration:
      return a.AsDuration() == b.AsDuration();
    case ValueKind::kNode:
      return a.AsNode() == b.AsNode();
    case ValueKind::kRelationship:
      return a.AsRelationship() == b.AsRelationship();
    case ValueKind::kPath:
      return a.AsPath() == b.AsPath();
  }
  return false;
}

int Value::Compare(const Value& a, const Value& b) {
  ValueKind ak = a.kind();
  ValueKind bk = b.kind();
  bool both_numbers = a.is_number() && b.is_number();
  if (!both_numbers) {
    int ra = KindRank(ak);
    int rb = KindRank(bk);
    if (ra != rb) return ra < rb ? -1 : 1;
  }
  switch (ak) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool: {
      // false < true.
      int av = a.AsBool() ? 1 : 0;
      int bv = b.AsBool() ? 1 : 0;
      return av - bv;
    }
    case ValueKind::kInt:
    case ValueKind::kFloat: {
      if (a.is_int() && b.is_int()) return Sign(a.AsInt() - b.AsInt());
      return CompareDouble(a.AsNumber(), b.AsNumber());
    }
    case ValueKind::kString:
      return a.AsString().compare(b.AsString()) < 0
                 ? -1
                 : (a.AsString() == b.AsString() ? 0 : 1);
    case ValueKind::kList: {
      const auto& la = a.AsList();
      const auto& lb = b.AsList();
      size_t n = std::min(la.size(), lb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(la[i], lb[i]);
        if (c != 0) return c;
      }
      return Sign(static_cast<int64_t>(la.size()) -
                  static_cast<int64_t>(lb.size()));
    }
    case ValueKind::kMap: {
      const auto& ma = a.AsMap();
      const auto& mb = b.AsMap();
      auto ia = ma.begin();
      auto ib = mb.begin();
      for (; ia != ma.end() && ib != mb.end(); ++ia, ++ib) {
        int kc = ia->first.compare(ib->first);
        if (kc != 0) return kc < 0 ? -1 : 1;
        int vc = Compare(ia->second, ib->second);
        if (vc != 0) return vc;
      }
      return Sign(static_cast<int64_t>(ma.size()) -
                  static_cast<int64_t>(mb.size()));
    }
    case ValueKind::kDateTime:
      return Sign(a.AsDateTime().millis() - b.AsDateTime().millis());
    case ValueKind::kDuration:
      return Sign(a.AsDuration().millis() - b.AsDuration().millis());
    case ValueKind::kNode:
      return Sign(a.AsNode().value - b.AsNode().value);
    case ValueKind::kRelationship:
      return Sign(a.AsRelationship().value - b.AsRelationship().value);
    case ValueKind::kPath: {
      const PathValue& pa = a.AsPath();
      const PathValue& pb = b.AsPath();
      if (pa.nodes != pb.nodes) return pa.nodes < pb.nodes ? -1 : 1;
      if (pa.rels != pb.rels) return pa.rels < pb.rels ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind());
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      HashCombine(&seed, AsBool());
      break;
    case ValueKind::kInt:
      // Ints and numerically-equal floats must hash alike (they compare
      // equal); hash the double representation.
      seed = static_cast<size_t>(ValueKind::kFloat);
      HashCombine(&seed, static_cast<double>(AsInt()));
      break;
    case ValueKind::kFloat:
      HashCombine(&seed, AsFloat());
      break;
    case ValueKind::kString:
      HashCombine(&seed, AsString());
      break;
    case ValueKind::kList:
      for (const Value& v : AsList()) HashCombine(&seed, v.Hash());
      break;
    case ValueKind::kMap:
      for (const auto& [key, val] : AsMap()) {
        HashCombine(&seed, key);
        HashCombine(&seed, val.Hash());
      }
      break;
    case ValueKind::kDateTime:
      HashCombine(&seed, AsDateTime().millis());
      break;
    case ValueKind::kDuration:
      HashCombine(&seed, AsDuration().millis());
      break;
    case ValueKind::kNode:
      HashCombine(&seed, AsNode().value);
      break;
    case ValueKind::kRelationship:
      HashCombine(&seed, AsRelationship().value);
      break;
    case ValueKind::kPath: {
      const PathValue& p = AsPath();
      for (NodeId n : p.nodes) HashCombine(&seed, n.value);
      for (RelId r : p.rels) HashCombine(&seed, r.value);
      break;
    }
  }
  return seed;
}

std::string Value::ToString() const {
  std::string out;
  ToStringImpl(*this, /*nested=*/false, &out);
  return out;
}

}  // namespace seraph
