// Strongly-typed node / relationship identifiers (the sets N and R of
// Def. 3.1). Defined next to `Value` because values can reference graph
// entities (bindings produced by MATCH).
#ifndef SERAPH_VALUE_IDS_H_
#define SERAPH_VALUE_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace seraph {

// Identifier of a node (vertex). Identity is global across the stream: the
// union of graphs under UNA (Def. 5.4) merges nodes with equal ids.
struct NodeId {
  int64_t value = 0;

  friend bool operator==(NodeId a, NodeId b) { return a.value == b.value; }
  friend bool operator!=(NodeId a, NodeId b) { return a.value != b.value; }
  friend bool operator<(NodeId a, NodeId b) { return a.value < b.value; }
};

// Identifier of a relationship (edge).
struct RelId {
  int64_t value = 0;

  friend bool operator==(RelId a, RelId b) { return a.value == b.value; }
  friend bool operator!=(RelId a, RelId b) { return a.value != b.value; }
  friend bool operator<(RelId a, RelId b) { return a.value < b.value; }
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << "n" << id.value;
}
inline std::ostream& operator<<(std::ostream& os, RelId id) {
  return os << "r" << id.value;
}

}  // namespace seraph

template <>
struct std::hash<seraph::NodeId> {
  size_t operator()(seraph::NodeId id) const {
    return std::hash<int64_t>{}(id.value);
  }
};
template <>
struct std::hash<seraph::RelId> {
  size_t operator()(seraph::RelId id) const {
    return std::hash<int64_t>{}(~id.value);
  }
};

#endif  // SERAPH_VALUE_IDS_H_
