#include "server/metrics_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "seraph/continuous_engine.h"

namespace seraph {

namespace {

// Request-line parsing: "GET /path HTTP/1.1". Anything else 404s/400s.
std::string RequestPath(const std::string& request) {
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos) return "";
  if (request.substr(0, method_end) != "GET") return "";
  const size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) return "";
  std::string path = request.substr(method_end + 1, path_end - method_end - 1);
  // Strip a query string; the endpoints take no parameters.
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

int64_t SteadyNowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Waits until `fd` is ready for `events` or `deadline_millis` passes.
// False on timeout or a poll error.
bool PollUntil(int fd, short events, int64_t deadline_millis) {
  while (true) {
    const int64_t remaining = deadline_millis - SteadyNowMillis();
    if (remaining <= 0) return false;
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // Deadline elapsed.
    // Ready (including HUP/ERR — let recv/send observe the condition).
    return true;
  }
}

// Sends all of `data` on the (non-blocking) socket, never sleeping in
// send(): each chunk waits for writability under the shared connection
// deadline, so a client that stops reading mid-response cannot wedge the
// serve loop. False when the client went away or the deadline passed.
bool WriteAll(int fd, const std::string& data, int64_t deadline_millis) {
  size_t sent = 0;
  while (sent < data.size()) {
    if (!PollUntil(fd, POLLOUT, deadline_millis)) return false;
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;  // Client went away; nothing to salvage.
    }
    if (n == 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Status MetricsServer::Start() {
  if (running_.load(std::memory_order_relaxed)) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("metrics server: socket: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("metrics server: bind 127.0.0.1:" +
                               std::to_string(options_.port) + ": " + error);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("metrics server: listen: ") +
                               error);
  }
  // Resolve the bound port (meaningful with port 0 = ephemeral).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // The accept loop polls with a timeout, so flipping running_ is enough;
  // shutting the listener down just makes it exit immediately.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::Serve() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // Timeout: re-check running_.
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;  // Racing a Stop(), or a transient error.
    HandleConnection(client);
    ::close(client);
  }
}

void MetricsServer::HandleConnection(int client) {
  // Per-connection IO deadline: the serve loop handles one client at a
  // time, so reads and writes are non-blocking and poll()-gated — a
  // connect-and-hang client (or one that stops reading the response) is
  // abandoned at the deadline instead of wedging every other scraper.
  const int flags = ::fcntl(client, F_GETFL, 0);
  if (flags >= 0) ::fcntl(client, F_SETFL, flags | O_NONBLOCK);
  const int64_t deadline_millis =
      SteadyNowMillis() + options_.io_timeout_millis;

  // One short request; 4 KiB covers any GET line + headers we care about.
  std::string request;
  char buf[4096];
  // Read until the header terminator (or the client stops sending). A
  // scraper sends the whole request in one segment in practice; the loop
  // is just protocol hygiene.
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < sizeof(buf)) {
    if (!PollUntil(client, POLLIN, deadline_millis)) {
      connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
      SERAPH_LOG(WARNING) << "metrics server: dropping stalled connection "
                             "(no request within "
                          << options_.io_timeout_millis << " ms)";
      return;
    }
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (n == 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const std::string path = RequestPath(request);
  bool sent = true;
  if (path == "/metrics") {
    const std::string body = options_.registry != nullptr
                                 ? options_.registry->ToPrometheusText()
                                 : std::string();
    sent = WriteAll(client,
                    HttpResponse(200, "OK",
                                 "text/plain; version=0.0.4; charset=utf-8",
                                 body),
                    deadline_millis);
  } else if (path == "/healthz") {
    sent = WriteAll(client, HttpResponse(200, "OK", "text/plain", "ok\n"),
                    deadline_millis);
  } else if (path == "/queries") {
    const std::string body =
        options_.queries_json ? options_.queries_json() : std::string("[]");
    sent = WriteAll(client,
                    HttpResponse(200, "OK", "application/json", body),
                    deadline_millis);
  } else if (path.empty()) {
    sent = WriteAll(client,
                    HttpResponse(400, "Bad Request", "text/plain",
                                 "bad request\n"),
                    deadline_millis);
  } else {
    sent = WriteAll(client,
                    HttpResponse(
                        404, "Not Found", "text/plain",
                        "not found; try /metrics, /healthz, /queries\n"),
                    deadline_millis);
  }
  if (!sent && SteadyNowMillis() >= deadline_millis) {
    connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
    SERAPH_LOG(WARNING) << "metrics server: dropping stalled connection "
                           "(response not drained within "
                        << options_.io_timeout_millis << " ms)";
  }
}

std::string QueriesStatusJson(const ContinuousEngine& engine) {
  std::string out = "[";
  bool first = true;
  for (const std::string& name : engine.QueryNames()) {
    auto stats = engine.StatsFor(name);
    if (!stats.ok()) continue;  // Unregistered between calls.
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + EscapeJson(name) + "\"";
    out += ",\"disabled\":";
    out += engine.QueryDisabled(name) ? "true" : "false";
    out += ",\"evaluations\":" + std::to_string(stats->evaluations);
    out += ",\"rows_emitted\":" + std::to_string(stats->rows_emitted);
    out += ",\"eval_failures\":" + std::to_string(stats->eval_failures);
    out += ",\"reused_results\":" + std::to_string(stats->reused_results);
    if (!stats->last_error.ok()) {
      out += ",\"last_error\":\"" + EscapeJson(stats->last_error.ToString()) +
             "\"";
    }
    auto latency = engine.LatencyFor(name);
    if (latency.ok()) {
      out += ",\"eval_latency_micros\":{\"count\":" +
             std::to_string(latency->count) +
             ",\"p50\":" + std::to_string(latency->p50) +
             ",\"p99\":" + std::to_string(latency->p99) +
             ",\"p999\":" + std::to_string(latency->p999) + "}";
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace seraph
