#include "server/metrics_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>

#include "common/logging.h"
#include "seraph/continuous_engine.h"

namespace seraph {

namespace {

// Header block cap: a client streaming an unbounded preamble is cut off.
constexpr size_t kMaxHeaderBytes = 16 * 1024;
// Body cap (JSON-lines ingest batches stay well under this) → 413 beyond.
constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;
// Serve-loop tick: parked long-polls and IO deadlines are re-checked at
// this cadence, so timeouts are accurate to ~one tick.
constexpr int kTickMillis = 50;

int64_t SteadyNowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string RenderResponse(const HttpReply& reply) {
  std::string out = "HTTP/1.1 " + std::to_string(reply.code) + " " +
                    reply.reason + "\r\nContent-Type: " + reply.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(reply.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += reply.body;
  return out;
}

HttpReply TextReply(int code, const char* reason, std::string body) {
  HttpReply reply;
  reply.code = code;
  reply.reason = reason;
  reply.body = std::move(body);
  return reply;
}

// Parses the request line and headers of `in` (the head ends at
// `head_end`, the offset of "\r\n\r\n"). False on a malformed request
// line; Content-Length defaults to 0 when absent.
bool ParseRequestHead(const std::string& in, size_t head_end,
                      HttpRequest* request, size_t* content_length) {
  const size_t line_end = in.find("\r\n");
  if (line_end == std::string::npos || line_end > head_end) return false;
  std::istringstream line(in.substr(0, line_end));
  std::string target;
  std::string version;
  if (!(line >> request->method >> target >> version)) return false;
  if (target.empty() || target[0] != '/') return false;
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    request->path = target;
    request->query.clear();
  } else {
    request->path = target.substr(0, q);
    request->query = target.substr(q + 1);
  }
  *content_length = 0;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = in.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    std::string header = in.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name == "content-length") {
      size_t value = colon + 1;
      while (value < header.size() && header[value] == ' ') ++value;
      *content_length = std::strtoull(header.c_str() + value, nullptr, 10);
    }
  }
  return true;
}

}  // namespace

// Per-connection state machine: kReading until the full request (head +
// Content-Length body) arrives, then dispatched — either straight to
// kWriting, or to kParked while its handler long-polls. The IO deadline
// is armed while reading and writing; parked time is budgeted separately
// by Options::long_poll_timeout_millis.
struct MetricsServer::Connection {
  enum class State { kReading, kParked, kWriting };

  int fd = -1;
  State state = State::kReading;
  std::string in;
  size_t head_end = 0;        // Offset past "\r\n\r\n" once seen; 0 before.
  size_t content_length = 0;  // Valid once head_end > 0.
  HttpRequest request;
  const HttpHandler* parked_handler = nullptr;
  std::string out;
  size_t out_sent = 0;
  int64_t io_deadline_millis = 0;
  int64_t park_deadline_millis = 0;
};

void MetricsServer::Handle(std::string method, std::string path_prefix,
                           HttpHandler handler) {
  SERAPH_CHECK(!running_.load(std::memory_order_relaxed))
      << "Handle() must be called before Start()";
  routes_.push_back(
      Route{std::move(method), std::move(path_prefix), std::move(handler)});
}

Status MetricsServer::Start() {
  if (running_.load(std::memory_order_relaxed)) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("metrics server: socket: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("metrics server: bind 127.0.0.1:" +
                               std::to_string(options_.port) + ": " + error);
  }
  if (::listen(listen_fd_, 32) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("metrics server: listen: ") +
                               error);
  }
  // Resolve the bound port (meaningful with port 0 = ephemeral).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  SetNonBlocking(listen_fd_);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // The serve loop polls with a timeout, so flipping running_ is enough;
  // shutting the listener down just makes it exit immediately.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::Serve() {
  // All open connections, interleaved with the listener in one poll set.
  // A slow reader/writer only parks its own entry; everyone else keeps
  // being served (see tests/metrics_server_test.cc,
  // TwoConcurrentClients / SlowClientCannotWedgeTheServeLoop).
  std::deque<Connection> connections;
  std::vector<pollfd> fds;

  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    const bool accepting =
        connections.size() < static_cast<size_t>(options_.max_connections);
    fds.push_back(
        pollfd{listen_fd_, static_cast<short>(accepting ? POLLIN : 0), 0});
    for (const Connection& conn : connections) {
      short events = 0;
      if (conn.state == Connection::State::kReading) events = POLLIN;
      if (conn.state == Connection::State::kWriting) events = POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kTickMillis);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (ready < 0 && errno != EINTR) break;

    if ((fds[0].revents & POLLIN) != 0) {
      while (connections.size() <
             static_cast<size_t>(options_.max_connections)) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) break;  // EAGAIN: backlog drained.
        SetNonBlocking(client);
        Connection conn;
        conn.fd = client;
        conn.io_deadline_millis =
            SteadyNowMillis() + options_.io_timeout_millis;
        connections.push_back(std::move(conn));
      }
    }

    const int64_t now = SteadyNowMillis();
    for (size_t i = 0; i < connections.size();) {
      Connection& conn = connections[i];
      // fds[0] is the listener; connection i sat at fds[i + 1] when this
      // round's poll was issued. Just-accepted connections (and any
      // entries shifted by an erase below) fail the fd match and simply
      // wait for the next round's rebuilt poll set.
      const pollfd* pfd =
          (i + 1 < fds.size() && fds[i + 1].fd == conn.fd) ? &fds[i + 1]
                                                           : nullptr;
      bool keep = true;
      bool timed_out = false;
      switch (conn.state) {
        case Connection::State::kReading:
          if (pfd != nullptr &&
              (pfd->revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            keep = ReadSome(&conn);
          }
          if (keep && conn.state == Connection::State::kReading &&
              now >= conn.io_deadline_millis) {
            timed_out = true;
          }
          break;
        case Connection::State::kParked:
          TickParked(&conn, now);
          break;
        case Connection::State::kWriting:
          if (pfd != nullptr &&
              (pfd->revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
            keep = WriteSome(&conn);
          }
          if (keep && conn.state == Connection::State::kWriting &&
              now >= conn.io_deadline_millis) {
            timed_out = true;
          }
          break;
      }
      if (timed_out) {
        connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
        SERAPH_LOG(WARNING) << "metrics server: dropping stalled connection "
                               "(io deadline "
                            << options_.io_timeout_millis << " ms exceeded)";
        keep = false;
      }
      if (keep) {
        ++i;
      } else {
        ::close(conn.fd);
        connections.erase(connections.begin() +
                          static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  for (Connection& conn : connections) ::close(conn.fd);
}

bool MetricsServer::ReadSome(Connection* conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return false;  // Peer closed before a full request.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }

  if (conn->head_end == 0) {
    const size_t pos = conn->in.find("\r\n\r\n");
    if (pos == std::string::npos) {
      return conn->in.size() <= kMaxHeaderBytes;  // Keep reading the head.
    }
    conn->head_end = pos + 4;
    if (!ParseRequestHead(conn->in, pos, &conn->request,
                          &conn->content_length)) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      StartReply(conn, TextReply(400, "Bad Request", "bad request\n"));
      return true;
    }
    if (conn->content_length > kMaxBodyBytes) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      StartReply(conn,
                 TextReply(413, "Payload Too Large", "body too large\n"));
      return true;
    }
  }
  if (conn->in.size() < conn->head_end + conn->content_length) {
    return true;  // Body incomplete; keep reading.
  }
  conn->request.body = conn->in.substr(conn->head_end, conn->content_length);
  MaybeDispatch(conn);
  return true;
}

void MetricsServer::MaybeDispatch(Connection* conn) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  for (const Route& route : routes_) {
    if (conn->request.method != route.method) continue;
    if (conn->request.path.rfind(route.prefix, 0) != 0) continue;
    std::optional<HttpReply> reply = route.handler(conn->request);
    if (reply.has_value()) {
      StartReply(conn, *reply);
    } else {
      conn->state = Connection::State::kParked;
      conn->parked_handler = &route.handler;
      conn->park_deadline_millis =
          SteadyNowMillis() + options_.long_poll_timeout_millis;
    }
    return;
  }

  HttpReply reply;
  if (BuiltinReply(conn->request, &reply)) {
    StartReply(conn, reply);
    return;
  }
  StartReply(conn, TextReply(404, "Not Found",
                             "not found; try /metrics, /healthz, /queries\n"));
}

void MetricsServer::TickParked(Connection* conn, int64_t now_millis) {
  std::optional<HttpReply> reply = (*conn->parked_handler)(conn->request);
  if (reply.has_value()) {
    StartReply(conn, *reply);
    return;
  }
  if (now_millis >= conn->park_deadline_millis) {
    HttpReply timeout;
    timeout.code = 204;
    timeout.reason = "No Content";
    StartReply(conn, timeout);
  }
}

bool MetricsServer::WriteSome(Connection* conn) {
  while (conn->out_sent < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_sent,
                             conn->out.size() - conn->out_sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      conn->out_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // Client went away; nothing to salvage.
  }
  return false;  // Fully sent → close (Connection: close semantics).
}

void MetricsServer::StartReply(Connection* conn, const HttpReply& reply) {
  conn->out = RenderResponse(reply);
  conn->out_sent = 0;
  conn->state = Connection::State::kWriting;
  conn->parked_handler = nullptr;
  // The write phase gets a fresh IO budget; a long-poll that waited most
  // of its park budget still has full time to drain the response.
  conn->io_deadline_millis = SteadyNowMillis() + options_.io_timeout_millis;
}

bool MetricsServer::BuiltinReply(const HttpRequest& request,
                                 HttpReply* reply) const {
  if (request.method != "GET") return false;
  if (request.path == "/metrics") {
    reply->body = options_.registry != nullptr
                      ? options_.registry->ToPrometheusText()
                      : std::string();
    reply->content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (request.path == "/healthz") {
    reply->body = "ok\n";
    return true;
  }
  if (request.path == "/queries") {
    reply->body = options_.queries_json ? options_.queries_json() : "[]";
    reply->content_type = "application/json";
    return true;
  }
  return false;
}

std::string EscapeJsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string QueriesStatusJson(const ContinuousEngine& engine) {
  std::string out = "[";
  bool first = true;
  for (const std::string& name : engine.QueryNames()) {
    auto stats = engine.StatsFor(name);
    if (!stats.ok()) continue;  // Unregistered between calls.
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + EscapeJsonString(name) + "\"";
    out += ",\"disabled\":";
    out += engine.QueryDisabled(name) ? "true" : "false";
    out += ",\"evaluations\":" + std::to_string(stats->evaluations);
    out += ",\"rows_emitted\":" + std::to_string(stats->rows_emitted);
    out += ",\"eval_failures\":" + std::to_string(stats->eval_failures);
    out += ",\"reused_results\":" + std::to_string(stats->reused_results);
    if (!stats->last_error.ok()) {
      out += ",\"last_error\":\"" +
             EscapeJsonString(stats->last_error.ToString()) + "\"";
    }
    auto latency = engine.LatencyFor(name);
    if (latency.ok()) {
      out += ",\"eval_latency_micros\":{\"count\":" +
             std::to_string(latency->count) +
             ",\"p50\":" + std::to_string(latency->p50) +
             ",\"p99\":" + std::to_string(latency->p99) +
             ",\"p999\":" + std::to_string(latency->p999) + "}";
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace seraph
