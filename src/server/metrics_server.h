// A minimal plain-HTTP observability endpoint (no third-party deps —
// POSIX sockets only), serving the health surface documented in
// docs/INTERNALS.md, "Latency accounting & lag":
//
//   GET /metrics  → Prometheus text exposition of a MetricsRegistry
//   GET /healthz  → "ok" (liveness)
//   GET /queries  → JSON array of per-query status (caller-provided)
//
// The server owns one background thread: a poll()-based accept loop that
// serves each connection to completion before accepting the next. That is
// deliberate — a scrape endpoint sees one client (the collector) at a
// time, and a single-threaded loop keeps the server trivially correct.
// Thread safety of the handlers is the caller's contract: /metrics reads
// the registry (whose instruments are atomic, so scraping a live engine
// is race-free), and the /queries callback must itself be safe to call
// from the server thread (seraph_run publishes a snapshot under a mutex).
#ifndef SERAPH_SERVER_METRICS_SERVER_H_
#define SERAPH_SERVER_METRICS_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"

namespace seraph {

class ContinuousEngine;

class MetricsServer {
 public:
  struct Options {
    // Port to bind on 127.0.0.1; 0 picks an ephemeral port (tests), read
    // back via port() after Start.
    int port = 0;
    // Source of /metrics. Not owned; must outlive the server.
    const MetricsRegistry* registry = nullptr;
    // Source of /queries (a JSON document, typically
    // QueriesStatusJson(...)). May be empty; then /queries serves "[]".
    // Called on the server thread — must be thread-safe.
    std::function<std::string()> queries_json;
    // Per-connection IO budget (read + write share one deadline). The
    // accept loop serves one client at a time, so without a deadline a
    // connect-and-hang client wedges /metrics and /healthz for everyone;
    // with it, a stalled connection is abandoned and the loop moves on.
    int io_timeout_millis = 5000;
  };

  explicit MetricsServer(Options options) : options_(std::move(options)) {}
  ~MetricsServer() { Stop(); }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  // Binds, listens, and starts the accept loop. Fails (kUnavailable) when
  // the port cannot be bound.
  Status Start();

  // Shuts the listener down and joins the loop; idempotent.
  void Stop();

  // The bound port (resolved after Start; 0 before).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }

  // Total requests served (introspection for tests).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Connections abandoned because the client stalled past
  // Options::io_timeout_millis (introspection for tests).
  int64_t connections_timed_out() const {
    return connections_timed_out_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();                       // The accept loop (server thread).
  void HandleConnection(int client);  // One request → one response.

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> connections_timed_out_{0};
};

// The /queries payload: a JSON array with one object per registered
// query — name, disabled flag, QueryStats counters, and the emit-latency
// summary (count/p50/p99/p999 micros). Reads engine state without
// synchronization, so call it only from the engine's own thread at a
// quiescent point and publish the returned string to the server's
// queries_json callback (see tools/seraph_run.cc).
std::string QueriesStatusJson(const ContinuousEngine& engine);

}  // namespace seraph

#endif  // SERAPH_SERVER_METRICS_SERVER_H_
