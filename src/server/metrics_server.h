// A minimal plain-HTTP serving front-end (no third-party deps — POSIX
// sockets only). Historically the metrics-only observability endpoint;
// now a small poll()-driven multi-connection server the sharded serving
// tier mounts its API on (docs/INTERNALS.md, "Sharded serving tier"):
//
//   GET /metrics  → Prometheus text exposition of a MetricsRegistry
//   GET /healthz  → "ok" (liveness)
//   GET /queries  → JSON array of per-query status (caller-provided)
//   ... plus any routes registered with Handle() before Start()
//     (e.g. seraph_serve's POST /ingest, POST /queries,
//      GET /queries/<name>/results long-poll).
//
// The server owns one background thread running a poll() loop over the
// listener plus every open connection, so one slow client never wedges
// the others; each connection still carries its own IO deadline
// (Options::io_timeout_millis), so a connect-and-hang or stop-reading
// client is abandoned on time. A handler may *park* a request (long
// poll) by returning std::nullopt: it is re-invoked on every loop tick
// until it produces a reply or Options::long_poll_timeout_millis
// expires (→ 204 No Content).
//
// Threading contract: every handler (and queries_json) runs on the
// server thread. /metrics reads the registry (whose instruments are
// atomic, so scraping a live engine is race-free); anything else the
// handlers touch must be synchronized by the caller (seraph_serve keeps
// one mutex around the fleet).
#ifndef SERAPH_SERVER_METRICS_SERVER_H_
#define SERAPH_SERVER_METRICS_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"

namespace seraph {

class ContinuousEngine;

// One parsed HTTP request, as handed to handlers.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/queries/q1/results" (no query string)
  std::string query;   // "after=3" (raw, without the '?'; may be empty)
  std::string body;    // Raw request body ("" for bodyless requests)
};

struct HttpReply {
  int code = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain";
  std::string body;
};

class MetricsServer {
 public:
  // Returns the reply, or std::nullopt to park the request (long poll):
  // the handler is re-invoked on every serve-loop tick until it replies
  // or the long-poll budget expires.
  using HttpHandler =
      std::function<std::optional<HttpReply>(const HttpRequest&)>;

  struct Options {
    // Port to bind on 127.0.0.1; 0 picks an ephemeral port (tests), read
    // back via port() after Start.
    int port = 0;
    // Source of /metrics. Not owned; must outlive the server.
    const MetricsRegistry* registry = nullptr;
    // Source of /queries (a JSON document, typically
    // QueriesStatusJson(...)). May be empty; then /queries serves "[]".
    // Called on the server thread — must be thread-safe.
    std::function<std::string()> queries_json;
    // Per-connection IO budget: a connection that stalls while its
    // request is being read or its response drained is abandoned after
    // this long. Parked (long-poll) time does not count against it.
    int io_timeout_millis = 5000;
    // How long a parked (long-poll) request may wait for data before the
    // server answers 204 No Content.
    int long_poll_timeout_millis = 10000;
    // Open connections accepted concurrently; further clients wait in
    // the listen backlog.
    int max_connections = 32;
  };

  explicit MetricsServer(Options options) : options_(std::move(options)) {}
  ~MetricsServer() { Stop(); }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  // Registers a handler for `method` + a path prefix, matched in
  // registration order before the built-in GET routes. Call before
  // Start() (the route table is not synchronized).
  void Handle(std::string method, std::string path_prefix,
              HttpHandler handler);

  // Binds, listens, and starts the serve loop. Fails (kUnavailable) when
  // the port cannot be bound.
  Status Start();

  // Shuts the listener down, closes open connections, joins the loop;
  // idempotent.
  void Stop();

  // The bound port (resolved after Start; 0 before).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }

  // Total requests dispatched to a handler/built-in (introspection).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Connections abandoned because the client stalled past
  // Options::io_timeout_millis (introspection for tests).
  int64_t connections_timed_out() const {
    return connections_timed_out_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string method;
    std::string prefix;
    HttpHandler handler;
  };
  struct Connection;

  void Serve();  // The poll loop (server thread).
  // Drains readable bytes; true while the connection should stay open.
  bool ReadSome(Connection* conn);
  // Parses + dispatches once the request is complete.
  void MaybeDispatch(Connection* conn);
  // Re-invokes a parked connection's handler (long poll).
  void TickParked(Connection* conn, int64_t now_millis);
  // Sends pending response bytes; true while the connection stays open.
  bool WriteSome(Connection* conn);
  // Renders `reply` into the connection and switches it to writing.
  void StartReply(Connection* conn, const HttpReply& reply);
  // The built-in GET routes; false when the path is unknown.
  bool BuiltinReply(const HttpRequest& request, HttpReply* reply) const;

  Options options_;
  std::vector<Route> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> connections_timed_out_{0};
};

// The /queries payload: a JSON array with one object per registered
// query — name, disabled flag, QueryStats counters, and the emit-latency
// summary (count/p50/p99/p999 micros). Reads engine state without
// synchronization, so call it only from the engine's own thread at a
// quiescent point and publish the returned string to the server's
// queries_json callback (see tools/seraph_run.cc).
std::string QueriesStatusJson(const ContinuousEngine& engine);

// JSON string escaping shared by the status documents.
std::string EscapeJsonString(const std::string& value);

}  // namespace seraph

#endif  // SERAPH_SERVER_METRICS_SERVER_H_
