// Small string utilities shared across modules.
#ifndef SERAPH_COMMON_STRINGS_H_
#define SERAPH_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace seraph {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

// Returns `text` with ASCII whitespace removed from both ends.
std::string_view StripWhitespace(std::string_view text);

// Case-insensitive ASCII equality (used for Cypher keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Returns an upper-cased ASCII copy.
std::string AsciiUpper(std::string_view text);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace seraph

#endif  // SERAPH_COMMON_STRINGS_H_
