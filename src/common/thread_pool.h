// A fixed-size worker pool for CPU-bound task fan-out.
//
// The continuous engine uses one pool for two kinds of work (see
// docs/INTERNALS.md, "Parallel evaluation" and "Intra-query
// parallelism"):
//
//  * inter-query: the scheduler submits one task per query due at an
//    evaluation instant (Submit + future barrier, coordinator-only);
//  * intra-query: the matcher fans the seed candidates of one MATCH out
//    in morsels — from a pool worker that is itself running an
//    inter-query task (SubmitBatch + WaitAll).
//
// Nested submission is what SubmitBatch/WaitAll exist for: a plain
// future.wait() from a worker could deadlock the fixed-size pool (every
// worker parked waiting for subtasks that are queued behind the waiters),
// so WaitAll lets the waiting thread *help drain* — it claims and runs
// the batch's unstarted tasks inline, making progress independent of free
// workers.
//
//   ThreadPool pool(4);
//   std::future<void> done = pool.Submit([] { ...work... });
//   done.get();  // rethrows nothing: tasks must not throw (Status-based
//                // error handling, like the rest of the library)
//
//   ThreadPool::BatchPtr batch = pool.SubmitBatch(std::move(tasks));
//   pool.WaitAll(batch);  // safe from a pool worker or the coordinator
//
// Thread-safety: Submit / SubmitBatch / WaitAll may be called from any
// thread (including pool workers); construction and destruction are
// coordinator-only. The destructor drains already-queued tasks, then
// joins.
#ifndef SERAPH_COMMON_THREAD_POOL_H_
#define SERAPH_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace seraph {

class ThreadPool {
 public:
  // A group of tasks whose completion can be awaited with WaitAll while
  // the waiting thread helps execute them. Opaque: obtained from
  // SubmitBatch, consumed by WaitAll.
  class Batch {
   private:
    friend class ThreadPool;
    struct Entry {
      std::function<void()> fn;
      std::atomic<bool> claimed{false};
    };
    // Claims `entry` and runs it; no-op when another thread already did.
    void RunEntry(Entry* entry);

    // unique_ptr keeps Entry addresses (and their atomic flags) stable.
    std::vector<std::unique_ptr<Entry>> entries_;
    std::mutex mu_;
    std::condition_variable done_;
    size_t remaining_ = 0;
  };
  using BatchPtr = std::shared_ptr<Batch>;

  // Spawns `num_threads` workers (clamped to at least 1; pass
  // ResolveThreads(0) for one per hardware thread).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains queued tasks, then joins every worker.
  ~ThreadPool();

  // Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` and returns a future that becomes ready when it has
  // run. Tasks must not throw: report failures through captured state
  // (the engine captures a Status per task).
  std::future<void> Submit(std::function<void()> task);

  // Enqueues `tasks` as one batch and returns its handle. Each task runs
  // exactly once — on whichever pool worker dequeues it first, or inline
  // on the thread that calls WaitAll, whichever claims it. Tasks must not
  // throw (same contract as Submit) and must not themselves call WaitAll
  // on a batch containing their own entry.
  BatchPtr SubmitBatch(std::vector<std::function<void()>> tasks);

  // Blocks until every task of `batch` has run. The calling thread —
  // pool worker or not — first claims and runs all still-unstarted tasks
  // of the batch inline, so completion never depends on a free worker:
  // nested fan-out from inside a pool task cannot deadlock the pool.
  // Establishes a happens-before edge from every task's writes to the
  // caller's subsequent reads. May be called at most once per batch from
  // one thread (the submitter).
  void WaitAll(const BatchPtr& batch);

  // Index of the calling pool worker in [0, size()), or -1 when called
  // from a thread that is not a pool worker (e.g. the coordinator).
  // Worker ids are stable for the pool's lifetime; the engine stamps
  // them onto trace spans.
  static int CurrentWorkerId();

  // Maps a configuration value to a concrete thread count: n >= 1 is
  // taken literally; n <= 0 means one thread per hardware thread (with a
  // fallback of 1 when the hardware cannot be queried).
  static int ResolveThreads(int requested);

 private:
  void WorkerLoop(int worker_id);

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace seraph

#endif  // SERAPH_COMMON_THREAD_POOL_H_
