// A fixed-size worker pool for CPU-bound task fan-out.
//
// The continuous engine uses one pool to evaluate independent registered
// queries of the same evaluation instant concurrently (see
// docs/INTERNALS.md, "Parallel evaluation"). The design is deliberately
// minimal — the engine's scheduler is a batch-barrier: the coordinator
// submits one task per query, waits for the whole batch, then delivers
// results sequentially. Workers never submit work themselves, so there is
// no work stealing, no task priorities, and no re-entrancy to reason
// about.
//
//   ThreadPool pool(4);
//   std::future<void> done = pool.Submit([] { ...work... });
//   done.get();  // rethrows nothing: tasks must not throw (Status-based
//                // error handling, like the rest of the library)
//
// Thread-safety: Submit may be called from any thread; everything else is
// coordinator-only. The destructor drains already-queued tasks, then
// joins.
#ifndef SERAPH_COMMON_THREAD_POOL_H_
#define SERAPH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace seraph {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1; pass
  // ResolveThreads(0) for one per hardware thread).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains queued tasks, then joins every worker.
  ~ThreadPool();

  // Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` and returns a future that becomes ready when it has
  // run. Tasks must not throw: report failures through captured state
  // (the engine captures a Status per task).
  std::future<void> Submit(std::function<void()> task);

  // Index of the calling pool worker in [0, size()), or -1 when called
  // from a thread that is not a pool worker (e.g. the coordinator).
  // Worker ids are stable for the pool's lifetime; the engine stamps
  // them onto trace spans.
  static int CurrentWorkerId();

  // Maps a configuration value to a concrete thread count: n >= 1 is
  // taken literally; n <= 0 means one thread per hardware thread (with a
  // fallback of 1 when the hardware cannot be queried).
  static int ResolveThreads(int requested);

 private:
  void WorkerLoop(int worker_id);

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace seraph

#endif  // SERAPH_COMMON_THREAD_POOL_H_
