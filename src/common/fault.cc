#include "common/fault.h"

#include <cstdlib>

#include "common/logging.h"

namespace seraph {

int64_t RetryPolicy::DelayMillisFor(int attempt) const {
  if (attempt < 1 || initial_backoff_millis <= 0) return 0;
  double delay = static_cast<double>(initial_backoff_millis);
  for (int i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier;
    if (delay >= static_cast<double>(max_backoff_millis)) {
      return max_backoff_millis;
    }
  }
  int64_t millis = static_cast<int64_t>(delay);
  return millis < max_backoff_millis ? millis : max_backoff_millis;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* kInstance = new FaultInjector();
  return *kInstance;
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.seed(seed);
}

void FaultInjector::ArmProbability(const std::string& point,
                                   double probability) {
  Point p;
  p.mode = Point::Mode::kProbability;
  p.probability = probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0
                                                               : probability);
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = std::move(p);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmSchedule(const std::string& point,
                                std::vector<int64_t> hits) {
  Point p;
  p.mode = Point::Mode::kSchedule;
  p.schedule.insert(hits.begin(), hits.end());
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = std::move(p);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmNext(const std::string& point, int64_t n) {
  Point p;
  p.mode = Point::Mode::kNext;
  p.fail_next = n;
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = std::move(p);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
  armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  hits_.clear();
  failures_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ConfigureFromEnv() {
  if (const char* seed = std::getenv("SERAPH_FAULT_SEED")) {
    Seed(std::strtoull(seed, nullptr, 10));
  }
  const char* spec = std::getenv("SERAPH_FAULT_POINTS");
  if (spec == nullptr) return;
  // "point=probability[,point=probability...]"
  std::string text(spec);
  size_t start = 0;
  while (start < text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::string item = text.substr(start, comma - start);
    start = comma + 1;
    size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      SERAPH_LOG(WARNING) << "SERAPH_FAULT_POINTS: ignoring malformed item '"
                          << item << "'";
      continue;
    }
    std::string point = item.substr(0, eq);
    double probability = std::strtod(item.c_str() + eq + 1, nullptr);
    ArmProbability(point, probability);
    SERAPH_LOG(INFO) << "fault injection armed: " << point << " p="
                     << probability;
  }
}

Status FaultInjector::Fire(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  int64_t hit = ++hits_[point];
  Point& p = it->second;
  bool fail = false;
  switch (p.mode) {
    case Point::Mode::kProbability: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fail = dist(rng_) < p.probability;
      break;
    }
    case Point::Mode::kSchedule:
      fail = p.schedule.count(hit) > 0;
      break;
    case Point::Mode::kNext:
      if (p.fail_next > 0) {
        --p.fail_next;
        fail = true;
      }
      break;
  }
  if (!fail) return Status::OK();
  ++failures_[point];
  return Status::Unavailable("injected fault at '" + point + "' (hit #" +
                             std::to_string(hit) + ")");
}

int64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

int64_t FaultInjector::failures(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = failures_.find(point);
  return it == failures_.end() ? 0 : it->second;
}

}  // namespace seraph
