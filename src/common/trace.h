// Lightweight pipeline tracing producing Chrome trace-event JSON (the
// format consumed by chrome://tracing and Perfetto's legacy importer):
// an array of {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
// objects under a top-level "traceEvents" key.
//
// Usage:
//   TraceRecorder recorder;
//   recorder.Enable();
//   {
//     TraceSpan span(&recorder, "match", "engine");
//     span.AddArg("query", "student_trick");
//     ...work...
//   }  // complete event recorded on scope exit
//   recorder.WriteJsonFile("trace.json");
//
// Overhead when disabled is one pointer/bool test per span — a TraceSpan
// constructed against a null or disabled recorder never reads the clock
// and records nothing, so instrumented hot paths stay cheap (guarded by
// a benchmark in bench_running_example).
//
// Thread-safety: AddComplete/AddInstant (and therefore TraceSpan) may be
// called from engine worker threads concurrently — the event buffer is
// mutex-guarded. Every recorded event is stamped with the calling
// thread's trace tid (SetCurrentThreadTid; 0 on the coordinator, worker
// id + 1 on pool workers), so one merged trace shows the real thread
// lanes. Enable/Disable, ToJson, Clear, and events() are
// coordinator-only and must not overlap recording from other threads.
#ifndef SERAPH_COMMON_TRACE_H_
#define SERAPH_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace seraph {

// String key/value pairs attached to a trace event ("args" in the trace
// viewer's detail pane).
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

class TraceRecorder {
 public:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';    // 'X' complete, 'i' instant.
    int64_t ts_micros = 0;
    int64_t dur_micros = 0;  // Complete events only.
    int64_t tid = 0;
    TraceArgs args;
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds on the steady clock (same timebase as the recorded
  // events; differences are meaningful, absolute values are not).
  static int64_t NowMicros();

  // The trace tid stamped onto events recorded by the calling thread
  // (thread-local; defaults to 0). The engine assigns worker id + 1 to
  // pool workers so the coordinator keeps lane 0.
  static void SetCurrentThreadTid(int64_t tid);
  static int64_t CurrentThreadTid();

  // A duration event spanning [start, start + dur). No-op when disabled.
  void AddComplete(std::string name, std::string category,
                   int64_t start_micros, int64_t dur_micros,
                   TraceArgs args = {});

  // A zero-duration marker at `ts`. No-op when disabled.
  void AddInstant(std::string name, std::string category, int64_t ts_micros,
                  TraceArgs args = {});

  const std::vector<Event>& events() const { return events_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  // {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  // Guards events_ (worker threads append concurrently).
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// RAII span: records a complete event covering its own lifetime. Against
// a null or disabled recorder it does nothing (and never reads the
// clock).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* category)
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr),
        name_(name),
        category_(category) {
    if (recorder_ != nullptr) start_micros_ = TraceRecorder::NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->AddComplete(name_, category_, start_micros_,
                           TraceRecorder::NowMicros() - start_micros_,
                           std::move(args_));
  }

  // Attached to the event on destruction. No-op when not recording.
  void AddArg(std::string key, std::string value) {
    if (recorder_ == nullptr) return;
    args_.emplace_back(std::move(key), std::move(value));
  }

  bool recording() const { return recorder_ != nullptr; }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  int64_t start_micros_ = 0;
  TraceArgs args_;
};

}  // namespace seraph

#endif  // SERAPH_COMMON_TRACE_H_
