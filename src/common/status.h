// Error-handling primitives for the Seraph library.
//
// The library does not throw exceptions across API boundaries. Fallible
// operations return a `Status` (or a `Result<T>`, see result.h). The design
// follows the widely-used RocksDB/Abseil convention: a status is either OK
// or carries an error code plus a human-readable message.
#ifndef SERAPH_COMMON_STATUS_H_
#define SERAPH_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace seraph {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Caller passed a malformed value (bad ISO string, ...).
  kParseError,        // Query text could not be parsed.
  kSemanticError,     // Query parsed but violates language rules.
  kEvaluationError,   // Runtime evaluation failure (type error, div by 0, ...).
  kInconsistent,      // Property-graph union inputs conflict (Def. 5.4).
  kNotFound,          // Named entity (query, node, ...) does not exist.
  kAlreadyExists,     // Registering a duplicate name.
  kOutOfRange,        // Time instant / index outside the valid domain.
  kUnimplemented,     // Feature outside the supported Cypher/Seraph subset.
  kInternal,          // Invariant violation; indicates a library bug.
  kUnavailable,       // Transient failure (transport/sink hiccup); retryable.
  kDeadlineExceeded,  // Cooperative cancellation: a deadline expired mid-work.
};

// Returns a stable lower-case name for `code` (e.g. "parse_error").
const char* StatusCodeToString(StatusCode code);

// Value type describing the outcome of a fallible operation.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status EvaluationError(std::string msg) {
    return Status(StatusCode::kEvaluationError, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  // Transient failures are worth retrying; everything else is permanent.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace seraph

// Propagates a non-OK status to the caller.
#define SERAPH_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::seraph::Status _seraph_status_tmp = (expr);      \
    if (!_seraph_status_tmp.ok()) {                    \
      return _seraph_status_tmp;                       \
    }                                                  \
  } while (false)

#endif  // SERAPH_COMMON_STATUS_H_
