#include "common/logging.h"

#include <cctype>

namespace seraph {
namespace internal_logging {

namespace {

const char* SeverityTag(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

// Parses SERAPH_LOG_LEVEL: severity names (case-insensitive) or the
// numeric values 0..3. Unset / unrecognized → INFO.
Severity SeverityFromEnv() {
  const char* raw = std::getenv("SERAPH_LOG_LEVEL");
  if (raw == nullptr || raw[0] == '\0') return Severity::kInfo;
  std::string level;
  for (const char* p = raw; *p != '\0'; ++p) {
    level += static_cast<char>(
        std::toupper(static_cast<unsigned char>(*p)));
  }
  if (level == "INFO" || level == "0") return Severity::kInfo;
  if (level == "WARNING" || level == "WARN" || level == "1") {
    return Severity::kWarning;
  }
  if (level == "ERROR" || level == "2") return Severity::kError;
  if (level == "FATAL" || level == "3") return Severity::kFatal;
  return Severity::kInfo;
}

Severity& MinSeverityRef() {
  static Severity min_severity = SeverityFromEnv();
  return min_severity;
}

LogSink& SinkRef() {
  static LogSink* sink = new LogSink();  // Empty = default stderr writer.
  return *sink;
}

void DefaultWrite(Severity severity, const char* file, int line,
                  const std::string& message) {
  std::cerr << "[" << SeverityTag(severity) << " " << file << ":" << line
            << "] " << message << "\n";
}

}  // namespace

Severity MinLogSeverity() { return MinSeverityRef(); }

void SetMinLogSeverity(Severity severity) { MinSeverityRef() = severity; }

void SetLogSink(LogSink sink) { SinkRef() = std::move(sink); }

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity),
      file_(file),
      line_(line),
      enabled_(severity >= MinLogSeverity()) {}

LogMessage::~LogMessage() {
  if (enabled_) {
    const LogSink& sink = SinkRef();
    if (sink) {
      sink(severity_, file_, line_, stream_.str());
    } else {
      DefaultWrite(severity_, file_, line_, stream_.str());
    }
  }
  if (severity_ == Severity::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace seraph
