#include "common/logging.h"

namespace seraph {
namespace internal_logging {

namespace {
const char* SeverityTag(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (severity_ == Severity::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace seraph
