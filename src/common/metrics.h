// Lightweight metrics primitives (RocksDB-Statistics-style): counters and
// fixed-bucket exponential histograms, used for per-query evaluation
// latency tracking in the continuous engine.
#ifndef SERAPH_COMMON_METRICS_H_
#define SERAPH_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

namespace seraph {

// Snapshot of a histogram's state (value semantics, safe to return).
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;

  std::string ToString() const;
};

// A histogram over non-negative integer samples (e.g. microseconds) with
// power-of-two buckets: bucket i holds samples in [2^i, 2^(i+1)).
// Percentiles are estimated by linear interpolation inside the bucket.
// Not thread-safe (the engine is single-threaded by design).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(int64_t value);

  int64_t count() const { return count_; }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  int64_t Percentile(double p) const;

  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace seraph

#endif  // SERAPH_COMMON_METRICS_H_
