// Lightweight metrics primitives (RocksDB-Statistics / Prometheus-client
// style): counters, gauges, and fixed-bucket exponential histograms,
// organized into a named MetricsRegistry with Prometheus-text and JSON
// exposition. The continuous engine owns one registry and attributes cost
// to every stage of the Fig. 5 pipeline through it (see
// docs/INTERNALS.md, "Observability").
//
// Thread-safety (parallel multi-query evaluation runs worker threads
// against shared registries — see docs/INTERNALS.md, "Parallel
// evaluation"): Counter and Gauge are atomic; the registry's map is
// guarded by a shared_mutex — find-or-create of an *existing* series and
// expositions run under a shared lock (concurrent with each other), only
// first-time series creation and Reset take it exclusively. Histogram is
// the one single-writer primitive: every histogram the engine registers
// is per-(query[, stage]) and a query is evaluated by at most one worker
// at a time, with the batch barrier ordering writes across batches.
// Exposition is expected to happen between evaluations.
#ifndef SERAPH_COMMON_METRICS_H_
#define SERAPH_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace seraph {

// Bucket count shared by Histogram and HistogramSnapshot: bucket i holds
// samples in [2^i, 2^(i+1)) (bucket 0 additionally holds 0).
inline constexpr int kHistogramBuckets = 48;

// Snapshot of a histogram's state (value semantics, safe to return).
// `buckets` carries the raw per-bucket counts so exposition can render
// Prometheus cumulative `_bucket` series and callers can merge snapshots.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
  int64_t p999 = 0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  // Inclusive upper bound of bucket i for integer samples (2^(i+1) - 1):
  // every sample counted in buckets 0..i is <= this value, so it is the
  // exact `le` boundary of the cumulative Prometheus series.
  static int64_t BucketUpperBound(int index);

  std::string ToString() const;
};

// Folds `other` into `into` (bucket-wise sum; min/max widened) and
// recomputes the derived fields, so a fleet-wide latency distribution can
// be assembled from per-query snapshots.
void MergeHistogramSnapshot(HistogramSnapshot* into,
                            const HistogramSnapshot& other);

// A histogram over non-negative integer samples (e.g. microseconds) with
// power-of-two buckets: bucket i holds samples in [2^i, 2^(i+1)).
// Percentiles are estimated by linear interpolation inside the bucket.
//
// Writes keep the single-writer contract (see the registry comment), but
// every field is a relaxed atomic written with plain load+store — no
// read-modify-write cost — so a metrics endpoint may Snapshot()
// concurrently with the writer without a data race. A concurrent snapshot
// may observe a sample in `count` before `sum` (or vice versa); each
// field is individually consistent, which is all a scrape needs.
class Histogram {
 public:
  static constexpr int kBuckets = kHistogramBuckets;

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
};

// A monotonically increasing count of events. Increments from multiple
// threads are atomic (relaxed ordering — counters carry no cross-thread
// synchronization semantics, the engine's batch barrier does).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A point-in-time level that can move both ways. Atomic like Counter.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// One `key="value"` metric dimension. Order matters for identity: the
// same label set in a different order names a different series (callers
// are expected to be consistent, which the engine is).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// A named collection of instruments. `*For` calls find-or-create the
// series for (name, labels) and return a stable pointer the caller may
// cache; the registry owns every instrument. A metric family (one name)
// must hold one instrument kind only — asking for a counter under a name
// already used by a histogram is a programming error (checked).
// The registry is guarded by a shared_mutex: lookups of existing series
// and expositions (ToPrometheusText/ToJson) take the lock shared, so a
// scrape never stalls worker threads resolving series; only series
// creation and Reset write-lock. Cached instrument pointers bypass the
// lock entirely.
//
// Naming follows Prometheus conventions: `seraph_<subsystem>_<what>`,
// `_total` suffix for counters, base-unit suffix (`_micros`, `_rows`) for
// histograms/gauges.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* CounterFor(const std::string& name,
                      const MetricLabels& labels = {});
  Gauge* GaugeFor(const std::string& name, const MetricLabels& labels = {});
  Histogram* HistogramFor(const std::string& name,
                          const MetricLabels& labels = {});

  // Lookup without creating; nullptr when the series does not exist.
  const Counter* FindCounter(const std::string& name,
                             const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const MetricLabels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const MetricLabels& labels = {}) const;

  // Prometheus text exposition format, families in name order, one
  // `# TYPE` line per family. Histograms render natively (`histogram`
  // type): cumulative `_bucket{le=...}` series up to the highest
  // non-empty bucket plus `le="+Inf"`, `_sum`, and `_count` — with the
  // historical summary-style quantile series kept alongside for human
  // eyes and the existing tooling.
  std::string ToPrometheusText() const;

  // {"counters": [...], "gauges": [...], "histograms": [...]}; every
  // entry carries {"name", "labels": {...}} plus its value(s).
  std::string ToJson() const;

  // Zeroes every instrument but keeps the series registered (cached
  // pointers stay valid).
  void Reset();

  // Number of registered series across all families (for tests).
  size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    // Keyed by the rendered label string (`k="v",...`), so exposition is
    // deterministic.
    std::map<std::string, Series> series;
  };

  Series* SeriesFor(const std::string& name, const MetricLabels& labels,
                    Kind kind);
  const Series* FindSeries(const std::string& name, const MetricLabels& labels,
                           Kind kind) const;

  // Guards families_ (map structure only; instruments are themselves
  // atomic or single-writer, see the header comment). Shared for lookups
  // and exposition, exclusive for series creation and Reset.
  mutable std::shared_mutex mu_;
  std::map<std::string, Family> families_;
};

// Renders `name{k="v",...}` (or just `name` without labels), escaping
// label values per the Prometheus text format. `extra` labels are
// appended after `labels` (used for quantile series).
std::string RenderMetricName(const std::string& name,
                             const MetricLabels& labels,
                             const MetricLabels& extra = {});

}  // namespace seraph

#endif  // SERAPH_COMMON_METRICS_H_
