// Cooperative cancellation for long-running evaluations.
//
// A `CancellationToken` pairs an injectable `Clock` with an absolute
// deadline. Hot loops (the matcher DFS, morsel workers) call `Check()` at
// seed/expansion boundaries; the token reads the clock only once every
// `kCheckStride` calls so the common case costs one relaxed atomic
// increment. Expiry is sticky: once the deadline has passed every
// subsequent `Check()` fails immediately, so all morsel workers sharing a
// token abort promptly once any of them observes the deadline.
//
// When no deadline is configured the engine simply does not install a
// token, and call sites pay a single null-pointer test (see
// `EvalContext::CheckCancelled`).
#ifndef SERAPH_COMMON_CANCEL_H_
#define SERAPH_COMMON_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace seraph {

class CancellationToken {
 public:
  // `clock` must outlive the token and must not be null. `deadline_micros`
  // is an absolute instant on `clock`'s timebase.
  CancellationToken(const Clock* clock, int64_t deadline_micros)
      : clock_(clock), deadline_micros_(deadline_micros) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  // Read the clock every 32nd call; sticky expiry makes the stride safe.
  static constexpr int64_t kCheckStride = 32;

  // True once the deadline has passed (or `Cancel()` was called).
  bool Expired() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    int64_t n = calls_.fetch_add(1, std::memory_order_relaxed);
    if (n % kCheckStride != 0) return false;
    if (clock_->NowMicros() < deadline_micros_) return false;
    expired_.store(true, std::memory_order_relaxed);
    return true;
  }

  // OK while the deadline holds; kDeadlineExceeded afterwards.
  Status Check() const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded("evaluation deadline exceeded");
  }

  // Trip the token explicitly (independent of the clock).
  void Cancel() { expired_.store(true, std::memory_order_relaxed); }

  int64_t deadline_micros() const { return deadline_micros_; }

 private:
  const Clock* clock_;
  const int64_t deadline_micros_;
  mutable std::atomic<int64_t> calls_{0};
  mutable std::atomic<bool> expired_{false};
};

}  // namespace seraph

#endif  // SERAPH_COMMON_CANCEL_H_
