// Fault-tolerance primitives: deterministic fault injection and retry
// policies.
//
// The paper's Fig. 1 deployment (event queue → continuous engine → result
// consumers) assumes an always-available transport and sink; a real
// deployment gets transient failures on both sides. This header provides
// the two building blocks the pipeline uses to stay loss-free under such
// failures:
//
//  * FaultInjector — named failure points compiled into the transport and
//    sink paths (`SERAPH_FAULT_POINT("driver.deliver")`). Disarmed they
//    cost one pointer-sized branch; armed they fail deterministically
//    (schedule- or seeded-probability-based), which is how the fault
//    tolerance tests drive the full loop without mocks everywhere.
//  * RetryPolicy — bounded attempts with deterministic exponential
//    backoff (no jitter, so tests can assert exact schedules). Delays are
//    *recorded*, not slept: the engine is single-threaded and simulated-
//    time; callers that really wait (none in-tree) can consume
//    DelayMillisFor themselves.
//
// Only kUnavailable statuses are considered transient (see
// Status::IsTransient); every other code is permanent and is never
// retried.
#ifndef SERAPH_COMMON_FAULT_H_
#define SERAPH_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace seraph {

// A bounded, deterministic retry schedule.
struct RetryPolicy {
  // Total tries including the first (1 = no retries).
  int max_attempts = 3;
  int64_t initial_backoff_millis = 10;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_millis = 1000;

  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  // Backoff before the retry that follows attempt number `attempt`
  // (1-based): initial * multiplier^(attempt-1), capped at the maximum.
  // Deterministic — no jitter.
  int64_t DelayMillisFor(int attempt) const;

  // True when `status` is transient and `attempts_made` tries (1-based)
  // have not yet exhausted the budget.
  bool ShouldRetry(const Status& status, int attempts_made) const {
    return status.IsTransient() && attempts_made < max_attempts;
  }
};

// Process-wide registry of named failure points. Disarmed points are
// free; armed points fail according to their mode:
//
//   ArmProbability("driver.deliver", 0.2);   // seeded RNG, 20% of hits
//   ArmSchedule("sink.emit", {2, 3, 7});     // exactly hits #2, #3, #7
//   ArmNext("queue.poll", 2);                // the next two hits
//
// All state is deterministic given the seed and the hit sequence.
// Thread-safe: Fire and the arm/disarm mutators are mutex-guarded (the
// parallel engine may hit fault points from worker threads), and the
// disarmed fast path (`armed()`) stays a single atomic load. Note that
// with probability points, concurrent firing threads make the *mapping*
// of RNG draws to hits schedule-dependent — deterministic chaos tests
// keep fault points on coordinator-driven paths.
class FaultInjector {
 public:
  FaultInjector() : rng_(kDefaultSeed) {}

  // The process-wide instance every SERAPH_FAULT_POINT consults.
  static FaultInjector& Global();

  // Reseeds the probability RNG (also resets its stream position).
  void Seed(uint64_t seed);

  // Arms `point` to fail each hit with probability `probability` drawn
  // from the seeded RNG.
  void ArmProbability(const std::string& point, double probability);
  // Arms `point` to fail exactly on the given 1-based hit numbers.
  void ArmSchedule(const std::string& point, std::vector<int64_t> hits);
  // Arms `point` to fail its next `n` hits, then recover.
  void ArmNext(const std::string& point, int64_t n);

  void Disarm(const std::string& point);
  // Disarms every point and zeroes all counters (keeps the seed).
  void Reset();

  // Environment-driven chaos knobs (used by tools such as seraph_run):
  //   SERAPH_FAULT_SEED=<uint64>            seed for probability points
  //   SERAPH_FAULT_POINTS=<p>=<prob>[,...]  e.g. "driver.deliver=0.05"
  // Unset variables leave the injector untouched.
  void ConfigureFromEnv();

  // The hook behind SERAPH_FAULT_POINT: counts a hit on `point` and
  // returns kUnavailable when the point is armed and fires.
  Status Fire(const std::string& point);

  // True when at least one point is armed (fast-path check; lock-free).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  int64_t hits(const std::string& point) const;
  int64_t failures(const std::string& point) const;

 private:
  static constexpr uint64_t kDefaultSeed = 42;

  struct Point {
    enum class Mode { kProbability, kSchedule, kNext };
    Mode mode = Mode::kProbability;
    double probability = 0.0;
    std::set<int64_t> schedule;  // 1-based hit numbers that fail.
    int64_t fail_next = 0;       // Remaining forced failures (kNext).
  };

  // Guards every map and the RNG; armed_ mirrors points_.empty() so the
  // disarmed hot path never takes the lock.
  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  std::map<std::string, Point> points_;
  std::map<std::string, int64_t> hits_;
  std::map<std::string, int64_t> failures_;
  std::mt19937_64 rng_;
};

}  // namespace seraph

// Compiled-in failure point: returns a kUnavailable status to the caller
// when the named point is armed and fires; no-op (one branch) otherwise.
// Use inside functions returning Status or Result<T>.
#define SERAPH_FAULT_POINT(point)                                        \
  do {                                                                   \
    ::seraph::FaultInjector& _seraph_fi =                                \
        ::seraph::FaultInjector::Global();                               \
    if (_seraph_fi.armed()) {                                            \
      ::seraph::Status _seraph_fault = _seraph_fi.Fire(point);           \
      if (!_seraph_fault.ok()) return _seraph_fault;                     \
    }                                                                    \
  } while (false)

#endif  // SERAPH_COMMON_FAULT_H_
