#include "common/status.h"

namespace seraph {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kSemanticError:
      return "semantic_error";
    case StatusCode::kEvaluationError:
      return "evaluation_error";
    case StatusCode::kInconsistent:
      return "inconsistent";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace seraph
