#include "common/strings.h"

#include <cctype>

namespace seraph {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string AsciiUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace seraph
