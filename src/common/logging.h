// Minimal logging and invariant-checking facilities.
//
// SERAPH_CHECK(cond) << "context";   // aborts on violation
// SERAPH_DCHECK(cond) << "context";  // debug-only (no-op under NDEBUG)
// SERAPH_LOG(INFO) << "message";     // severity-tagged stderr logging
//
// The minimum emitted severity defaults to INFO and is configurable via
// the SERAPH_LOG_LEVEL environment variable (INFO / WARNING / ERROR /
// FATAL, case-insensitive, read once at first use) or programmatically
// with SetMinLogSeverity. Messages below the minimum are dropped without
// being formatted. FATAL always aborts, whatever the minimum.
//
// Log delivery is pluggable: SetLogSink replaces the default stderr
// writer (tests use this to capture log lines); passing nullptr restores
// the default.
#ifndef SERAPH_COMMON_LOGGING_H_
#define SERAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace seraph {
namespace internal_logging {

// The ALL-CAPS enumerators alias the canonical ones so the SERAPH_LOG
// macro's token paste (`k##severity` with SERAPH_LOG(INFO)) resolves —
// the seed macro was unusable without them.
enum class Severity {
  kInfo,
  kWarning,
  kError,
  kFatal,
  kINFO = kInfo,
  kWARNING = kWarning,
  kERROR = kError,
  kFATAL = kFatal,
};

// Receives every emitted log line (already severity-filtered). `message`
// is the body without the "[I file:line]" prefix or trailing newline.
using LogSink =
    std::function<void(Severity severity, const char* file, int line,
                       const std::string& message)>;

// Minimum severity that is delivered; below it, messages are dropped.
Severity MinLogSeverity();
void SetMinLogSeverity(Severity severity);

// Replaces the stderr sink; nullptr restores the default. Fatal messages
// still abort after the sink runs.
void SetLogSink(LogSink sink);

// Accumulates one log line and flushes it (to the active sink) on
// destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  Severity severity_;
  const char* file_;
  int line_;
  bool enabled_;
  std::ostringstream stream_;
};

// Turns a LogMessage expression into void so it can sit in the unused
// branch of the SERAPH_CHECK ternary. operator& binds looser than <<, so
// the message chain is fully built before being discarded.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace seraph

#define SERAPH_LOG(severity)                                    \
  ::seraph::internal_logging::LogMessage(                       \
      ::seraph::internal_logging::Severity::k##severity,        \
      __FILE__, __LINE__)

#define SERAPH_CHECK(cond)                                                \
  (cond) ? (void)0                                                        \
         : ::seraph::internal_logging::Voidify() &                        \
               (::seraph::internal_logging::LogMessage(                   \
                    ::seraph::internal_logging::Severity::kFatal,         \
                    __FILE__, __LINE__)                                   \
                << "Check failed: " #cond " ")

// Debug-only check: under NDEBUG the condition is parsed but never
// evaluated (`true || (cond)` short-circuits), so it and the streamed
// message compile away entirely.
#ifdef NDEBUG
#define SERAPH_DCHECK(cond)                                               \
  (true || (cond)) ? (void)0                                              \
                   : ::seraph::internal_logging::Voidify() &              \
                         (::seraph::internal_logging::LogMessage(         \
                              ::seraph::internal_logging::Severity::      \
                                  kFatal,                                 \
                              __FILE__, __LINE__)                         \
                          << "")
#else
#define SERAPH_DCHECK(cond) SERAPH_CHECK(cond)
#endif

#endif  // SERAPH_COMMON_LOGGING_H_
