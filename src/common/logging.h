// Minimal logging and invariant-checking facilities.
//
// SERAPH_CHECK(cond) << "context";   // aborts on violation
// SERAPH_LOG(INFO) << "message";     // severity-tagged stderr logging
#ifndef SERAPH_COMMON_LOGGING_H_
#define SERAPH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace seraph {
namespace internal_logging {

enum class Severity { kInfo, kWarning, kError, kFatal };

// Accumulates one log line and flushes it (to stderr) on destruction.
// Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

// Turns a LogMessage expression into void so it can sit in the unused
// branch of the SERAPH_CHECK ternary. operator& binds looser than <<, so
// the message chain is fully built before being discarded.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace seraph

#define SERAPH_LOG(severity)                                    \
  ::seraph::internal_logging::LogMessage(                       \
      ::seraph::internal_logging::Severity::k##severity,        \
      __FILE__, __LINE__)

#define SERAPH_CHECK(cond)                                                \
  (cond) ? (void)0                                                        \
         : ::seraph::internal_logging::Voidify() &                        \
               (::seraph::internal_logging::LogMessage(                   \
                    ::seraph::internal_logging::Severity::kFatal,         \
                    __FILE__, __LINE__)                                   \
                << "Check failed: " #cond " ")

#define SERAPH_DCHECK(cond) SERAPH_CHECK(cond)

#endif  // SERAPH_COMMON_LOGGING_H_
