#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace seraph {

namespace {

// Escapes a JSON string body.
void AppendEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendEvent(const TraceRecorder::Event& event, std::string* out) {
  *out += "{\"name\":\"";
  AppendEscaped(event.name, out);
  *out += "\",\"cat\":\"";
  AppendEscaped(event.category, out);
  *out += "\",\"ph\":\"";
  *out += event.phase;
  *out += "\",\"ts\":" + std::to_string(event.ts_micros);
  if (event.phase == 'X') {
    *out += ",\"dur\":" + std::to_string(event.dur_micros);
  }
  if (event.phase == 'i') {
    // Instant events need a scope; "t" = thread.
    *out += ",\"s\":\"t\"";
  }
  *out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
  if (!event.args.empty()) {
    *out += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : event.args) {
      if (!first) *out += ",";
      first = false;
      *out += "\"";
      AppendEscaped(key, out);
      *out += "\":\"";
      AppendEscaped(value, out);
      *out += "\"";
    }
    *out += "}";
  }
  *out += "}";
}

// Trace tid of the calling thread (0 = coordinator lane).
thread_local int64_t tl_trace_tid = 0;

}  // namespace

int64_t TraceRecorder::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::SetCurrentThreadTid(int64_t tid) { tl_trace_tid = tid; }

int64_t TraceRecorder::CurrentThreadTid() { return tl_trace_tid; }

void TraceRecorder::AddComplete(std::string name, std::string category,
                                int64_t start_micros, int64_t dur_micros,
                                TraceArgs args) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_micros = start_micros;
  event.dur_micros = dur_micros;
  event.tid = tl_trace_tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddInstant(std::string name, std::string category,
                               int64_t ts_micros, TraceArgs args) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.ts_micros = ts_micros;
  event.tid = tl_trace_tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) out += ",\n";
    first = false;
    AppendEvent(event, &out);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  out << ToJson() << "\n";
  if (!out.good()) {
    return Status::Internal("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace seraph
