// Result<T>: a value-or-Status holder, the library's counterpart to
// absl::StatusOr / rocksdb's (Status, out-param) convention.
#ifndef SERAPH_COMMON_RESULT_H_
#define SERAPH_COMMON_RESULT_H_

#include <optional>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace seraph {

// Holds either a T (when `ok()`) or an error Status. Accessing the value of
// an error result aborts the process (library bug), mirroring StatusOr.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse: `return value;` / `return Status::ParseError(...);`. The value
  // constructor accepts anything convertible to T (e.g. unique_ptr to a
  // derived class for Result<unique_ptr<Base>>).
  template <typename U = T,
            typename = std::enable_if_t<
                std::is_convertible_v<U&&, T> &&
                !std::is_same_v<std::decay_t<U>, Status> &&
                !std::is_same_v<std::decay_t<U>, Result>>>
  Result(U&& value)  // NOLINT(runtime/explicit)
      : value_(std::forward<U>(value)) {}
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SERAPH_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SERAPH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SERAPH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SERAPH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace seraph

// Evaluates `expr` (a Result<T>), propagating errors; otherwise binds the
// value to `lhs`. `lhs` may include a declaration, e.g.
//   SERAPH_ASSIGN_OR_RETURN(auto token, lexer.Next());
#define SERAPH_ASSIGN_OR_RETURN(lhs, expr)              \
  SERAPH_ASSIGN_OR_RETURN_IMPL_(                        \
      SERAPH_CONCAT_(_seraph_result, __LINE__), lhs, expr)

#define SERAPH_CONCAT_INNER_(a, b) a##b
#define SERAPH_CONCAT_(a, b) SERAPH_CONCAT_INNER_(a, b)

#define SERAPH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#endif  // SERAPH_COMMON_RESULT_H_
