// Hash-combining helper used by value and record hashing.
#ifndef SERAPH_COMMON_HASH_H_
#define SERAPH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace seraph {

// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

}  // namespace seraph

#endif  // SERAPH_COMMON_HASH_H_
