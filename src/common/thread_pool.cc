#include "common/thread_pool.h"

namespace seraph {

namespace {

// -1 on every thread that is not a pool worker.
thread_local int tl_worker_id = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> done = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return done;
}

int ThreadPool::CurrentWorkerId() { return tl_worker_id; }

int ThreadPool::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop(int worker_id) {
  tl_worker_id = worker_id;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even during shutdown so every returned future
      // becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace seraph
