#include "common/thread_pool.h"

namespace seraph {

namespace {

// -1 on every thread that is not a pool worker.
thread_local int tl_worker_id = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> done = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  wake_.notify_one();
  return done;
}

void ThreadPool::Batch::RunEntry(Entry* entry) {
  // Exactly-once execution: workers and the WaitAll-er race on the claim
  // flag; the loser skips. acq_rel pairs a winning claim with any
  // prior writes the submitter made to the task's captured state.
  if (entry->claimed.exchange(true, std::memory_order_acq_rel)) return;
  entry->fn();
  std::lock_guard<std::mutex> lock(mu_);
  if (--remaining_ == 0) done_.notify_all();
}

ThreadPool::BatchPtr ThreadPool::SubmitBatch(
    std::vector<std::function<void()>> tasks) {
  auto batch = std::make_shared<Batch>();
  batch->entries_.reserve(tasks.size());
  for (std::function<void()>& task : tasks) {
    auto entry = std::make_unique<Batch::Entry>();
    entry->fn = std::move(task);
    batch->entries_.push_back(std::move(entry));
  }
  batch->remaining_ = batch->entries_.size();
  for (const std::unique_ptr<Batch::Entry>& entry : batch->entries_) {
    // The wrapper holds the batch alive: a worker may dequeue it after
    // WaitAll returned (the entry was claimed by the helper) and even
    // after the submitter dropped its handle.
    Batch::Entry* raw = entry.get();
    Submit([batch, raw] { batch->RunEntry(raw); });
  }
  return batch;
}

void ThreadPool::WaitAll(const BatchPtr& batch) {
  // Help-drain: run everything no worker has started yet. Whatever
  // remains afterwards is *running* on workers right now (a claimed
  // entry is executed immediately), so the wait below is bounded by
  // real work, never by queue position — the property that makes nested
  // submission from a pool worker deadlock-free.
  for (const std::unique_ptr<Batch::Entry>& entry : batch->entries_) {
    batch->RunEntry(entry.get());
  }
  std::unique_lock<std::mutex> lock(batch->mu_);
  batch->done_.wait(lock, [&] { return batch->remaining_ == 0; });
}

int ThreadPool::CurrentWorkerId() { return tl_worker_id; }

int ThreadPool::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop(int worker_id) {
  tl_worker_id = worker_id;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even during shutdown so every returned future
      // becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace seraph
