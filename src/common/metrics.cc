#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <shared_mutex>

#include "common/logging.h"

namespace seraph {

namespace {

// Index of the bucket holding `value`: floor(log2(max(value, 1))).
int BucketIndex(int64_t value) {
  if (value < 1) value = 1;
  int index = 0;
  while (value > 1 && index < Histogram::kBuckets - 1) {
    value >>= 1;
    ++index;
  }
  return index;
}

int64_t BucketLow(int index) { return int64_t{1} << index; }

// Escapes a Prometheus label value: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Escapes a JSON string body (enough for metric/label names and values).
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels,
                         const MetricLabels& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto* set : {&labels, &extra}) {
    for (const auto& [key, value] : *set) {
      if (!first) out += ",";
      first = false;
      out += key + "=\"" + EscapeLabelValue(value) + "\"";
    }
  }
  out += "}";
  return out;
}

std::string JsonLabelsObject(const MetricLabels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(key) + "\":\"" + EscapeJson(value) + "\"";
  }
  out += "}";
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

// Percentile over a copied bucket array (so one consistent view feeds all
// the derived fields of a snapshot).
int64_t PercentileFrom(const std::array<int64_t, kHistogramBuckets>& buckets,
                       int64_t count, int64_t min, int64_t max, double p) {
  if (count == 0) return 0;
  double target = p * static_cast<double>(count);
  int64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(seen + buckets[i]) >= target) {
      // Linear interpolation within the bucket [2^i, 2^(i+1)).
      double into = (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets[i]);
      double low = static_cast<double>(BucketLow(i));
      int64_t estimate = static_cast<int64_t>(low + into * low);
      return std::clamp(estimate, min, max);
    }
    seen += buckets[i];
  }
  return max;
}

// Recomputes mean and the percentile fields from count/sum/buckets.
void DeriveSnapshotFields(HistogramSnapshot* snap) {
  snap->mean = snap->count == 0 ? 0.0
                                : static_cast<double>(snap->sum) /
                                      static_cast<double>(snap->count);
  snap->p50 = PercentileFrom(snap->buckets, snap->count, snap->min,
                             snap->max, 0.50);
  snap->p90 = PercentileFrom(snap->buckets, snap->count, snap->min,
                             snap->max, 0.90);
  snap->p99 = PercentileFrom(snap->buckets, snap->count, snap->min,
                             snap->max, 0.99);
  snap->p999 = PercentileFrom(snap->buckets, snap->count, snap->min,
                              snap->max, 0.999);
}

}  // namespace

void Histogram::Record(int64_t value) {
  // Single-writer: plain load+store (no RMW) keeps the hot path at
  // ordinary-store cost while staying data-race-free against concurrent
  // Snapshot() readers (a live /metrics scrape).
  if (value < 0) value = 0;
  const int index = BucketIndex(value);
  buckets_[index].store(buckets_[index].load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  const int64_t count = count_.load(std::memory_order_relaxed);
  if (count == 0 || value < min_.load(std::memory_order_relaxed)) {
    min_.store(value, std::memory_order_relaxed);
  }
  if (count == 0 || value > max_.load(std::memory_order_relaxed)) {
    max_.store(value, std::memory_order_relaxed);
  }
  sum_.store(sum_.load(std::memory_order_relaxed) + value,
             std::memory_order_relaxed);
  count_.store(count + 1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  DeriveSnapshotFields(&snap);
  return snap;
}

int64_t HistogramSnapshot::BucketUpperBound(int index) {
  return (int64_t{1} << (index + 1)) - 1;
}

void MergeHistogramSnapshot(HistogramSnapshot* into,
                            const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (into->count == 0) {
    into->min = other.min;
    into->max = other.max;
  } else {
    into->min = std::min(into->min, other.min);
    into->max = std::max(into->max, other.max);
  }
  for (int i = 0; i < kHistogramBuckets; ++i) {
    into->buckets[i] += other.buckets[i];
  }
  into->count += other.count;
  into->sum += other.sum;
  DeriveSnapshotFields(into);
}

std::string HistogramSnapshot::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f min=%lld p50=%lld p90=%lld p99=%lld "
                "p999=%lld max=%lld",
                static_cast<long long>(count), mean,
                static_cast<long long>(min), static_cast<long long>(p50),
                static_cast<long long>(p90), static_cast<long long>(p99),
                static_cast<long long>(p999), static_cast<long long>(max));
  return buf;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

std::string RenderMetricName(const std::string& name,
                             const MetricLabels& labels,
                             const MetricLabels& extra) {
  return name + RenderLabels(labels, extra);
}

MetricsRegistry::Series* MetricsRegistry::SeriesFor(
    const std::string& name, const MetricLabels& labels, Kind kind) {
  std::string key = RenderLabels(labels, {});
  {
    // Fast path: the series almost always exists already (handles are
    // resolved once and cached), so a shared lock suffices and *For calls
    // never serialize against exposition or each other.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto fit = families_.find(name);
    if (fit != families_.end()) {
      SERAPH_CHECK(fit->second.kind == kind)
          << "metric family '" << name << "' registered with two kinds";
      auto sit = fit->second.series.find(key);
      if (sit != fit->second.series.end()) return &sit->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [fit, created] = families_.try_emplace(name);
  Family& family = fit->second;
  if (created) family.kind = kind;
  SERAPH_CHECK(family.kind == kind)
      << "metric family '" << name << "' registered with two kinds";
  auto [sit, series_created] = family.series.try_emplace(std::move(key));
  Series& series = sit->second;
  if (series_created) {
    series.labels = labels;
    switch (kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return &series;
}

const MetricsRegistry::Series* MetricsRegistry::FindSeries(
    const std::string& name, const MetricLabels& labels, Kind kind) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.kind != kind) return nullptr;
  auto sit = fit->second.series.find(RenderLabels(labels, {}));
  return sit == fit->second.series.end() ? nullptr : &sit->second;
}

Counter* MetricsRegistry::CounterFor(const std::string& name,
                                     const MetricLabels& labels) {
  return SeriesFor(name, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GaugeFor(const std::string& name,
                                 const MetricLabels& labels) {
  return SeriesFor(name, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::HistogramFor(const std::string& name,
                                         const MetricLabels& labels) {
  return SeriesFor(name, labels, Kind::kHistogram)->histogram.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const MetricLabels& labels) const {
  const Series* s = FindSeries(name, labels, Kind::kCounter);
  return s == nullptr ? nullptr : s->counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const MetricLabels& labels) const {
  const Series* s = FindSeries(name, labels, Kind::kGauge);
  return s == nullptr ? nullptr : s->gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name, const MetricLabels& labels) const {
  const Series* s = FindSeries(name, labels, Kind::kHistogram);
  return s == nullptr ? nullptr : s->histogram.get();
}

void MetricsRegistry::Reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, series] : family.series) {
      if (series.counter != nullptr) series.counter->Reset();
      if (series.gauge != nullptr) series.gauge->Reset();
      if (series.histogram != nullptr) series.histogram->Reset();
    }
  }
}

size_t MetricsRegistry::series_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

std::string MetricsRegistry::ToPrometheusText() const {
  // Shared: a scrape must not stall workers resolving series.
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    switch (family.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        break;
      case Kind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        break;
    }
    for (const auto& [key, series] : family.series) {
      if (family.kind == Kind::kCounter) {
        out += name + key + " " + std::to_string(series.counter->value()) +
               "\n";
      } else if (family.kind == Kind::kGauge) {
        out += name + key + " " + std::to_string(series.gauge->value()) +
               "\n";
      } else {
        HistogramSnapshot snap = series.histogram->Snapshot();
        // Summary-style quantile series, kept alongside the native
        // buckets for human eyes and pre-existing tooling.
        for (auto [q, v] : {std::pair<const char*, int64_t>{"0.5", snap.p50},
                            {"0.9", snap.p90},
                            {"0.99", snap.p99},
                            {"0.999", snap.p999}}) {
          out += RenderMetricName(name, series.labels,
                                  {{"quantile", q}}) +
                 " " + std::to_string(v) + "\n";
        }
        // Native cumulative buckets, trimmed past the highest non-empty
        // bucket. `le` boundaries are the buckets' exact inclusive upper
        // bounds for integer samples (2^(i+1)-1), so aggregation across
        // scrapes is sound.
        int highest = -1;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          if (snap.buckets[i] != 0) highest = i;
        }
        int64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += snap.buckets[i];
          out += RenderMetricName(
                     name + "_bucket", series.labels,
                     {{"le", std::to_string(
                                 HistogramSnapshot::BucketUpperBound(i))}}) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += RenderMetricName(name + "_bucket", series.labels,
                                {{"le", "+Inf"}}) +
               " " + std::to_string(snap.count) + "\n";
        out += name + "_sum" + key + " " + std::to_string(snap.sum) + "\n";
        out += name + "_count" + key + " " + std::to_string(snap.count) +
               "\n";
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, series] : family.series) {
      std::string entry = "{\"name\":\"" + EscapeJson(name) +
                          "\",\"labels\":" + JsonLabelsObject(series.labels);
      switch (family.kind) {
        case Kind::kCounter:
          if (!counters.empty()) counters += ",";
          counters += entry + ",\"value\":" +
                      std::to_string(series.counter->value()) + "}";
          break;
        case Kind::kGauge:
          if (!gauges.empty()) gauges += ",";
          gauges += entry + ",\"value\":" +
                    std::to_string(series.gauge->value()) + "}";
          break;
        case Kind::kHistogram: {
          HistogramSnapshot snap = series.histogram->Snapshot();
          if (!histograms.empty()) histograms += ",";
          histograms += entry + ",\"count\":" + std::to_string(snap.count) +
                        ",\"sum\":" + std::to_string(snap.sum) +
                        ",\"min\":" + std::to_string(snap.min) +
                        ",\"max\":" + std::to_string(snap.max) +
                        ",\"mean\":" + FormatDouble(snap.mean) +
                        ",\"p50\":" + std::to_string(snap.p50) +
                        ",\"p90\":" + std::to_string(snap.p90) +
                        ",\"p99\":" + std::to_string(snap.p99) +
                        ",\"p999\":" + std::to_string(snap.p999) + "}";
          break;
        }
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

}  // namespace seraph
